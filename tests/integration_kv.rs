//! Stress tier for the `optik-kv` sharded store: cross-shard batch
//! atomicity, deadlock freedom under overlapping batches, exact net
//! counts, validated snapshot consistency, range-scan consistency over
//! ordered backends, TTL expiry under churn, and boundary-migration
//! atomicity under the online rebalancer — across every backend family
//! the kv scenarios sweep.
//!
//! Iteration counts scale with `synchro::stress` (tier-1 stays fast on a
//! 1-core box); the `_full` variants behind `--ignored` run the
//! 8-core-tuned strength and back the CI linearizability/stress jobs.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Barrier};

use optik_suite::bsts::OptikBst;
use optik_suite::harness::api::{ConcurrentMap, OrderedMap, MAX_USER_KEY};
use optik_suite::hashtables::{
    OptikMapHashTable, ResizableStripedHashTable, StripedHashTable, StripedOptikHashTable,
};
use optik_suite::kv::{FakeClock, KvStore};
use optik_suite::maps::OptikArrayMap;
use optik_suite::skiplists::{
    FraserSkipList, HerlihyOptikSkipList, HerlihySkipList, OptikSkipList2,
};

/// Every backend family the registry's kv scenarios use, as a small store.
/// Fixed-capacity backends are sized so `put` can never overflow a shard.
fn all_stores() -> Vec<(&'static str, Arc<dyn ConcurrentMap>)> {
    vec![
        (
            "kv/array",
            Arc::new(KvStore::with_shards(4, |_| {
                OptikArrayMap::<optik::OptikVersioned>::new(256)
            })),
        ),
        (
            "kv/optik-map",
            Arc::new(KvStore::with_shards(4, |_| {
                OptikMapHashTable::with_bucket_capacity(32, 16)
            })),
        ),
        (
            "kv/striped",
            Arc::new(KvStore::with_shards(4, |_| StripedHashTable::new(32, 8))),
        ),
        (
            "kv/striped-optik",
            Arc::new(KvStore::with_shards(4, |_| {
                StripedOptikHashTable::new(32, 8)
            })),
        ),
        (
            "kv/resizable",
            Arc::new(KvStore::with_shards(4, |_| {
                ResizableStripedHashTable::new(8, 2)
            })),
        ),
    ]
}

/// The run's xorshift seed for thread `t`'s stream: distinct per thread,
/// derived from [`synchro::stress::seed`] so `STRESS_SEED=<hex>` replays
/// the exact key/op sequences of a failed run.
fn stream(t: u64, salt: u64) -> u64 {
    (synchro::stress::seed() ^ t.wrapping_mul(salt)) | 1
}

/// Announces the active stress seed. Cargo prints captured output only
/// for failing tests, so every stress failure leads with the
/// reproduction knob.
fn announce_seed() {
    let seed = synchro::stress::seed();
    eprintln!("stress seed: {seed:#018x} (set STRESS_SEED={seed:#x} to reproduce)");
}

/// Typed store (the batch API lives on `KvStore`, not the trait).
fn striped_store(shards: usize) -> Arc<KvStore<StripedOptikHashTable>> {
    Arc::new(KvStore::with_shards(shards, |_| {
        StripedOptikHashTable::new(64, 8)
    }))
}

// ---------------------------------------------------------------------------
// Mixed single-key workload: exact net counts on every backend.
// ---------------------------------------------------------------------------

fn mixed_ops_net_count(scale: u64) {
    announce_seed();
    for (name, s) in all_stores() {
        let net = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = Arc::clone(&s);
            let net = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                let mut x = stream(t, 0x9E3779B97F4A7C15);
                for _ in 0..scale {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % 96 + 1;
                    match x % 4 {
                        0 => {
                            if s.put(k, k * 31).is_none() {
                                net.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        1 => {
                            if s.remove(k).is_some() {
                                net.fetch_sub(1, Ordering::Relaxed);
                            }
                        }
                        _ => {
                            if let Some(v) = s.get(k) {
                                assert_eq!(v, k * 31, "{k} bound to foreign value");
                            }
                        }
                    }
                }
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(
            ConcurrentMap::len(s.as_ref()) as i64,
            net.load(Ordering::Relaxed),
            "{name}: net count drifted"
        );
    }
}

#[test]
fn kv_mixed_ops_keep_exact_net_count() {
    mixed_ops_net_count(synchro::stress::ops(15_000));
}

#[test]
#[ignore = "full-strength kv stress; run in CI via --ignored"]
fn kv_mixed_ops_keep_exact_net_count_full() {
    mixed_ops_net_count(60_000);
}

// ---------------------------------------------------------------------------
// Batch atomicity: a multi_get must never observe half a multi_put.
// ---------------------------------------------------------------------------

fn batch_atomicity(rounds: u64, shards: usize) {
    announce_seed();
    let s = striped_store(shards);
    // A working set that provably spans several shards.
    let keys: Vec<u64> = (1..=12).collect();
    assert!(
        keys.iter()
            .map(|&k| s.shard_of(k))
            .collect::<std::collections::HashSet<_>>()
            .len()
            > 1
            || shards == 1,
        "working set must cross shards for the test to mean anything"
    );
    s.multi_put(&keys.iter().map(|&k| (k, 0)).collect::<Vec<_>>());
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    let mut readers = Vec::new();
    for w in 0..2u64 {
        let s = Arc::clone(&s);
        let keys = keys.clone();
        writers.push(std::thread::spawn(move || {
            for round in 0..rounds {
                let tag = round * 2 + w;
                let batch: Vec<(u64, u64)> = keys.iter().map(|&k| (k, tag)).collect();
                s.multi_put(&batch);
            }
        }));
    }
    for _ in 0..2 {
        let s = Arc::clone(&s);
        let keys = keys.clone();
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut observed = 0u64;
            // Check-after-work: on a 1-core box the writers can finish
            // before this thread is first scheduled, and every run must
            // still observe at least one atomic batch.
            loop {
                let vals = s.multi_get(&keys);
                let first = vals[0].expect("keys are never removed");
                assert!(
                    vals.iter().all(|&v| v == Some(first)),
                    "torn cross-shard batch: {vals:?}"
                );
                observed += 1;
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            observed
        }));
    }
    reclaim::offline_while(|| {
        for h in writers {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for h in readers {
            assert!(h.join().unwrap() > 0, "readers must have made progress");
        }
    });
}

#[test]
fn kv_multi_get_observes_multi_put_atomically() {
    batch_atomicity(synchro::stress::ops(4_000), 4);
}

#[test]
#[ignore = "full-strength kv batch atomicity; run in CI via --ignored"]
fn kv_multi_get_observes_multi_put_atomically_full() {
    batch_atomicity(20_000, 4);
    batch_atomicity(20_000, 1);
    batch_atomicity(20_000, 16);
}

// ---------------------------------------------------------------------------
// Grouped multi_get: the shard-grouped read path must be observationally
// identical to per-key reads, under churn, on both sharding modes.
// ---------------------------------------------------------------------------

/// The probe batch: deliberately unsorted, with duplicates, spanning
/// every shard of the 4-shard stores below. The grouped path routes and
/// sorts probes internally; the scatter back to input order (and the
/// one-window guarantee for duplicate keys) is exactly what this pins.
const MG_KEYS: [u64; 14] = [66, 9, 2, 91, 2, 33, 9, 55, 28, 70, 9, 11, 44, 55];

/// Values encode their key (`k * 1_000_000 + round`), so a result
/// scattered to the wrong input position is caught immediately, not as a
/// silent wrong read.
fn grouped_multiget_matches_per_key<B: ConcurrentMap + 'static>(
    name: &'static str,
    s: Arc<KvStore<B>>,
    rounds: u64,
) {
    announce_seed();
    let keys: Vec<u64> = MG_KEYS.to_vec();
    assert!(
        keys.iter()
            .map(|&k| s.shard_of(k))
            .collect::<std::collections::HashSet<_>>()
            .len()
            > 1,
        "{name}: working set must cross shards for grouping to mean anything"
    );
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for w in 0..2u64 {
        let s = Arc::clone(&s);
        let keys = keys.clone();
        writers.push(std::thread::spawn(move || {
            let mut x = stream(w, 0xA24BAED4963EE407);
            for round in 0..rounds {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let k = keys[(x % keys.len() as u64) as usize];
                if x % 8 == 0 {
                    s.remove(k);
                } else {
                    s.put(k, k * 1_000_000 + round % 1_000_000);
                }
            }
        }));
    }
    let mut readers = Vec::new();
    for r in 0..2u64 {
        let s = Arc::clone(&s);
        let keys = keys.clone();
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut observed = 0u64;
            // Check-after-work, as in `batch_atomicity`: every run must
            // observe at least one batch even if writers finish first.
            loop {
                // Alternate paths so both stay under churn in one run.
                let vals = if (observed + r) % 2 == 0 {
                    s.multi_get(&keys)
                } else {
                    s.multi_get_per_key(&keys)
                };
                assert_eq!(vals.len(), keys.len(), "{name}: result not scattered 1:1");
                for (i, v) in vals.iter().enumerate() {
                    if let Some(v) = v {
                        assert_eq!(
                            v / 1_000_000,
                            keys[i],
                            "{name}: position {i} holds a foreign key's value: {vals:?}"
                        );
                    }
                }
                // Duplicate keys probe the same shard window: one batch
                // must never report two bindings for one key.
                for i in 0..keys.len() {
                    for j in i + 1..keys.len() {
                        if keys[i] == keys[j] {
                            assert_eq!(
                                vals[i], vals[j],
                                "{name}: duplicate key {} tore across one batch: {vals:?}",
                                keys[i]
                            );
                        }
                    }
                }
                observed += 1;
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            observed
        }));
    }
    reclaim::offline_while(|| {
        for h in writers {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for h in readers {
            assert!(h.join().unwrap() > 0, "{name}: readers made no progress");
        }
    });
    // Quiesced: all three read paths must agree exactly.
    let grouped = s.multi_get(&keys);
    let per_key = s.multi_get_per_key(&keys);
    let singles: Vec<Option<u64>> = keys.iter().map(|&k| s.get(k)).collect();
    assert_eq!(
        grouped, per_key,
        "{name}: grouped vs per-key batch diverged at rest"
    );
    assert_eq!(
        grouped, singles,
        "{name}: grouped batch vs single gets diverged at rest"
    );
}

fn grouped_multiget_rounds(rounds: u64) {
    // Hash sharding: routing scatters the batch, groups are sparse.
    grouped_multiget_matches_per_key("kv/hash", striped_store(4), rounds);
    // Ordered sharding: routing by partition bounds, groups are runs.
    grouped_multiget_matches_per_key(
        "kv/ordered",
        Arc::new(KvStore::with_ordered_shards(4, 100, |_| {
            OptikSkipList2::new()
        })),
        rounds,
    );
}

#[test]
fn kv_grouped_multi_get_matches_per_key_reads_under_churn() {
    grouped_multiget_rounds(synchro::stress::ops(6_000));
}

#[test]
#[ignore = "full-strength grouped multi_get equivalence tier; run in CI via --ignored"]
fn kv_grouped_multi_get_matches_per_key_reads_under_churn_full() {
    grouped_multiget_rounds(30_000);
}

// ---------------------------------------------------------------------------
// Deadlock freedom: overlapping batches over random shard subsets.
// ---------------------------------------------------------------------------

/// Threads fire batched writes whose shard sets overlap arbitrarily (random
/// keys, random batch sizes, occasionally interleaved with batched reads).
/// Sorted-shard acquisition must make every batch complete; a deadlock
/// shows up as this test hanging (CI kills it) rather than as an assert.
fn overlapping_batches(iters: u64) {
    announce_seed();
    let s = striped_store(8);
    let barrier = Arc::new(Barrier::new(4));
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let s = Arc::clone(&s);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut x = stream(t, 0xA24BAED4963EE407);
            barrier.wait(); // maximal overlap
            for i in 0..iters {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let len = (x % 7 + 2) as usize; // 2..=8 keys
                let mut keys: Vec<u64> = Vec::with_capacity(len);
                let mut seed = x;
                for _ in 0..len {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(t);
                    keys.push(seed % 256 + 1);
                }
                match i % 3 {
                    0 => {
                        let batch: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k * 9)).collect();
                        s.multi_put(&batch);
                    }
                    1 => {
                        s.multi_remove(&keys);
                    }
                    _ => {
                        for v in s.multi_get(&keys).into_iter().flatten() {
                            assert_eq!(v % 9, 0, "foreign value {v}");
                        }
                    }
                }
            }
        }));
    }
    reclaim::offline_while(|| {
        for h in handles {
            h.join().unwrap();
        }
    });
    // Every surviving binding is one of ours.
    s.scan(|k, v| assert_eq!(v, k * 9));
}

#[test]
fn kv_overlapping_batches_complete_without_deadlock() {
    overlapping_batches(synchro::stress::ops(6_000));
}

#[test]
#[ignore = "full-strength kv deadlock-freedom tier; run in CI via --ignored"]
fn kv_overlapping_batches_complete_without_deadlock_full() {
    overlapping_batches(30_000);
}

// ---------------------------------------------------------------------------
// Snapshot scans: per-shard consistency under concurrent batch writes.
// ---------------------------------------------------------------------------

/// Writers rewrite a *single-shard* working set wholesale (all keys → one
/// tag, or all removed) while scanners snapshot. Because every batch stays
/// inside one shard and scans validate per shard, a snapshot must show the
/// working set either complete-with-one-tag or entirely absent.
fn scan_consistency(rounds: u64) {
    let s = striped_store(4);
    // Collect keys that land in shard 0.
    let keys: Vec<u64> = (1..=10_000u64)
        .filter(|&k| s.shard_of(k) == 0)
        .take(8)
        .collect();
    assert_eq!(keys.len(), 8, "need 8 colocated keys");
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let s = Arc::clone(&s);
        let keys = keys.clone();
        std::thread::spawn(move || {
            for round in 1..=rounds {
                let batch: Vec<(u64, u64)> = keys.iter().map(|&k| (k, round)).collect();
                s.multi_put(&batch);
                if round % 3 == 0 {
                    s.multi_remove(&keys);
                }
            }
        })
    };
    let mut scanners = Vec::new();
    for _ in 0..2 {
        let s = Arc::clone(&s);
        let keys = keys.clone();
        let stop = Arc::clone(&stop);
        scanners.push(std::thread::spawn(move || {
            let mut snapshots = 0u64;
            // Check-after-work, as in `batch_atomicity`: at least one
            // snapshot per run even if the writer finishes first.
            loop {
                let snap = s.snapshot();
                let ours: Vec<(u64, u64)> = snap
                    .iter()
                    .copied()
                    .filter(|(k, _)| keys.contains(k))
                    .collect();
                assert!(
                    ours.is_empty() || ours.len() == keys.len(),
                    "partial working set in snapshot: {} of {} keys",
                    ours.len(),
                    keys.len()
                );
                if let Some(&(_, tag)) = ours.first() {
                    assert!(
                        ours.iter().all(|&(_, v)| v == tag),
                        "mixed tags in one shard snapshot: {ours:?}"
                    );
                }
                snapshots += 1;
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            snapshots
        }));
    }
    reclaim::offline_while(|| {
        writer.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        for h in scanners {
            assert!(h.join().unwrap() > 0, "scanners must have made progress");
        }
    });
}

#[test]
fn kv_snapshots_are_shard_consistent_under_batch_writes() {
    scan_consistency(synchro::stress::ops(3_000));
}

#[test]
#[ignore = "full-strength kv scan tier; run in CI via --ignored"]
fn kv_snapshots_are_shard_consistent_under_batch_writes_full() {
    scan_consistency(15_000);
}

// ---------------------------------------------------------------------------
// Range scans over ordered backends: sorted, duplicate-free, consistent.
// ---------------------------------------------------------------------------

/// Every ordered backend family mounted in ordered-sharded stores, plus a
/// hash-sharded one (ranges must also work there, via the post-merge sort).
fn ordered_stores() -> Vec<(&'static str, Arc<dyn OrderedMap>)> {
    const MAX_KEY: u64 = 256;
    vec![
        (
            "kv/range-sl-herlihy",
            Arc::new(KvStore::with_ordered_shards(4, MAX_KEY, |_| {
                HerlihySkipList::new()
            })),
        ),
        (
            "kv/range-sl-herl-optik",
            Arc::new(KvStore::with_ordered_shards(4, MAX_KEY, |_| {
                HerlihyOptikSkipList::new()
            })),
        ),
        (
            "kv/range-sl-optik2",
            Arc::new(KvStore::with_ordered_shards(4, MAX_KEY, |_| {
                OptikSkipList2::new()
            })),
        ),
        (
            "kv/range-sl-fraser",
            Arc::new(KvStore::with_ordered_shards(4, MAX_KEY, |_| {
                FraserSkipList::new()
            })),
        ),
        (
            "kv/range-bst-tk",
            Arc::new(KvStore::with_ordered_shards(4, MAX_KEY, |_| {
                OptikBst::new()
            })),
        ),
        (
            "kv/range-hash-sharded",
            Arc::new(KvStore::with_shards(4, |_| OptikSkipList2::new())),
        ),
    ]
}

/// Concurrent range scans vs. random single-key writers, over every
/// ordered store: each returned window must be sorted, duplicate-free,
/// value-consistent, and must contain every key of an untouched backbone.
fn range_scans_under_churn(scan_rounds: u64) {
    announce_seed();
    for (name, s) in ordered_stores() {
        for k in (10..=250u64).step_by(10) {
            s.put(k, k);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let mut writers = Vec::new();
        for t in 0..3u64 {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            writers.push(std::thread::spawn(move || {
                let mut x = stream(t, 0x9E3779B97F4A7C15);
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % 250 + 1;
                    if k % 10 == 0 {
                        continue; // never touch the backbone
                    }
                    if x & 1 == 0 {
                        s.put(k, k * 3);
                    } else {
                        s.remove(k);
                    }
                }
                reclaim::offline();
            }));
        }
        for round in 0..scan_rounds {
            let lo = round % 97 + 1;
            let hi = lo + 120;
            let win = OrderedMap::range_collect(s.as_ref(), lo, hi);
            assert!(
                win.windows(2).all(|w| w[0].0 < w[1].0),
                "{name}: unsorted or duplicate keys in [{lo}, {hi}]: {win:?}"
            );
            for &(k, v) in &win {
                assert!((lo..=hi).contains(&k), "{name}: key {k} outside window");
                assert!(
                    v == k || v == k * 3,
                    "{name}: foreign value {v} for key {k}"
                );
            }
            for k in (10..=250u64).step_by(10).filter(|k| (lo..=hi).contains(k)) {
                assert!(
                    win.iter().any(|&(g, _)| g == k),
                    "{name}: range missed stable key {k} in [{lo}, {hi}]"
                );
            }
            reclaim::quiescent();
        }
        stop.store(true, Ordering::Relaxed);
        for h in writers {
            h.join().unwrap();
        }
        reclaim::online();
    }
}

#[test]
fn kv_range_scans_stay_sorted_and_complete_under_churn() {
    range_scans_under_churn(synchro::stress::ops(400));
}

#[test]
#[ignore = "full-strength kv range tier; run in CI via --ignored"]
fn kv_range_scans_stay_sorted_and_complete_under_churn_full() {
    range_scans_under_churn(2_000);
}

/// Writers rewrite a *single-partition* working set wholesale (batched:
/// all keys → one tag, or all removed) while scanners take bounded range
/// scans over exactly that window. Because the working set lives in one
/// ordered shard and `range_scan` validates per shard, every returned
/// window must show the working set complete-with-one-tag or entirely
/// absent — the range analogue of `scan_consistency`.
fn range_scan_snapshot_consistency(rounds: u64) {
    // span = 64: keys 11..=18 are colocated in shard 0.
    let s = Arc::new(KvStore::with_ordered_shards(4, 256, |_| {
        OptikSkipList2::new()
    }));
    let keys: Vec<u64> = (11..=18).collect();
    assert!(
        keys.iter().all(|&k| s.shard_of(k) == 0),
        "working set must be colocated for the test to mean anything"
    );
    s.multi_put(&keys.iter().map(|&k| (k, 1)).collect::<Vec<_>>());
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let s = Arc::clone(&s);
        let keys = keys.clone();
        std::thread::spawn(move || {
            for round in 2..=rounds {
                let batch: Vec<(u64, u64)> = keys.iter().map(|&k| (k, round)).collect();
                s.multi_put(&batch);
                if round % 3 == 0 {
                    s.multi_remove(&keys);
                }
            }
        })
    };
    let mut scanners = Vec::new();
    for _ in 0..2 {
        let s = Arc::clone(&s);
        let keys = keys.clone();
        let stop = Arc::clone(&stop);
        scanners.push(std::thread::spawn(move || {
            let mut windows = 0u64;
            // Check-after-work: at least one window per run even if the
            // writer finishes before this thread is first scheduled.
            loop {
                let win = s.range_scan(11, 18);
                assert!(
                    win.is_empty() || win.len() == keys.len(),
                    "partial working set in range window: {} of {} keys",
                    win.len(),
                    keys.len()
                );
                if let Some(&(_, tag)) = win.first() {
                    assert!(
                        win.iter().all(|&(_, v)| v == tag),
                        "mixed tags in one validated range window: {win:?}"
                    );
                }
                assert!(win.windows(2).all(|w| w[0].0 < w[1].0), "unsorted: {win:?}");
                windows += 1;
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            windows
        }));
    }
    reclaim::offline_while(|| {
        writer.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        for h in scanners {
            assert!(h.join().unwrap() > 0, "scanners must have made progress");
        }
    });
}

#[test]
fn kv_range_windows_are_consistent_snapshots_under_batch_writes() {
    range_scan_snapshot_consistency(synchro::stress::ops(3_000));
}

#[test]
#[ignore = "full-strength kv range-snapshot tier; run in CI via --ignored"]
fn kv_range_windows_are_consistent_snapshots_under_batch_writes_full() {
    range_scan_snapshot_consistency(15_000);
}

// ---------------------------------------------------------------------------
// TTL: expiry under churn, with the sweeper racing writers and readers.
// ---------------------------------------------------------------------------

/// Writers hammer TTL puts on a churn key range while an advancer drives
/// the fake clock, a sweeper reclaims incrementally, and readers verify
/// that (a) an untouched no-TTL backbone never goes missing or stale and
/// (b) churn keys only ever surface their own values. Afterwards the
/// clock jumps past every deadline and repeated sweeps must drain the
/// store back to exactly the backbone — nothing lost, nothing leaked.
type TtlStores = Vec<(&'static str, Arc<KvStore<OptikSkipList2>>, Arc<FakeClock>)>;

fn ttl_expiry_under_churn(rounds: u64) {
    let make_stores = || -> TtlStores {
        let hash_clock = Arc::new(FakeClock::new());
        let ord_clock = Arc::new(FakeClock::new());
        vec![
            (
                "kv/ttl-hash",
                Arc::new(KvStore::with_shards_ttl(
                    4,
                    Arc::clone(&hash_clock) as Arc<dyn optik_suite::kv::Clock>,
                    |_| OptikSkipList2::new(),
                )),
                hash_clock,
            ),
            (
                "kv/ttl-ordered",
                Arc::new(KvStore::with_ordered_shards_ttl(
                    4,
                    96,
                    Arc::clone(&ord_clock) as Arc<dyn optik_suite::kv::Clock>,
                    |_| OptikSkipList2::new(),
                )),
                ord_clock,
            ),
        ]
    };
    for (name, s, clock) in make_stores() {
        const BACKBONE: u64 = 16;
        for k in 1..=BACKBONE {
            s.put(k, k * 7);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::new();
        // TTL writers on the churn range.
        for t in 0..2u64 {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            workers.push(std::thread::spawn(move || {
                let mut x = stream(t, 0x9E3779B97F4A7C15);
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % 80 + BACKBONE + 1; // churn keys 17..=96
                    s.put_with_ttl(k, k * 13, 1 + x % 8);
                }
                reclaim::offline();
            }));
        }
        // Clock advancer: expiry actually happens mid-run.
        {
            let clock = Arc::clone(&clock);
            let stop = Arc::clone(&stop);
            workers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    clock.advance(1);
                    std::thread::yield_now();
                }
            }));
        }
        // Incremental sweeper.
        {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            workers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    s.sweep_expired(64);
                }
                reclaim::offline();
            }));
        }
        // Reader (this thread): the backbone is inviolate, churn values
        // are never foreign, snapshots only show live bindings.
        for round in 0..rounds {
            let k = round % BACKBONE + 1;
            assert_eq!(s.get(k), Some(k * 7), "{name}: backbone key {k}");
            let ck = round % 80 + BACKBONE + 1;
            if let Some(v) = s.get(ck) {
                assert_eq!(v, ck * 13, "{name}: foreign churn value");
            }
            if round % 64 == 0 {
                for (k, v) in s.snapshot() {
                    if k <= BACKBONE {
                        assert_eq!(v, k * 7, "{name}: backbone in snapshot");
                    } else {
                        assert_eq!(v, k * 13, "{name}: churn in snapshot");
                    }
                }
            }
            reclaim::quiescent();
        }
        stop.store(true, Ordering::Relaxed);
        let mut handles = workers.into_iter();
        reclaim::offline_while(|| {
            for h in handles.by_ref() {
                h.join().unwrap();
            }
        });
        // Drain: everything with a TTL must expire and sweep away.
        clock.advance(1_000);
        while s.sweep_expired(1024) > 0 {}
        assert_eq!(
            s.len() as u64,
            BACKBONE,
            "{name}: sweeps must reclaim every expired entry"
        );
        let snap = s.snapshot();
        assert_eq!(
            snap,
            (1..=BACKBONE).map(|k| (k, k * 7)).collect::<Vec<_>>(),
            "{name}: only the backbone survives"
        );
    }
}

#[test]
fn kv_ttl_expiry_is_exact_under_churn() {
    ttl_expiry_under_churn(synchro::stress::ops(3_000));
}

#[test]
#[ignore = "full-strength kv TTL stress; run in CI via --ignored"]
fn kv_ttl_expiry_is_exact_under_churn_full() {
    ttl_expiry_under_churn(15_000);
}

// ---------------------------------------------------------------------------
// Rebalancing: no lost or duplicated keys across boundary migrations.
// ---------------------------------------------------------------------------

/// Oscillates every movable partition boundary (`shifts` migrations in
/// total) while churn writers mutate non-backbone keys and a reader takes
/// validated range windows. Every window must stay sorted and
/// duplicate-free with the untouched backbone complete — i.e. migration
/// never loses or double-serves a key — and the final quiesced snapshot
/// must be exactly the union of backbone and surviving churn entries.
fn rebalance_migration_atomicity(shifts: u64) {
    announce_seed();
    const MAX_KEY: u64 = 1024;
    const SPAN: u64 = 128; // 8 shards ⇒ default bounds at 128, 256, …
    let s = Arc::new(KvStore::with_ordered_shards(8, MAX_KEY, |_| {
        OptikSkipList2::new()
    }));
    // Backbone: every 16th key, never written after the fill.
    let backbone: Vec<u64> = (16..=MAX_KEY - 16).step_by(16).collect();
    for &k in &backbone {
        s.put(k, k + 5);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut churners = Vec::new();
    for t in 0..2u64 {
        let s = Arc::clone(&s);
        let stop = Arc::clone(&stop);
        churners.push(std::thread::spawn(move || {
            let mut x = stream(t, 0xA24BAED4963EE407);
            while !stop.load(Ordering::Relaxed) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let k = x % MAX_KEY + 1;
                if k % 16 == 0 {
                    continue; // never touch the backbone
                }
                if x & 1 == 0 {
                    s.put(k, k * 3);
                } else {
                    s.remove(k);
                }
            }
            reclaim::offline();
        }));
    }
    // Window reader racing the migrations.
    let reader = {
        let s = Arc::clone(&s);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut windows = 0u64;
            let mut lo = 1u64;
            loop {
                let hi = lo + 120;
                let win = s.range_scan(lo, hi);
                assert!(
                    win.windows(2).all(|w| w[0].0 < w[1].0),
                    "unsorted or duplicated keys in [{lo}, {hi}]: {win:?}"
                );
                for &(k, v) in &win {
                    assert!((lo..=hi).contains(&k), "key {k} outside window");
                    if k % 16 == 0 {
                        assert_eq!(v, k + 5, "backbone key {k} corrupted");
                    } else {
                        assert_eq!(v, k * 3, "foreign churn value for {k}");
                    }
                }
                for k in (16..=MAX_KEY - 16)
                    .step_by(16)
                    .filter(|k| (lo..=hi).contains(k))
                {
                    assert!(
                        win.iter().any(|&(g, _)| g == k),
                        "migration lost backbone key {k} in [{lo}, {hi}]"
                    );
                }
                windows += 1;
                lo = lo % 900 + 7;
                reclaim::quiescent();
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            reclaim::offline();
            windows
        })
    };
    // The migrator (this thread): walk every movable boundary back and
    // forth; ±63 keeps every intermediate table strictly sorted.
    let mut moved_total = 0u64;
    for i in 0..shifts {
        let b = (i % 7) as usize;
        let base = SPAN * (b as u64 + 1);
        let target = if (i / 7) % 2 == 0 {
            base - 63
        } else {
            base + 63
        };
        let stats = s.shift_boundary(b, target).expect("legal oscillation");
        moved_total += stats.moved;
        reclaim::quiescent();
    }
    stop.store(true, Ordering::Relaxed);
    reclaim::offline_while(|| {
        for h in churners {
            h.join().unwrap();
        }
        assert!(reader.join().unwrap() > 0, "reader must have made progress");
    });
    assert!(
        moved_total > 0,
        "oscillating boundaries over a populated store must migrate keys"
    );
    // Quiesced: the store is exactly backbone ∪ surviving churn, no
    // duplicates, and every partition agrees with the routing table.
    let snap = s.snapshot();
    assert!(
        snap.windows(2).all(|w| w[0].0 < w[1].0),
        "final snapshot has duplicates"
    );
    for &k in &backbone {
        assert_eq!(s.get(k), Some(k + 5), "backbone key {k} after migrations");
    }
    assert_eq!(
        snap.iter().filter(|&&(k, _)| k % 16 == 0).count(),
        backbone.len(),
        "backbone complete in final snapshot"
    );
    for &(k, v) in &snap {
        assert_eq!(v, if k % 16 == 0 { k + 5 } else { k * 3 });
    }
    assert_eq!(s.len(), snap.len(), "per-shard counts agree with the scan");
}

#[test]
fn kv_rebalance_loses_and_duplicates_nothing() {
    rebalance_migration_atomicity(synchro::stress::ops(210));
}

#[test]
#[ignore = "full-strength kv rebalance stress (>= 1000 migrations); run in CI via --ignored"]
fn kv_rebalance_loses_and_duplicates_nothing_full() {
    rebalance_migration_atomicity(1_400);
}

// ---------------------------------------------------------------------------
// Ordered-sharding edge regressions: empty partitions, boundary keys,
// and the top of the key space.
// ---------------------------------------------------------------------------

#[test]
fn kv_range_scan_on_empty_partitions() {
    let s: KvStore<OptikSkipList2> =
        KvStore::with_ordered_shards(4, 400, |_| OptikSkipList2::new());
    // Entirely empty store: every window shape is empty, none panic.
    assert!(s.range_scan(1, 400).is_empty());
    assert!(s.range_scan(150, 160).is_empty(), "single empty partition");
    assert!(s.range_scan(1, u64::MAX).is_empty(), "unbounded window");
    // Populate only shard 2 (keys 201..=300): windows over the empty
    // flanking partitions stay empty, crossing windows see the edge.
    for k in 201..=300u64 {
        s.put(k, k);
    }
    assert!(s.range_scan(1, 200).is_empty());
    assert!(s.range_scan(301, 400).is_empty());
    assert_eq!(
        s.range_scan(195, 205).len(),
        5,
        "edge of the populated span"
    );
    // An empty-*span* partition (created by the rebalancer) routes
    // around itself: shard 1 becomes (100, 100] = nothing.
    s.shift_boundary(1, 100).expect("legal merge");
    assert_eq!(s.partition_bounds().unwrap(), vec![100, 100, 300, u64::MAX]);
    assert_eq!(s.range_scan(1, 400).len(), 100, "no keys lost to the merge");
    s.put(150, 999); // routes past the empty-span partition
    assert_eq!(s.get(150), Some(999));
    assert_eq!(s.range_scan(100, 201).first(), Some(&(150, 999)));
    // Splitting the empty partition back out is just another shift.
    s.shift_boundary(1, 200).expect("legal split");
    assert_eq!(s.get(150), Some(999));
    assert_eq!(s.range_scan(1, 400).len(), 101);
}

#[test]
fn kv_ordered_sharding_boundary_keys_route_exactly() {
    let s: KvStore<OptikSkipList2> =
        KvStore::with_ordered_shards(4, 400, |_| OptikSkipList2::new());
    // Keys exactly at and adjacent to every partition bound.
    let edges = [1u64, 100, 101, 200, 201, 300, 301, 400];
    for &k in &edges {
        assert_eq!(s.put(k, k * 2), None);
    }
    assert_eq!(s.shard_of(100), 0, "inclusive upper bound");
    assert_eq!(s.shard_of(101), 1);
    assert_eq!(s.shard_of(300), 2);
    assert_eq!(s.shard_of(301), 3);
    // Windows that straddle a boundary concatenate both partitions.
    assert_eq!(s.range_scan(100, 101), vec![(100, 200), (101, 202)]);
    assert_eq!(s.range_scan(200, 201), vec![(200, 400), (201, 402)]);
    // Degenerate one-key windows on each side of a bound.
    assert_eq!(s.range_scan(300, 300), vec![(300, 600)]);
    assert_eq!(s.range_scan(301, 301), vec![(301, 602)]);
    let all = s.range_scan(1, 400);
    assert_eq!(all.len(), edges.len());
    assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
}

#[test]
fn kv_ordered_sharding_survives_the_top_of_the_key_space() {
    // Partitions over the full user key space: spans this wide used to be
    // an overflow hazard, and MAX_USER_KEY sits one below the sentinel.
    let s: KvStore<OptikSkipList2> =
        KvStore::with_ordered_shards(4, MAX_USER_KEY, |_| OptikSkipList2::new());
    assert_eq!(s.shard_of(u64::MAX), 3, "sentinel routes, never panics");
    for k in [1u64, MAX_USER_KEY / 2, MAX_USER_KEY - 1, MAX_USER_KEY] {
        assert_eq!(s.put(k, 7), None, "key {k}");
        assert_eq!(s.get(k), Some(7), "key {k}");
    }
    // Windows touching the top of the key space, including hi = u64::MAX
    // (backends clamp at their tail sentinel).
    assert_eq!(
        s.range_scan(MAX_USER_KEY - 5, u64::MAX),
        vec![(MAX_USER_KEY - 1, 7), (MAX_USER_KEY, 7)]
    );
    assert_eq!(s.range_scan(u64::MAX, u64::MAX), vec![]);
    let all = s.range_scan(1, u64::MAX);
    assert_eq!(all.len(), 4);
    assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    // A boundary shift right at the top of the key space.
    let bounds = s.partition_bounds().unwrap();
    assert_eq!(*bounds.last().unwrap(), u64::MAX);
    s.shift_boundary(2, MAX_USER_KEY - 2).expect("legal shift");
    for k in [MAX_USER_KEY - 1, MAX_USER_KEY] {
        assert_eq!(s.get(k), Some(7), "key {k} after top-shift");
    }
}
