//! Integration of the reclamation substrate with real data structures:
//! retired nodes are eventually freed, structures do not leak across heavy
//! churn, and offline marking keeps reclamation flowing.

use std::sync::Arc;

use optik_suite::harness::api::ConcurrentSet;
use optik_suite::harness::ConcurrentQueue;
use optik_suite::lists::OptikList;
use optik_suite::queues::MsLfQueue;

#[test]
fn global_domain_frees_list_churn() {
    let before = reclaim::global().stats();
    let list = OptikList::new();
    for round in 0..2_000u64 {
        let k = round % 64 + 1;
        list.insert(k, k);
        list.delete(k);
    }
    reclaim::with_local(|h| {
        h.flush();
        h.collect();
    });
    let after = reclaim::global().stats();
    let retired = after.retired - before.retired;
    assert!(retired >= 1_900, "deletes retired nodes: {retired}");
    // Freed counts monotonically increase; we cannot assert equality here
    // (other test threads may be registered), but progress must happen
    // once this thread quiesces repeatedly.
    let mut freed_progress = false;
    for _ in 0..10_000 {
        reclaim::quiescent();
        reclaim::with_local(|h| h.collect());
        let now = reclaim::global().stats();
        if now.freed > before.freed {
            freed_progress = true;
            break;
        }
        std::thread::yield_now();
    }
    assert!(freed_progress, "no reclamation progress at all");
}

#[test]
fn queue_churn_is_balanced_retire_wise() {
    let before = reclaim::global().stats();
    let q = MsLfQueue::new();
    for i in 0..5_000u64 {
        q.enqueue(i);
        assert_eq!(q.dequeue(), Some(i));
    }
    let after = reclaim::global().stats();
    // Every dequeue retires exactly one dummy.
    assert!(
        after.retired - before.retired >= 5_000,
        "retires: {}",
        after.retired - before.retired
    );
}

#[test]
fn many_short_lived_threads_do_not_exhaust_slots() {
    // Threads register implicitly on first use and unregister at exit;
    // hundreds of sequential short-lived threads must be fine.
    for batch in 0..20 {
        let list = Arc::new(OptikList::new());
        let mut handles = Vec::new();
        for t in 0..32u64 {
            let list = Arc::clone(&list);
            handles.push(std::thread::spawn(move || {
                let k = batch * 100 + t + 1;
                list.insert(k, k);
                assert_eq!(list.delete(k), Some(k));
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
        });
        assert!(list.is_empty());
    }
    assert!(
        reclaim::global().stats().registered <= reclaim::MAX_THREADS,
        "slots must be recycled"
    );
}

#[test]
fn offline_sections_do_not_break_operations() {
    let list = OptikList::new();
    list.insert(1, 10);
    reclaim::offline_while(|| {
        // No data-structure calls in here — just blocking-style work.
        std::thread::sleep(std::time::Duration::from_millis(5));
    });
    // Back online: operations work normally.
    assert_eq!(list.search(1), Some(10));
    assert_eq!(list.delete(1), Some(10));
}
