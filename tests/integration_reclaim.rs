//! Integration of the reclamation substrate with real data structures:
//! retired nodes are eventually freed, structures do not leak across heavy
//! churn, and offline marking keeps reclamation flowing.

use std::sync::Arc;

use optik_suite::harness::api::ConcurrentSet;
use optik_suite::harness::ConcurrentQueue;
use optik_suite::lists::OptikList;
use optik_suite::queues::MsLfQueue;

#[test]
fn global_domain_frees_list_churn() {
    let before = reclaim::global().stats();
    let list = OptikList::new();
    for round in 0..2_000u64 {
        let k = round % 64 + 1;
        list.insert(k, k);
        list.delete(k);
    }
    reclaim::with_local(|h| {
        h.flush();
        h.collect();
    });
    let after = reclaim::global().stats();
    let retired = after.retired - before.retired;
    assert!(retired >= 1_900, "deletes retired nodes: {retired}");
    // Freed counts monotonically increase; we cannot assert equality here
    // (other test threads may be registered), but progress must happen
    // once this thread quiesces repeatedly.
    let mut freed_progress = false;
    for _ in 0..10_000 {
        reclaim::quiescent();
        reclaim::with_local(|h| h.collect());
        let now = reclaim::global().stats();
        if now.freed > before.freed {
            freed_progress = true;
            break;
        }
        std::thread::yield_now();
    }
    assert!(freed_progress, "no reclamation progress at all");
}

#[test]
fn queue_churn_is_balanced_retire_wise() {
    let before = reclaim::global().stats();
    let q = MsLfQueue::new();
    for i in 0..5_000u64 {
        q.enqueue(i);
        assert_eq!(q.dequeue(), Some(i));
    }
    let after = reclaim::global().stats();
    // Every dequeue retires exactly one dummy.
    assert!(
        after.retired - before.retired >= 5_000,
        "retires: {}",
        after.retired - before.retired
    );
}

#[test]
fn many_short_lived_threads_do_not_exhaust_slots() {
    // Threads register implicitly on first use and unregister at exit;
    // hundreds of sequential short-lived threads must be fine.
    for batch in 0..20 {
        let list = Arc::new(OptikList::new());
        let mut handles = Vec::new();
        for t in 0..32u64 {
            let list = Arc::clone(&list);
            handles.push(std::thread::spawn(move || {
                let k = batch * 100 + t + 1;
                list.insert(k, k);
                assert_eq!(list.delete(k), Some(k));
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
        });
        assert!(list.is_empty());
    }
    assert!(
        reclaim::global().stats().registered <= reclaim::MAX_THREADS,
        "slots must be recycled"
    );
}

#[test]
fn qsbr_survives_register_unregister_churn_while_retiring() {
    // The ROADMAP reclamation gap: threads registering and unregistering
    // *while* other threads retire nodes. Two long-lived retirer threads
    // churn an OptikList (every delete retires a node); meanwhile waves of
    // short-lived threads register implicitly (first operation) and
    // unregister at exit. Slot recycling, retirement, and reclamation
    // progress must all survive the churn.
    use std::sync::atomic::{AtomicBool, Ordering};

    let rounds = optik_suite::harness::stress::ops(4_000);
    let before = reclaim::global().stats();
    let list = Arc::new(OptikList::new());
    let stop = Arc::new(AtomicBool::new(false));
    let mut retirers = Vec::new();
    for t in 0..2u64 {
        let list = Arc::clone(&list);
        let stop = Arc::clone(&stop);
        retirers.push(std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let k = (t * 97 + n) % 64 + 1;
                list.insert(k, k);
                list.delete(k);
                n += 1;
            }
            n
        }));
    }
    reclaim::offline_while(|| {
        // Waves of short-lived threads: register/unregister churn.
        for wave in 0..rounds / 100 {
            let mut short = Vec::new();
            for t in 0..8u64 {
                let list = Arc::clone(&list);
                short.push(std::thread::spawn(move || {
                    let k = 1000 + wave * 10 + t;
                    list.insert(k, k);
                    assert_eq!(list.delete(k), Some(k));
                }));
            }
            for h in short {
                h.join().unwrap();
            }
        }
        stop.store(true, Ordering::Relaxed);
        let churned: u64 = retirers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(churned > 0, "retirers made progress");
    });
    // Thread slots were recycled, nodes were retired, and reclamation
    // actually freed some of them despite the churn.
    let after = reclaim::global().stats();
    assert!(
        after.registered <= reclaim::MAX_THREADS,
        "slots recycled: {}",
        after.registered
    );
    assert!(after.retired > before.retired, "churn retired nodes");
    let mut freed_progress = false;
    for _ in 0..10_000 {
        reclaim::quiescent();
        reclaim::with_local(|h| {
            h.flush();
            h.collect();
        });
        if reclaim::global().stats().freed > before.freed {
            freed_progress = true;
            break;
        }
        std::thread::yield_now();
    }
    assert!(freed_progress, "no reclamation progress under churn");
}

#[test]
fn node_pool_growth_is_bounded_under_contention() {
    // NodePool growth behaviour (ROADMAP gap), in two parts.
    use reclaim::{NodePool, Qsbr};
    use std::sync::atomic::AtomicU64;

    #[derive(Default)]
    struct Node {
        _key: AtomicU64,
    }

    const CHUNK: usize = 64;
    const LIVE: usize = 16;

    // Part 1 (deterministic): with a single registered thread every
    // `quiescent()` completes a grace period, so with ≤LIVE live nodes the
    // pool's reserved capacity must plateau at a couple of chunks no
    // matter how many allocations flow through it.
    {
        let domain = Qsbr::new();
        let pool: Arc<NodePool<Node>> = NodePool::with_chunk_capacity(CHUNK);
        let h = domain.register();
        for _ in 0..1_000 {
            let ptrs: Vec<_> = (0..LIVE).map(|_| pool.alloc(Node::default).ptr).collect();
            for p in ptrs {
                // SAFETY: allocated above, never published, retired once.
                unsafe { pool.retire(p, &h) };
            }
            h.quiescent();
            h.collect();
        }
        assert_eq!(pool.allocations(), 16_000);
        assert!(
            pool.capacity() <= 4 * CHUNK,
            "single-thread churn must plateau: capacity {}",
            pool.capacity()
        );
        assert!(
            pool.recycle_hits() > pool.allocations() / 2,
            "recycling dominates: {} of {}",
            pool.recycle_hits(),
            pool.allocations()
        );
    }

    // Part 2 (contention): several threads churn concurrently; capacity may
    // transiently grow with grace-period backlog, but once the threads
    // unregister and the orphan batches drain, the free list must absorb a
    // fresh allocation burst with ZERO new growth — proving the slots were
    // recycled, not leaked.
    const THREADS: usize = 4;
    let rounds = optik_suite::harness::stress::ops(2_000);
    let domain = Qsbr::new();
    let pool: Arc<NodePool<Node>> = NodePool::with_chunk_capacity(CHUNK);
    let mut workers = Vec::new();
    for _ in 0..THREADS {
        let domain = Arc::clone(&domain);
        let pool = Arc::clone(&pool);
        workers.push(std::thread::spawn(move || {
            let h = domain.register();
            for _ in 0..rounds {
                let ptrs: Vec<_> = (0..LIVE).map(|_| pool.alloc(Node::default).ptr).collect();
                for p in ptrs {
                    // SAFETY: allocated above, never published, retired once.
                    unsafe { pool.retire(p, &h) };
                }
                h.quiescent();
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }
    // Drain: with all workers unregistered, a fresh handle's quiescent
    // points overtake every orphaned batch (bounded loop: multi-grace
    // retirement protocols may need a few passes). Gate on `in_grace`,
    // not `free_len()`: fresh slots stranded in exited workers'
    // magazines count as free but are only adoptable by a thread that
    // inherits the registry index — this thread's refill path cannot
    // reach them. Once nothing is awaiting grace, every *recycled* slot
    // was released through this thread (the only collector), so it sits
    // in this thread's magazines or the depot — both reachable by the
    // burst below.
    let h = domain.register();
    let burst = THREADS * LIVE;
    for _ in 0..10_000 {
        h.quiescent();
        h.collect();
        if pool.stats().in_grace == 0 {
            break;
        }
        std::thread::yield_now();
    }
    let drained = pool.stats();
    assert_eq!(
        drained.in_grace, 0,
        "drain left slots in grace: {drained:?}"
    );
    assert!(
        pool.free_len() >= burst,
        "drain left only {} free slots",
        pool.free_len()
    );
    // The no-leak proof is the ledger, not capacity: every slot the
    // workers ever allocated is back in a magazine or the depot
    // (live() counts capacity minus every free bucket, so 0 means
    // nothing leaked and nothing is still in flight).
    assert_eq!(drained.live(), 0, "slots leaked: {drained:?}");
    // A fresh burst from THIS thread may still grow the pool by one
    // batch: the recycled slots sit in the exited workers' magazines,
    // reachable only by threads that inherit those registry indexes
    // (per-thread caching is the point — there is no cross-thread
    // steal). The bound that must hold is one refill batch, not zero.
    let cap_drained = pool.capacity();
    let fresh: Vec<_> = (0..burst).map(|_| pool.alloc(Node::default).ptr).collect();
    assert!(
        pool.capacity() <= cap_drained + CHUNK,
        "a {burst}-node burst grew a drained pool by more than one batch: {} -> {}",
        cap_drained,
        pool.capacity()
    );
    for p in fresh {
        // SAFETY: allocated above, never published.
        unsafe { pool.dealloc_unpublished(p) };
    }
}

#[test]
fn offline_sections_do_not_break_operations() {
    let list = OptikList::new();
    list.insert(1, 10);
    reclaim::offline_while(|| {
        // No data-structure calls in here — just blocking-style work.
        std::thread::sleep(std::time::Duration::from_millis(5));
    });
    // Back online: operations work normally.
    assert_eq!(list.search(1), Some(10));
    assert_eq!(list.delete(1), Some(10));
}
