//! Cross-crate integration: every `ConcurrentSet` registered in the
//! scenario registry (lists, hash tables, skip lists, array maps, BSTs)
//! is run through the same paper-style concurrent workload and checked
//! against count and visibility invariants. Registering a structure in
//! `optik_bench::scenarios` automatically enrolls it here.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use optik_suite::harness::api::ConcurrentSet;
use optik_suite::harness::scenario::Subject;

fn all_sets() -> Vec<(String, Arc<dyn ConcurrentSet>)> {
    // Deduplicate by subject id, keeping the LAST registration: for the
    // fixed-capacity array maps the later scenarios carry the larger
    // paper workloads (fig7.large: 1024 slots), which fit this file's
    // key ranges; earlier ones (fig7.small: 4 slots) would reject the
    // stable-key fills.
    let reg = optik_bench::scenarios::registry();
    let mut out: Vec<(String, Arc<dyn ConcurrentSet>)> = Vec::new();
    for s in reg.iter() {
        if let Subject::Set(make) = s.subject() {
            let entry = (s.subject_id().to_string(), make());
            match out.iter_mut().find(|(id, _)| *id == s.subject_id()) {
                Some(slot) => *slot = entry,
                None => out.push(entry),
            }
        }
    }
    assert!(
        out.len() >= 20,
        "registry shrank: {} set subjects",
        out.len()
    );
    out
}

/// Body of the net-count stress test, parameterized so the tier-1 run can
/// scale with the core count (see `optik_harness::stress`) while the
/// `--ignored` variant always runs at full 8-core strength.
fn concurrent_workload_preserves_net_count(ops: u64) {
    const THREADS: u64 = 8;
    const KEYS: u64 = 96;
    let ops = ops.max(64);
    for (name, set) in all_sets() {
        let net = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let set = Arc::clone(&set);
            let net = Arc::clone(&net);
            let name = name.clone();
            handles.push(std::thread::spawn(move || {
                let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                for _ in 0..ops {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % KEYS + 1;
                    match x % 3 {
                        0 => {
                            if set.insert(k, k * 31) {
                                net.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        1 => {
                            if set.delete(k).is_some() {
                                net.fetch_sub(1, Ordering::Relaxed);
                            }
                        }
                        _ => {
                            if let Some(v) = set.search(k) {
                                assert_eq!(v, k * 31, "{name}: corrupted value for key {k}");
                            }
                        }
                    }
                }
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(
            set.len() as i64,
            net.load(Ordering::Relaxed),
            "{name}: final size vs net successful updates"
        );
    }
}

#[test]
fn concurrent_workload_preserves_net_count_everywhere() {
    concurrent_workload_preserves_net_count(optik_suite::harness::stress::ops(15_000));
}

#[test]
#[ignore = "full 8-core-strength stress tier; run via --ignored"]
fn concurrent_workload_preserves_net_count_everywhere_full() {
    concurrent_workload_preserves_net_count(15_000);
}

fn stable_keys_remain_visible(churn_iters: u64) {
    // Half the key space is immutable; churning the other half must never
    // make a stable key invisible or corrupt its value.
    for (name, set) in all_sets() {
        for k in (2..=120u64).step_by(2) {
            assert!(set.insert(k, k + 7), "{name}");
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut churners = Vec::new();
        for t in 0..4u64 {
            let set = Arc::clone(&set);
            churners.push(std::thread::spawn(move || {
                for i in 0..churn_iters {
                    let k = ((t * 17 + i) % 60) * 2 + 1; // odd keys only
                    if i % 2 == 0 {
                        set.insert(k, k + 7);
                    } else {
                        set.delete(k);
                    }
                }
            }));
        }
        let mut readers = Vec::new();
        for _ in 0..4 {
            let set = Arc::clone(&set);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for k in (2..=120u64).step_by(2) {
                        assert_eq!(set.search(k), Some(k + 7), "stable key {k} lost");
                    }
                }
            }));
        }
        reclaim::offline_while(|| {
            for c in churners {
                c.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
            for r in readers {
                r.join().unwrap();
            }
        });
        // Cleanup for the next implementation (fresh structures each loop,
        // so nothing to do — but assert the stable half is intact).
        for k in (2..=120u64).step_by(2) {
            assert_eq!(set.search(k), Some(k + 7), "{name}");
        }
    }
}

#[test]
fn stable_keys_remain_visible_during_churn() {
    stable_keys_remain_visible(optik_suite::harness::stress::ops(30_000));
}

#[test]
#[ignore = "full 8-core-strength stress tier; run via --ignored"]
fn stable_keys_remain_visible_during_churn_full() {
    stable_keys_remain_visible(30_000);
}

#[test]
fn single_key_histories_are_linearizable() {
    // Four threads hammer one key; the recorded timed history must admit a
    // legal linearization of the two-state set spec — checked exhaustively
    // by the harness's Wing–Gong style checker.
    use optik_suite::harness::linearize::{check_history, Recorder, SetOp};
    use std::sync::{Barrier, Mutex};

    const KEY: u64 = 42;
    for (name, set) in all_sets() {
        let all = Arc::new(Mutex::new(Vec::new()));
        let barrier = Arc::new(Barrier::new(4));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let set = Arc::clone(&set);
            let all = Arc::clone(&all);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let mut rec = Recorder::new();
                barrier.wait();
                for i in 0..12u64 {
                    match (t + i) % 3 {
                        0 => rec.record(SetOp::Insert, || set.insert(KEY, KEY)),
                        1 => rec.record(SetOp::Delete, || set.delete(KEY).is_some()),
                        _ => rec.record(SetOp::Search, || set.search(KEY).is_some()),
                    }
                }
                all.lock().unwrap().extend(rec.into_ops());
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
        });
        let history = all.lock().unwrap().clone();
        assert!(
            check_history(&history, false),
            "{name}: non-linearizable single-key history"
        );
        // Clean up the key for the next loop iteration's fresh structure.
        let _ = set.delete(KEY);
    }
}

fn sequential_agreement(tape_len: u64) {
    // Drive every structure with the same operation tape; all must agree
    // with a BTreeMap model (and hence with each other).
    let sets = all_sets();
    let mut model = std::collections::BTreeMap::new();
    let mut x = 0x12345678u64;
    for _ in 0..tape_len {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = x % 128 + 1;
        match x % 3 {
            0 => {
                let expect = !model.contains_key(&k);
                if expect {
                    model.insert(k, k);
                }
                for (name, s) in &sets {
                    assert_eq!(s.insert(k, k), expect, "{name} insert {k}");
                }
            }
            1 => {
                let expect = model.remove(&k);
                for (name, s) in &sets {
                    assert_eq!(s.delete(k), expect, "{name} delete {k}");
                }
            }
            _ => {
                let expect = model.get(&k).copied();
                for (name, s) in &sets {
                    assert_eq!(s.search(k), expect, "{name} search {k}");
                }
            }
        }
    }
    for (name, s) in &sets {
        assert_eq!(s.len(), model.len(), "{name} final length");
    }
}

#[test]
fn sequential_agreement_across_all_implementations() {
    sequential_agreement(optik_suite::harness::stress::ops(30_000));
}

#[test]
#[ignore = "full-length model-agreement tape; run via --ignored"]
fn sequential_agreement_across_all_implementations_full() {
    sequential_agreement(30_000);
}
