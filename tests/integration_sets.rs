//! Cross-crate integration: every `ConcurrentSet` in the workspace (lists,
//! hash tables, skip lists, and the array map behind an adapter) is run
//! through the same paper-style concurrent workload and checked against
//! count and visibility invariants.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use optik_suite::bsts::{GlobalLockBst, OptikBst, OptikGlBst};
use optik_suite::harness::api::{ConcurrentSet, Key, Val};
use optik_suite::hashtables::{
    LazyGlHashTable, OptikGlHashTable, OptikHashTable, OptikMapHashTable,
    ResizableStripedHashTable, StripedHashTable, StripedOptikHashTable,
};
use optik_suite::lists::{
    GlobalLockList, HarrisList, LazyCacheList, LazyList, OptikCacheList, OptikGlList, OptikList,
};
use optik_suite::maps::{ArrayMap, OptikArrayMap};
use optik_suite::skiplists::{
    FraserSkipList, HerlihyOptikSkipList, HerlihySkipList, OptikSkipList1, OptikSkipList2,
};

struct MapAsSet(OptikArrayMap);
impl ConcurrentSet for MapAsSet {
    fn search(&self, key: Key) -> Option<Val> {
        self.0.search(key)
    }
    fn insert(&self, key: Key, val: Val) -> bool {
        self.0.insert(key, val)
    }
    fn delete(&self, key: Key) -> Option<Val> {
        self.0.delete(key)
    }
    fn len(&self) -> usize {
        ArrayMap::len(&self.0)
    }
}

fn all_sets() -> Vec<(&'static str, Arc<dyn ConcurrentSet>)> {
    vec![
        ("list/mcs-gl-opt", Arc::new(GlobalLockList::new())),
        (
            "list/optik-gl",
            Arc::new(OptikGlList::<optik::OptikVersioned>::new()),
        ),
        ("list/optik", Arc::new(OptikList::new())),
        ("list/optik-cache", Arc::new(OptikCacheList::new())),
        ("list/lazy", Arc::new(LazyList::new())),
        ("list/lazy-cache", Arc::new(LazyCacheList::new())),
        ("list/harris", Arc::new(HarrisList::new())),
        ("ht/optik-gl", Arc::new(OptikGlHashTable::new(64))),
        ("ht/optik", Arc::new(OptikHashTable::new(64))),
        (
            "ht/optik-map",
            Arc::new(OptikMapHashTable::with_bucket_capacity(64, 32)),
        ),
        ("ht/lazy-gl", Arc::new(LazyGlHashTable::new(64))),
        ("ht/java", Arc::new(StripedHashTable::new(64, 16))),
        (
            "ht/java-optik",
            Arc::new(StripedOptikHashTable::new(64, 16)),
        ),
        (
            "ht/java-resize",
            Arc::new(ResizableStripedHashTable::new(16, 2)),
        ),
        ("sl/herlihy", Arc::new(HerlihySkipList::new())),
        ("sl/herl-optik", Arc::new(HerlihyOptikSkipList::new())),
        ("sl/optik1", Arc::new(OptikSkipList1::new())),
        ("sl/optik2", Arc::new(OptikSkipList2::new())),
        ("sl/fraser", Arc::new(FraserSkipList::new())),
        ("map/optik", Arc::new(MapAsSet(OptikArrayMap::new(256)))),
        ("bst/mcs-gl", Arc::new(GlobalLockBst::new())),
        (
            "bst/optik-gl",
            Arc::new(OptikGlBst::<optik::OptikVersioned>::new()),
        ),
        ("bst/optik-tk", Arc::new(OptikBst::new())),
    ]
}

#[test]
fn concurrent_workload_preserves_net_count_everywhere() {
    const THREADS: u64 = 8;
    const OPS: u64 = 15_000;
    const KEYS: u64 = 96;
    for (name, set) in all_sets() {
        let net = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let set = Arc::clone(&set);
            let net = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                for _ in 0..OPS {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % KEYS + 1;
                    match x % 3 {
                        0 => {
                            if set.insert(k, k * 31) {
                                net.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        1 => {
                            if set.delete(k).is_some() {
                                net.fetch_sub(1, Ordering::Relaxed);
                            }
                        }
                        _ => {
                            if let Some(v) = set.search(k) {
                                assert_eq!(v, k * 31, "{name}: corrupted value for key {k}");
                            }
                        }
                    }
                }
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(
            set.len() as i64,
            net.load(Ordering::Relaxed),
            "{name}: final size vs net successful updates"
        );
    }
}

#[test]
fn stable_keys_remain_visible_during_churn() {
    // Half the key space is immutable; churning the other half must never
    // make a stable key invisible or corrupt its value.
    for (name, set) in all_sets() {
        for k in (2..=120u64).step_by(2) {
            assert!(set.insert(k, k + 7), "{name}");
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut churners = Vec::new();
        for t in 0..4u64 {
            let set = Arc::clone(&set);
            churners.push(std::thread::spawn(move || {
                for i in 0..30_000u64 {
                    let k = ((t * 17 + i) % 60) * 2 + 1; // odd keys only
                    if i % 2 == 0 {
                        set.insert(k, k + 7);
                    } else {
                        set.delete(k);
                    }
                }
            }));
        }
        let mut readers = Vec::new();
        for _ in 0..4 {
            let set = Arc::clone(&set);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for k in (2..=120u64).step_by(2) {
                        assert_eq!(set.search(k), Some(k + 7), "stable key {k} lost");
                    }
                }
            }));
        }
        reclaim::offline_while(|| {
            for c in churners {
                c.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
            for r in readers {
                r.join().unwrap();
            }
        });
        // Cleanup for the next implementation (fresh structures each loop,
        // so nothing to do — but assert the stable half is intact).
        for k in (2..=120u64).step_by(2) {
            assert_eq!(set.search(k), Some(k + 7), "{name}");
        }
    }
}

#[test]
fn single_key_histories_are_linearizable() {
    // Four threads hammer one key; the recorded timed history must admit a
    // legal linearization of the two-state set spec — checked exhaustively
    // by the harness's Wing–Gong style checker.
    use optik_suite::harness::linearize::{check_history, Recorder, SetOp};
    use std::sync::{Barrier, Mutex};

    const KEY: u64 = 42;
    for (name, set) in all_sets() {
        let all = Arc::new(Mutex::new(Vec::new()));
        let barrier = Arc::new(Barrier::new(4));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let set = Arc::clone(&set);
            let all = Arc::clone(&all);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let mut rec = Recorder::new();
                barrier.wait();
                for i in 0..12u64 {
                    match (t + i) % 3 {
                        0 => rec.record(SetOp::Insert, || set.insert(KEY, KEY)),
                        1 => rec.record(SetOp::Delete, || set.delete(KEY).is_some()),
                        _ => rec.record(SetOp::Search, || set.search(KEY).is_some()),
                    }
                }
                all.lock().unwrap().extend(rec.into_ops());
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
        });
        let history = all.lock().unwrap().clone();
        assert!(
            check_history(&history, false),
            "{name}: non-linearizable single-key history"
        );
        // Clean up the key for the next loop iteration's fresh structure.
        let _ = set.delete(KEY);
    }
}

#[test]
fn sequential_agreement_across_all_implementations() {
    // Drive every structure with the same operation tape; all must agree
    // with a BTreeMap model (and hence with each other).
    let sets = all_sets();
    let mut model = std::collections::BTreeMap::new();
    let mut x = 0x12345678u64;
    for _ in 0..30_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = x % 128 + 1;
        match x % 3 {
            0 => {
                let expect = !model.contains_key(&k);
                if expect {
                    model.insert(k, k);
                }
                for (name, s) in &sets {
                    assert_eq!(s.insert(k, k), expect, "{name} insert {k}");
                }
            }
            1 => {
                let expect = model.remove(&k);
                for (name, s) in &sets {
                    assert_eq!(s.delete(k), expect, "{name} delete {k}");
                }
            }
            _ => {
                let expect = model.get(&k).copied();
                for (name, s) in &sets {
                    assert_eq!(s.search(k), expect, "{name} search {k}");
                }
            }
        }
    }
    for (name, s) in &sets {
        assert_eq!(s.len(), model.len(), "{name} final length");
    }
}
