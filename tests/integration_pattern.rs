//! The OPTIK pattern end-to-end: the `transaction` helper, guards, and the
//! lock conformance properties exercised through the public suite API.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use optik_suite::optik::{transaction, transaction_with_backoff, OptikGuard, TxStep};
use optik_suite::prelude::*;

#[test]
fn transactions_compose_with_structures() {
    // A "move" between two array maps, made atomic per-map by OPTIK
    // transactions at the application level: the value leaves map A
    // exactly once and lands in map B exactly once. (`ArrayMap::`
    // disambiguates from the maps' `ConcurrentSet` impl.)
    let a: OptikArrayMap = OptikArrayMap::new(16);
    let b: OptikArrayMap = OptikArrayMap::new(16);
    assert!(ArrayMap::insert(&a, 5, 500));

    let moved = ArrayMap::delete(&a, 5);
    assert_eq!(moved, Some(500));
    assert!(ArrayMap::insert(&b, 5, moved.unwrap()));
    assert_eq!(ArrayMap::search(&a, 5), None);
    assert_eq!(ArrayMap::search(&b, 5), Some(500));
}

#[test]
fn contended_transactions_count_exactly() {
    const THREADS: usize = 8;
    let ops = optik_suite::harness::stress::ops(10_000);
    let lock = Arc::new(OptikVersioned::new());
    let counter = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let lock = Arc::clone(&lock);
        let counter = Arc::clone(&counter);
        handles.push(std::thread::spawn(move || {
            for _ in 0..ops {
                transaction_with_backoff(
                    &*lock,
                    |_v| TxStep::Commit::<(), ()>(()),
                    |()| {
                        let c = counter.load(Ordering::Relaxed);
                        counter.store(c + 1, Ordering::Relaxed);
                    },
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.load(Ordering::Relaxed), THREADS as u64 * ops);
}

#[test]
fn early_return_transactions_never_lock() {
    let lock = OptikVersioned::new();
    let v0 = lock.get_version();
    for i in 0..100u64 {
        let out = transaction(&lock, |_| TxStep::Return::<(), u64>(i), |_| unreachable!());
        assert_eq!(out, i);
    }
    assert_eq!(lock.get_version(), v0, "no version traffic at all");
}

#[test]
fn guards_interoperate_with_raw_interface() {
    let lock = OptikTicket::new();
    // Raw acquire, guard acquire, interleaved.
    let v = lock.get_version();
    {
        let g = OptikGuard::try_acquire(&lock, v).expect("free");
        g.commit();
    }
    let v2 = lock.get_version();
    assert!(!OptikTicket::is_same_version(v, v2));
    assert!(lock.try_lock_version(v2));
    lock.revert();
    assert!(
        OptikTicket::is_same_version(lock.get_version(), v2),
        "revert restored the ticket version"
    );
}

#[test]
fn num_queued_reports_contention() {
    let lock = Arc::new(OptikTicket::new());
    let v = lock.get_version();
    assert!(lock.try_lock_version(v));
    let waiters: Vec<_> = (0..3)
        .map(|_| {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                lock.lock();
                lock.unlock();
            })
        })
        .collect();
    while lock.num_queued() < 4 {
        synchro::relax();
    }
    assert!(lock.num_queued() >= 4, "holder + 3 waiters");
    lock.unlock();
    for w in waiters {
        w.join().unwrap();
    }
    assert_eq!(lock.num_queued(), 0);
}
