//! Workspace-wide property-based model tests.
//!
//! Every concurrent structure, driven single-threaded by an arbitrary
//! operation sequence, must agree step-for-step with the obvious standard
//! library model (`BTreeMap` for sets, `VecDeque` for queues, `Vec` for
//! stacks). Single-threaded model agreement plus per-crate concurrent
//! invariant tests (counts, stable-key visibility, linearizable single-key
//! histories) together give the correctness story of the reproduction.
//!
//! These tests deliberately use a *small* key range so that sequences of a
//! few hundred operations revisit keys often — duplicate inserts, misses,
//! and delete/re-insert cycles are where the validation logic lives.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use proptest::prelude::*;

use optik_suite::bsts::{GlobalLockBst, OptikBst, OptikGlBst};
use optik_suite::harness::api::{ConcurrentMap, ConcurrentQueue, ConcurrentSet, OrderedMap};
use optik_suite::hashtables::{
    LazyGlHashTable, OptikGlHashTable, OptikHashTable, OptikMapHashTable,
    ResizableStripedHashTable, StripedHashTable, StripedOptikHashTable,
};
use optik_suite::kv::KvStore;
use optik_suite::lists::{
    GlobalLockList, HarrisList, LazyCacheList, LazyList, OptikCacheList, OptikGlList, OptikList,
};
use optik_suite::queues::{
    MsLbQueue, MsLfQueue, OptikQueue0, OptikQueue1, OptikQueue2, VictimQueue,
};
use optik_suite::skiplists::{
    FraserSkipList, HerlihyOptikSkipList, HerlihySkipList, OptikSkipList1, OptikSkipList2,
};
use optik_suite::stacks::{ConcurrentStack, EliminationStack, OptikStack, TreiberStack};

/// One search-structure operation drawn by proptest.
#[derive(Debug, Clone, Copy)]
enum SetOp {
    Insert(u64, u64),
    Delete(u64),
    Search(u64),
}

fn set_ops(max_key: u64, len: usize) -> impl Strategy<Value = Vec<SetOp>> {
    proptest::collection::vec(
        (0u8..3, 1..=max_key, 0u64..1_000).prop_map(|(op, k, v)| match op {
            0 => SetOp::Insert(k, v),
            1 => SetOp::Delete(k),
            _ => SetOp::Search(k),
        }),
        1..len,
    )
}

fn check_set_against_model(set: &dyn ConcurrentSet, ops: &[SetOp]) -> Result<(), TestCaseError> {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for &op in ops {
        match op {
            SetOp::Insert(k, v) => {
                let expect = !model.contains_key(&k);
                if expect {
                    model.insert(k, v);
                }
                prop_assert_eq!(set.insert(k, v), expect, "insert {}", k);
            }
            SetOp::Delete(k) => {
                prop_assert_eq!(set.delete(k), model.remove(&k), "delete {}", k);
            }
            SetOp::Search(k) => {
                prop_assert_eq!(set.search(k), model.get(&k).copied(), "search {}", k);
            }
        }
    }
    prop_assert_eq!(set.len(), model.len(), "final length");
    // Every surviving key must still be visible with its exact value.
    for (&k, &v) in &model {
        prop_assert_eq!(set.search(k), Some(v), "survivor {}", k);
    }
    Ok(())
}

/// All sets, constructed fresh (hash tables sized so collisions occur).
fn all_sets() -> Vec<(&'static str, Arc<dyn ConcurrentSet>)> {
    vec![
        ("list/mcs-gl-opt", Arc::new(GlobalLockList::new())),
        (
            "list/optik-gl",
            Arc::new(OptikGlList::<optik::OptikVersioned>::new()),
        ),
        ("list/optik", Arc::new(OptikList::new())),
        ("list/optik-cache", Arc::new(OptikCacheList::new())),
        ("list/lazy", Arc::new(LazyList::new())),
        ("list/lazy-cache", Arc::new(LazyCacheList::new())),
        ("list/harris", Arc::new(HarrisList::new())),
        ("ht/optik-gl", Arc::new(OptikGlHashTable::new(8))),
        ("ht/optik", Arc::new(OptikHashTable::new(8))),
        (
            "ht/optik-map",
            Arc::new(OptikMapHashTable::with_bucket_capacity(8, 48)),
        ),
        ("ht/lazy-gl", Arc::new(LazyGlHashTable::new(8))),
        ("ht/java", Arc::new(StripedHashTable::new(8, 4))),
        ("ht/java-optik", Arc::new(StripedOptikHashTable::new(8, 4))),
        (
            "ht/java-resize",
            Arc::new(ResizableStripedHashTable::new(4, 2)),
        ),
        ("sl/herlihy", Arc::new(HerlihySkipList::new())),
        ("sl/herl-optik", Arc::new(HerlihyOptikSkipList::new())),
        ("sl/optik1", Arc::new(OptikSkipList1::new())),
        ("sl/optik2", Arc::new(OptikSkipList2::new())),
        ("sl/fraser", Arc::new(FraserSkipList::new())),
        ("bst/mcs-gl", Arc::new(GlobalLockBst::new())),
        (
            "bst/optik-gl",
            Arc::new(OptikGlBst::<optik::OptikVersioned>::new()),
        ),
        ("bst/optik-tk", Arc::new(OptikBst::new())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn every_set_matches_btreemap(ops in set_ops(32, 300)) {
        for (name, set) in all_sets() {
            check_set_against_model(set.as_ref(), &ops)
                .map_err(|e| TestCaseError::fail(format!("{name}: {e}")))?;
        }
    }

    #[test]
    fn every_set_matches_btreemap_dense_two_keys(ops in set_ops(2, 400)) {
        // Two keys: maximal revisit rate; exercises duplicate-insert and
        // delete-reinsert validation paths almost every step.
        for (name, set) in all_sets() {
            check_set_against_model(set.as_ref(), &ops)
                .map_err(|e| TestCaseError::fail(format!("{name}: {e}")))?;
        }
    }
}

/// One kv-store operation drawn by proptest, including the batched and
/// scan operations only the store layer has.
#[derive(Debug, Clone)]
enum KvOp {
    Put(u64, u64),
    Remove(u64),
    Get(u64),
    MultiPut(Vec<(u64, u64)>),
    MultiRemove(Vec<u64>),
    MultiGet(Vec<u64>),
    Snapshot,
}

fn kv_ops(max_key: u64, len: usize) -> impl Strategy<Value = Vec<KvOp>> {
    // (selector, key, val, batch seed): batch contents derive from the
    // seed through a small LCG, so one tuple strategy covers every arm
    // (the offline proptest stand-in has no `prop_oneof`).
    proptest::collection::vec((0u8..7, 1..=max_key, 0u64..1_000, 0u64..u64::MAX), 1..len).prop_map(
        move |tuples| {
            tuples
                .into_iter()
                .map(|(op, k, v, seed)| {
                    let batch_len = (seed % 5 + 1) as usize;
                    let mut x = seed | 1;
                    let mut draw = || {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (x >> 32) % max_key + 1
                    };
                    match op {
                        0 => KvOp::Put(k, v),
                        1 => KvOp::Remove(k),
                        2 => KvOp::Get(k),
                        3 => {
                            KvOp::MultiPut((0..batch_len).map(|i| (draw(), v + i as u64)).collect())
                        }
                        4 => KvOp::MultiRemove((0..batch_len).map(|_| draw()).collect()),
                        5 => KvOp::MultiGet((0..batch_len).map(|_| draw()).collect()),
                        _ => KvOp::Snapshot,
                    }
                })
                .collect()
        },
    )
}

/// Single-threaded batch-op atomicity reduces to sequential composition:
/// every batched operation must agree, entry by entry and in input order,
/// with applying its single-key counterpart to the model — including
/// duplicate keys within one batch (later entries observe earlier ones).
fn check_kv_against_model(
    store: &KvStore<StripedOptikHashTable>,
    ops: &[KvOp],
) -> Result<(), TestCaseError> {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match op {
            &KvOp::Put(k, v) => {
                prop_assert_eq!(store.put(k, v), model.insert(k, v), "put {}", k);
            }
            &KvOp::Remove(k) => {
                prop_assert_eq!(store.remove(k), model.remove(&k), "remove {}", k);
            }
            &KvOp::Get(k) => {
                prop_assert_eq!(store.get(k), model.get(&k).copied(), "get {}", k);
            }
            KvOp::MultiPut(entries) => {
                let expect: Vec<Option<u64>> =
                    entries.iter().map(|&(k, v)| model.insert(k, v)).collect();
                prop_assert_eq!(store.multi_put(entries), expect, "multi_put {:?}", entries);
            }
            KvOp::MultiRemove(keys) => {
                let expect: Vec<Option<u64>> = keys.iter().map(|k| model.remove(k)).collect();
                prop_assert_eq!(store.multi_remove(keys), expect, "multi_remove {:?}", keys);
            }
            KvOp::MultiGet(keys) => {
                let expect: Vec<Option<u64>> = keys.iter().map(|k| model.get(k).copied()).collect();
                prop_assert_eq!(store.multi_get(keys), expect, "multi_get {:?}", keys);
            }
            KvOp::Snapshot => {
                let expect: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
                prop_assert_eq!(store.snapshot(), expect, "snapshot");
            }
        }
    }
    prop_assert_eq!(store.len(), model.len(), "final length");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn kv_store_matches_btreemap_including_batches(ops in kv_ops(24, 200)) {
        for shards in [1usize, 4, 16] {
            let store = KvStore::with_shards(shards, |_| StripedOptikHashTable::new(16, 4));
            check_kv_against_model(&store, &ops)
                .map_err(|e| TestCaseError::fail(format!("{shards} shards: {e}")))?;
        }
    }

    #[test]
    fn map_backends_match_btreemap_upserts(ops in kv_ops(16, 150)) {
        // The raw backends under the same op tape (batches applied as
        // their single-key composition — the trait has no batch API).
        let backends: Vec<(&str, std::sync::Arc<dyn ConcurrentMap>)> = vec![
            ("map/array", std::sync::Arc::new(
                optik_suite::maps::OptikArrayMap::<optik::OptikVersioned>::new(64))),
            ("ht/optik-map", std::sync::Arc::new(
                OptikMapHashTable::with_bucket_capacity(8, 32))),
            ("ht/java", std::sync::Arc::new(StripedHashTable::new(8, 4))),
            ("ht/java-optik", std::sync::Arc::new(StripedOptikHashTable::new(8, 4))),
            ("ht/java-resize", std::sync::Arc::new(ResizableStripedHashTable::new(4, 2))),
        ];
        for (name, m) in backends {
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            for op in &ops {
                match op {
                    &KvOp::Put(k, v) => {
                        prop_assert_eq!(m.put(k, v), model.insert(k, v), "{}: put {}", name, k);
                    }
                    &KvOp::Remove(k) => {
                        prop_assert_eq!(m.remove(k), model.remove(&k), "{}: remove {}", name, k);
                    }
                    &KvOp::Get(k) => {
                        prop_assert_eq!(m.get(k), model.get(&k).copied(), "{}: get {}", name, k);
                    }
                    KvOp::MultiPut(entries) => {
                        for &(k, v) in entries {
                            prop_assert_eq!(m.put(k, v), model.insert(k, v), "{}: put {}", name, k);
                        }
                    }
                    KvOp::MultiRemove(keys) => {
                        for k in keys {
                            prop_assert_eq!(m.remove(*k), model.remove(k), "{}: remove {}", name, k);
                        }
                    }
                    KvOp::MultiGet(keys) => {
                        for k in keys {
                            prop_assert_eq!(m.get(*k), model.get(k).copied(), "{}: get {}", name, k);
                        }
                    }
                    KvOp::Snapshot => {
                        let mut seen = BTreeMap::new();
                        m.for_each(&mut |k, v| { seen.insert(k, v); });
                        prop_assert_eq!(&seen, &model, "{}: for_each", name);
                    }
                }
            }
            prop_assert_eq!(ConcurrentMap::len(m.as_ref()), model.len(), "{}: final length", name);
        }
    }
}

/// Every `OrderedMap` backend (the structures the kv store can mount for
/// range scans), plus ordered-sharded stores over two of them.
fn all_ordered_maps() -> Vec<(&'static str, Arc<dyn OrderedMap>)> {
    use optik_suite::kv::KvStore;
    use optik_suite::skiplists::{
        FraserSkipList, HerlihyOptikSkipList, HerlihySkipList, OptikSkipList1, OptikSkipList2,
    };
    vec![
        ("omap/sl-herlihy", Arc::new(HerlihySkipList::new())),
        ("omap/sl-herl-optik", Arc::new(HerlihyOptikSkipList::new())),
        ("omap/sl-optik1", Arc::new(OptikSkipList1::new())),
        ("omap/sl-optik2", Arc::new(OptikSkipList2::new())),
        ("omap/sl-fraser", Arc::new(FraserSkipList::new())),
        (
            "omap/bst-gl",
            Arc::new(OptikGlBst::<optik::OptikVersioned>::new()),
        ),
        ("omap/bst-tk", Arc::new(OptikBst::new())),
        (
            "kv/range-sl",
            Arc::new(KvStore::with_ordered_shards(4, 32, |_| {
                OptikSkipList2::new()
            })),
        ),
        (
            "kv/range-bst",
            Arc::new(KvStore::with_ordered_shards(3, 32, |_| OptikBst::new())),
        ),
        // Nested stores with *mixed* routing policies: ordered partitions
        // over hash-sharded inner stores, and the inverse — the policy
        // layer composes, and a hash-sharded ordered store still serves
        // ranges (via the post-merge sort) wherever it sits in the stack.
        (
            "kv/nested-ord-over-hash",
            Arc::new(KvStore::with_ordered_shards(3, 32, |_| {
                KvStore::with_shards(2, |_| OptikSkipList2::new())
            })),
        ),
        (
            "kv/nested-hash-over-ord",
            Arc::new(KvStore::with_shards(2, |_| {
                KvStore::with_ordered_shards(3, 32, |_| OptikSkipList2::new())
            })),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Interleaved put/remove/get/range against a `BTreeMap` model: every
    /// batched op is applied as its single-key composition (the trait has
    /// no batch API), every `MultiGet` additionally drives a bounded
    /// `range` over the batch's key window, and every `Snapshot` checks
    /// the full sweep plus `for_each` agreement.
    #[test]
    fn ordered_backends_match_btreemap_with_ranges(ops in kv_ops(24, 200)) {
        for (name, m) in all_ordered_maps() {
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            for op in &ops {
                match op {
                    &KvOp::Put(k, v) => {
                        prop_assert_eq!(m.put(k, v), model.insert(k, v), "{}: put {}", name, k);
                    }
                    &KvOp::Remove(k) => {
                        prop_assert_eq!(m.remove(k), model.remove(&k), "{}: remove {}", name, k);
                    }
                    &KvOp::Get(k) => {
                        prop_assert_eq!(m.get(k), model.get(&k).copied(), "{}: get {}", name, k);
                    }
                    KvOp::MultiPut(entries) => {
                        for &(k, v) in entries {
                            prop_assert_eq!(m.put(k, v), model.insert(k, v), "{}: put {}", name, k);
                        }
                    }
                    KvOp::MultiRemove(keys) => {
                        for k in keys {
                            prop_assert_eq!(m.remove(*k), model.remove(k), "{}: remove {}", name, k);
                        }
                    }
                    KvOp::MultiGet(keys) => {
                        let lo = *keys.iter().min().expect("non-empty batch");
                        let hi = *keys.iter().max().expect("non-empty batch");
                        let got = m.range_collect(lo, hi);
                        let want: Vec<(u64, u64)> =
                            model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                        prop_assert_eq!(got, want, "{}: range [{}, {}]", name, lo, hi);
                    }
                    KvOp::Snapshot => {
                        let got = m.range_collect(1, u64::MAX - 1);
                        let want: Vec<(u64, u64)> =
                            model.iter().map(|(&k, &v)| (k, v)).collect();
                        prop_assert_eq!(got, want, "{}: full range", name);
                        let mut each = BTreeMap::new();
                        m.for_each(&mut |k, v| { each.insert(k, v); });
                        prop_assert_eq!(&each, &model, "{}: for_each", name);
                    }
                }
            }
            prop_assert_eq!(ConcurrentMap::len(m.as_ref()), model.len(), "{}: final length", name);
        }
    }
}

/// One TTL-store operation drawn by proptest, including explicit fake-
/// clock advances and full-budget sweeps.
#[derive(Debug, Clone, Copy)]
enum TtlKvOp {
    Put(u64, u64),
    PutTtl(u64, u64, u64),
    ExpireAfter(u64, u64),
    Remove(u64),
    Get(u64),
    Advance(u64),
    Sweep,
    Snapshot,
}

fn ttl_ops(max_key: u64, len: usize) -> impl Strategy<Value = Vec<TtlKvOp>> {
    proptest::collection::vec(
        (0u8..8, 1..=max_key, 0u64..1_000, 0u64..u64::MAX).prop_map(|(op, k, v, seed)| {
            let ttl = seed % 9 + 1;
            match op {
                0 => TtlKvOp::Put(k, v),
                1 => TtlKvOp::PutTtl(k, v, ttl),
                2 => TtlKvOp::ExpireAfter(k, ttl),
                3 => TtlKvOp::Remove(k),
                4 => TtlKvOp::Advance(seed % 5 + 1),
                5 => TtlKvOp::Sweep,
                6 => TtlKvOp::Snapshot,
                _ => TtlKvOp::Get(k),
            }
        }),
        1..len,
    )
}

/// Single-threaded TTL semantics against a `BTreeMap<key, (val,
/// deadline)>` model with an explicit clock: every operation first
/// normalizes the touched key (an expired binding is invisible and
/// physically dropped, exactly the store's by-need discipline), sweeps
/// reclaim precisely the expired population, and snapshots show only
/// live bindings — while `len()` tracks the *physical* population, which
/// the model mirrors because both sides purge at the same points.
fn check_ttl_against_model(
    store: &KvStore<StripedOptikHashTable>,
    clock: &optik_suite::kv::FakeClock,
    ops: &[TtlKvOp],
) -> Result<(), TestCaseError> {
    use optik_suite::kv::Clock;
    let mut model: BTreeMap<u64, (u64, Option<u64>)> = BTreeMap::new();
    let purge = |model: &mut BTreeMap<u64, (u64, Option<u64>)>, now: u64, k: u64| {
        if model
            .get(&k)
            .is_some_and(|&(_, d)| d.is_some_and(|d| d <= now))
        {
            model.remove(&k);
        }
    };
    for &op in ops {
        let now = clock.now();
        match op {
            TtlKvOp::Put(k, v) => {
                purge(&mut model, now, k);
                let expect = model.insert(k, (v, None)).map(|(v, _)| v);
                prop_assert_eq!(store.put(k, v), expect, "put {}", k);
            }
            TtlKvOp::PutTtl(k, v, ttl) => {
                purge(&mut model, now, k);
                let expect = model.insert(k, (v, Some(now + ttl))).map(|(v, _)| v);
                prop_assert_eq!(store.put_with_ttl(k, v, ttl), expect, "put_with_ttl {}", k);
            }
            TtlKvOp::ExpireAfter(k, ttl) => {
                purge(&mut model, now, k);
                let expect = model.contains_key(&k);
                if let Some(e) = model.get_mut(&k) {
                    e.1 = Some(now + ttl);
                }
                prop_assert_eq!(store.expire_after(k, ttl), expect, "expire_after {}", k);
            }
            TtlKvOp::Remove(k) => {
                purge(&mut model, now, k);
                let expect = model.remove(&k).map(|(v, _)| v);
                prop_assert_eq!(store.remove(k), expect, "remove {}", k);
            }
            TtlKvOp::Get(k) => {
                let expect = model
                    .get(&k)
                    .filter(|&&(_, d)| !d.is_some_and(|d| d <= now))
                    .map(|&(v, _)| v);
                prop_assert_eq!(store.get(k), expect, "get {}", k);
            }
            TtlKvOp::Advance(ticks) => {
                clock.advance(ticks);
            }
            TtlKvOp::Sweep => {
                let expired: Vec<u64> = model
                    .iter()
                    .filter(|&(_, &(_, d))| d.is_some_and(|d| d <= now))
                    .map(|(&k, _)| k)
                    .collect();
                prop_assert_eq!(
                    store.sweep_expired(4096),
                    expired.len() as u64,
                    "sweep reclaimed a different population"
                );
                for k in expired {
                    model.remove(&k);
                }
            }
            TtlKvOp::Snapshot => {
                let expect: Vec<(u64, u64)> = model
                    .iter()
                    .filter(|&(_, &(_, d))| !d.is_some_and(|d| d <= now))
                    .map(|(&k, &(v, _))| (k, v))
                    .collect();
                prop_assert_eq!(store.snapshot(), expect, "snapshot");
            }
        }
    }
    prop_assert_eq!(store.len(), model.len(), "physical population");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn ttl_store_matches_deadline_btreemap_model(ops in ttl_ops(24, 200)) {
        for shards in [1usize, 4] {
            let clock = Arc::new(optik_suite::kv::FakeClock::new());
            let store = KvStore::with_shards_ttl(
                shards,
                Arc::clone(&clock) as Arc<dyn optik_suite::kv::Clock>,
                |_| StripedOptikHashTable::new(16, 4),
            );
            check_ttl_against_model(&store, &clock, &ops)
                .map_err(|e| TestCaseError::fail(format!("{shards} shards: {e}")))?;
        }
    }
}

/// One queue operation drawn by proptest.
#[derive(Debug, Clone, Copy)]
enum QueueOp {
    Enqueue(u64),
    Dequeue,
}

fn queue_ops(len: usize) -> impl Strategy<Value = Vec<QueueOp>> {
    proptest::collection::vec(
        (0u8..2, 0u64..1_000).prop_map(|(op, v)| {
            if op == 0 {
                QueueOp::Enqueue(v)
            } else {
                QueueOp::Dequeue
            }
        }),
        1..len,
    )
}

fn all_queues() -> Vec<(&'static str, Arc<dyn ConcurrentQueue>)> {
    vec![
        ("ms-lf", Arc::new(MsLfQueue::new())),
        ("ms-lb", Arc::new(MsLbQueue::new())),
        ("optik0", Arc::new(OptikQueue0::new())),
        ("optik1", Arc::new(OptikQueue1::new())),
        ("optik2", Arc::new(OptikQueue2::new())),
        ("optik3", Arc::new(VictimQueue::new())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn every_queue_matches_vecdeque(ops in queue_ops(400)) {
        for (name, q) in all_queues() {
            let mut model: VecDeque<u64> = VecDeque::new();
            for &op in &ops {
                match op {
                    QueueOp::Enqueue(v) => {
                        q.enqueue(v);
                        model.push_back(v);
                    }
                    QueueOp::Dequeue => {
                        prop_assert_eq!(q.dequeue(), model.pop_front(), "{}", name);
                    }
                }
            }
            prop_assert_eq!(q.len(), model.len(), "{}: final length", name);
            // Drain: remaining order must be exact FIFO.
            while let Some(expect) = model.pop_front() {
                prop_assert_eq!(q.dequeue(), Some(expect), "{}: drain", name);
            }
            prop_assert_eq!(q.dequeue(), None, "{}: empty after drain", name);
        }
    }
}

/// One stack operation drawn by proptest.
#[derive(Debug, Clone, Copy)]
enum StackOp {
    Push(u64),
    Pop,
}

fn stack_ops(len: usize) -> impl Strategy<Value = Vec<StackOp>> {
    proptest::collection::vec(
        (0u8..2, 0u64..1_000).prop_map(|(op, v)| {
            if op == 0 {
                StackOp::Push(v)
            } else {
                StackOp::Pop
            }
        }),
        1..len,
    )
}

fn all_stacks() -> Vec<(&'static str, Arc<dyn ConcurrentStack>)> {
    vec![
        ("treiber", Arc::new(TreiberStack::new())),
        ("optik", Arc::new(OptikStack::new())),
        ("elimination", Arc::new(EliminationStack::new())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn every_stack_matches_vec(ops in stack_ops(400)) {
        for (name, s) in all_stacks() {
            let mut model: Vec<u64> = Vec::new();
            for &op in &ops {
                match op {
                    StackOp::Push(v) => {
                        s.push(v);
                        model.push(v);
                    }
                    StackOp::Pop => {
                        prop_assert_eq!(s.pop(), model.pop(), "{}", name);
                    }
                }
            }
            prop_assert_eq!(s.len(), model.len(), "{}: final length", name);
            while let Some(expect) = model.pop() {
                prop_assert_eq!(s.pop(), Some(expect), "{}: drain", name);
            }
        }
    }
}

/// The OPTIK lock version algebra, modelled directly from the paper's
/// Figure 4 semantics: unlock bumps the observable version, revert
/// restores it, and stale versions never validate.
#[derive(Debug, Clone, Copy)]
enum LockOp {
    /// Lock-validate the *current* version, then unlock (commit).
    Commit,
    /// Lock-validate the current version, then revert (abort).
    Abort,
    /// Try to lock with a version stale by the given number of commits.
    TryStale(u8),
}

fn lock_ops(len: usize) -> impl Strategy<Value = Vec<LockOp>> {
    proptest::collection::vec(
        (0u8..3, 1u8..4).prop_map(|(op, n)| match op {
            0 => LockOp::Commit,
            1 => LockOp::Abort,
            _ => LockOp::TryStale(n),
        }),
        1..len,
    )
}

fn check_lock_algebra<L: optik::OptikLock>(ops: &[LockOp]) -> Result<(), TestCaseError> {
    let lock = L::default();
    let mut commits: u64 = 0;
    let mut seen = vec![lock.get_version()];
    for &op in ops {
        match op {
            LockOp::Commit => {
                let v = lock.get_version();
                prop_assert!(lock.try_lock_version(v), "current version must validate");
                lock.unlock();
                commits += 1;
                let v2 = lock.get_version();
                prop_assert!(!L::is_same_version(v, v2), "commit must change the version");
                prop_assert!(!L::is_locked_version(v2), "unlock must free the lock");
                seen.push(v2);
            }
            LockOp::Abort => {
                let v = lock.get_version();
                prop_assert!(lock.try_lock_version(v));
                lock.revert();
                prop_assert!(
                    L::is_same_version(v, lock.get_version()),
                    "revert must restore the version"
                );
            }
            LockOp::TryStale(n) => {
                // Any version observed `>= 1` commit ago must fail.
                let idx = seen.len().saturating_sub(1 + n as usize);
                let stale = seen[idx];
                if !L::is_same_version(stale, lock.get_version()) {
                    prop_assert!(
                        !lock.try_lock_version(stale),
                        "stale version must not validate"
                    );
                    prop_assert!(!lock.is_locked(), "failed trylock must not leave it locked");
                }
            }
        }
    }
    // `commits` counts successful validations; the lock must be free at
    // the end of any algebra sequence (every path unlocks or reverts).
    let _ = commits;
    prop_assert!(!lock.is_locked());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn versioned_lock_algebra(ops in lock_ops(200)) {
        check_lock_algebra::<optik::OptikVersioned>(&ops)?;
    }

    #[test]
    fn ticket_lock_algebra(ops in lock_ops(200)) {
        check_lock_algebra::<optik::OptikTicket>(&ops)?;
    }

    #[test]
    fn optik_cell_is_a_consistent_register(writes in proptest::collection::vec(0u64..1_000, 1..100)) {
        let cell = optik::OptikCell::<u64>::new(0);
        let mut last = 0;
        for w in writes {
            cell.write(w);
            last = w;
            prop_assert_eq!(cell.read(), last);
            let doubled = cell.update(|x| x.wrapping_mul(2));
            last = last.wrapping_mul(2);
            prop_assert_eq!(doubled, last);
        }
        prop_assert_eq!(cell.into_inner(), last);
    }
}

/// One node-pool instruction drawn by proptest.
#[derive(Debug, Clone, Copy)]
enum PoolOp {
    /// Allocate a slot and keep it live.
    Alloc,
    /// Retire the most recent live slot through QSBR.
    Retire,
    /// Allocate and immediately return a never-published slot.
    Unpublish,
    /// Announce a quiescent point and collect graced batches.
    Quiesce,
}

/// Per-thread op tapes (the outer vec is chunked into concurrent waves).
fn pool_tapes(threads: usize, len: usize) -> impl Strategy<Value = Vec<Vec<PoolOp>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            (0u8..6).prop_map(|op| match op {
                0 | 1 => PoolOp::Alloc,
                2 | 3 => PoolOp::Retire,
                4 => PoolOp::Unpublish,
                _ => PoolOp::Quiesce,
            }),
            1..len,
        ),
        1..threads,
    )
}

/// Runs one thread's tape against the shared pool, returning how many
/// slots it allocated and how many it left live (abandoned, never
/// retired). Retired slots are sealed immediately so grace periods can
/// elapse — and magazines exchange with the depot — mid-wave.
fn pool_churn_worker(
    pool: &Arc<optik_suite::reclaim::NodePool<u64>>,
    domain: &Arc<optik_suite::reclaim::Qsbr>,
    tape: &[PoolOp],
) -> (u64, u64) {
    let h = domain.register();
    let mut live: Vec<*mut u64> = Vec::new();
    let mut allocs = 0u64;
    for &op in tape {
        match op {
            PoolOp::Alloc => {
                live.push(pool.alloc_init(|| allocs));
                allocs += 1;
            }
            PoolOp::Retire => {
                if let Some(p) = live.pop() {
                    // SAFETY: allocated above, never published, retired
                    // exactly once.
                    unsafe { pool.retire(p, &h) };
                    h.flush();
                }
            }
            PoolOp::Unpublish => {
                let p = pool.alloc_init(|| 0);
                allocs += 1;
                // SAFETY: allocated just above, never published.
                unsafe { pool.dealloc_unpublished(p) };
            }
            PoolOp::Quiesce => {
                h.quiescent();
                h.collect();
            }
        }
    }
    (allocs, live.len() as u64)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The magazine pool's conservation ledger under randomized thread
    /// churn: threads come and go in concurrent waves over one shared
    /// pool (tiny 4-slot magazines, 16-slot chunks, a private QSBR
    /// domain), allocating, retiring, abandoning live slots, and
    /// announcing quiescence at arbitrary points. After each wave — all
    /// of its handles dropped, so every sealed batch has passed grace —
    /// the ledger must balance exactly: no slot lost in a magazine⇄depot
    /// exchange, none recirculated twice, and the bump region's handout
    /// count covering every fresh (non-recycled) allocation.
    #[test]
    fn pool_conservation_ledger_under_thread_churn(tapes in pool_tapes(6, 60)) {
        use optik_suite::reclaim::NodePool;

        let pool: Arc<NodePool<u64>> = NodePool::with_config(16, 4);
        let domain = optik_suite::reclaim::Qsbr::new();
        let mut total_allocs = 0u64;
        let mut total_live = 0u64;
        for wave in tapes.chunks(2) {
            let results: Vec<(u64, u64)> = std::thread::scope(|s| {
                let joins: Vec<_> = wave
                    .iter()
                    .map(|tape| {
                        let pool = &pool;
                        let domain = &domain;
                        s.spawn(move || pool_churn_worker(pool, domain, tape))
                    })
                    .collect();
                joins
                    .into_iter()
                    .map(|j| j.join().expect("pool churn worker"))
                    .collect()
            });
            for (allocs, live) in results {
                total_allocs += allocs;
                total_live += live;
            }
            let s = pool.stats();
            let d = domain.stats();
            prop_assert_eq!(d.retired, d.freed, "wave stranded garbage: {:?}", d);
            prop_assert_eq!(s.in_grace, 0, "wave left slots in grace: {:?}", s);
            prop_assert_eq!(s.allocations, total_allocs, "allocation count drifted: {:?}", s);
            prop_assert_eq!(s.live(), total_live, "slot conservation violated: {:?}", s);
            // Bump handouts cover every fresh allocation; the excess is
            // batch-prefetched slots still parked (fresh) in magazines.
            prop_assert!(
                s.capacity - s.unallocated >= s.allocations - s.recycle_hits,
                "bump-region ledger drifted: {:?}",
                s
            );
        }
    }
}
