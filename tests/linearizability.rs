//! The linearizability tier, driven by the scenario registry.
//!
//! Every *unique implementation* registered in `optik_bench::scenarios`
//! (deduplicated by subject id — the same algorithm appears under many
//! workloads) is instantiated and hammered by a handful of threads while a
//! [`HistoryRecorder`] timestamps each operation; the recorded history is
//! then decided by the Wing–Gong checker against the matching sequential
//! specification:
//!
//! - sets → single-key two-state spec ([`check_history`]),
//! - queues → FIFO content spec ([`FifoSpec`]),
//! - stacks → LIFO content spec ([`LifoSpec`]),
//! - maps (the kv stores and their backends) → single-key *value-carrying*
//!   spec ([`MapSpec`]): distinct put values per operation, so torn reads
//!   and lost updates are caught, not just presence errors.
//!
//! Adding a structure to the registry automatically enrolls it here.
//! The in-tier tests run a few rounds (scaled for tier-1); the `_full`
//! variants behind `--ignored` run many more and back the CI
//! linearizability job.

use std::collections::HashSet;
use std::sync::{Arc, Barrier, Mutex};

use optik_bench::scenarios;
use optik_suite::harness::api::{ConcurrentMap, Key, OrderedMap, Val};
use optik_suite::harness::linearize::{
    check, check_history, FifoSpec, HistoryRecorder, LifoSpec, MapOp, MapSpec, QueueOp,
    RangeMapSpec, RangeOp, Recorder, SetOp, StackOp, TtlMapSpec, TtlOp, RANGE_KEYS,
};
use optik_suite::harness::scenario::Subject;
use optik_suite::harness::{ConcurrentQueue, ConcurrentSet, ConcurrentStack};
use optik_suite::kv::{FakeClock, KvStore};

/// Adapter presenting an ordered subject as a plain map subject, so the
/// single-key map rounds run on ordered implementations too without
/// relying on `dyn` upcasting (MSRV predates it).
struct OrderedAsMap(Arc<dyn OrderedMap>);

impl ConcurrentMap for OrderedAsMap {
    fn get(&self, key: Key) -> Option<Val> {
        self.0.get(key)
    }
    fn put(&self, key: Key, val: Val) -> Option<Val> {
        self.0.put(key, val)
    }
    fn remove(&self, key: Key) -> Option<Val> {
        self.0.remove(key)
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn for_each(&self, f: &mut dyn FnMut(Key, Val)) {
        self.0.for_each(f)
    }
}

/// Single-key set history: 4 threads × 12 ops on one key (48 ops keeps the
/// checker's 64-op mask budget and decides in microseconds).
fn check_set_rounds(
    name: &str,
    make: &(dyn Fn() -> Arc<dyn ConcurrentSet> + Send + Sync),
    rounds: usize,
) {
    const KEY: u64 = 42;
    for round in 0..rounds {
        let set = make();
        let all = Arc::new(Mutex::new(Vec::new()));
        let barrier = Arc::new(Barrier::new(4));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let set = Arc::clone(&set);
            let all = Arc::clone(&all);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let mut rec = Recorder::new();
                barrier.wait();
                for i in 0..12u64 {
                    match (t + i + round as u64) % 3 {
                        0 => rec.record(SetOp::Insert, || set.insert(KEY, KEY)),
                        1 => rec.record(SetOp::Delete, || set.delete(KEY).is_some()),
                        _ => rec.record(SetOp::Search, || set.search(KEY).is_some()),
                    }
                }
                all.lock().unwrap().extend(rec.into_ops());
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
        });
        let history = all.lock().unwrap().clone();
        assert!(
            check_history(&history, false),
            "{name}: non-linearizable single-key history (round {round})"
        );
    }
}

/// FIFO history: 3 threads × 6 ops with distinct enqueue values (18 ops —
/// the content-state search stays tractable).
fn check_queue_rounds(
    name: &str,
    make: &(dyn Fn() -> Arc<dyn ConcurrentQueue> + Send + Sync),
    rounds: usize,
) {
    for round in 0..rounds {
        let q = make();
        let all = Arc::new(Mutex::new(Vec::new()));
        let barrier = Arc::new(Barrier::new(3));
        let mut handles = Vec::new();
        for t in 0..3u64 {
            let q = Arc::clone(&q);
            let all = Arc::clone(&all);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let mut rec = HistoryRecorder::new();
                barrier.wait();
                for i in 0..6u64 {
                    if (t + i + round as u64) % 2 == 0 {
                        let v = t * 1000 + i; // distinct within the round
                        rec.record(|| q.enqueue(v), |()| QueueOp::Enqueue(v));
                    } else {
                        rec.record(|| q.dequeue(), QueueOp::Dequeue);
                    }
                }
                all.lock().unwrap().extend(rec.into_ops());
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
        });
        let history = all.lock().unwrap().clone();
        assert!(
            check(&FifoSpec, &history),
            "{name}: non-linearizable FIFO history (round {round})"
        );
    }
}

/// LIFO history: the stack analogue of [`check_queue_rounds`].
fn check_stack_rounds(
    name: &str,
    make: &(dyn Fn() -> Arc<dyn ConcurrentStack> + Send + Sync),
    rounds: usize,
) {
    for round in 0..rounds {
        let s = make();
        let all = Arc::new(Mutex::new(Vec::new()));
        let barrier = Arc::new(Barrier::new(3));
        let mut handles = Vec::new();
        for t in 0..3u64 {
            let s = Arc::clone(&s);
            let all = Arc::clone(&all);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let mut rec = HistoryRecorder::new();
                barrier.wait();
                for i in 0..6u64 {
                    if (t + i + round as u64) % 2 == 0 {
                        let v = t * 1000 + i;
                        rec.record(|| s.push(v), |()| StackOp::Push(v));
                    } else {
                        rec.record(|| s.pop(), StackOp::Pop);
                    }
                }
                all.lock().unwrap().extend(rec.into_ops());
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
        });
        let history = all.lock().unwrap().clone();
        assert!(
            check(&LifoSpec, &history),
            "{name}: non-linearizable LIFO history (round {round})"
        );
    }
}

/// Single-key map history: 4 threads × 12 ops on one key with distinct
/// put values, decided against the value-carrying [`MapSpec`]. Catches
/// upserts that tear (delete+insert windows) or lose updates — failures
/// the presence-only set spec cannot see.
fn check_map_rounds(
    name: &str,
    make: &(dyn Fn() -> Arc<dyn ConcurrentMap> + Send + Sync),
    rounds: usize,
) {
    const KEY: u64 = 42;
    for round in 0..rounds {
        let map = make();
        let all = Arc::new(Mutex::new(Vec::new()));
        let barrier = Arc::new(Barrier::new(4));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let map = Arc::clone(&map);
            let all = Arc::clone(&all);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let mut rec = HistoryRecorder::new();
                barrier.wait();
                for i in 0..12u64 {
                    match (t + i + round as u64) % 3 {
                        0 => {
                            let v = t * 1_000 + i + 1; // distinct in-history
                            rec.record(|| map.put(KEY, v), |prev| MapOp::Put(v, prev));
                        }
                        1 => rec.record(|| map.remove(KEY), MapOp::Remove),
                        _ => rec.record(|| map.get(KEY), MapOp::Get),
                    }
                }
                all.lock().unwrap().extend(rec.into_ops());
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
        });
        let history = all.lock().unwrap().clone();
        assert!(
            check(&MapSpec::default(), &history),
            "{name}: non-linearizable single-key map history (round {round})"
        );
    }
}

/// Multi-key history with range observations: 4 threads × 10 ops over
/// [`RANGE_KEYS`] tracked keys, where one op class is a full `range`
/// traversal reporting every tracked binding it saw. Decided against
/// [`RangeMapSpec`], this catches ranges that are not snapshots — e.g. a
/// traversal that observes a late write to one key after missing an
/// earlier write to another.
///
/// Only subjects whose ranges are **validated snapshots** qualify: the
/// kv stores (`kv/…` subject ids), whose `range_scan` collects each shard
/// under a version validate / shard-lock fallback — and whose ordered
/// partitions are wide enough that the tracked keys colocate in one
/// shard, making the whole window one atomic snapshot. The raw backends
/// deliberately promise only quiescence-consistent ranges (see
/// `OrderedMap`'s docs: concurrent updates "can be missed or included"),
/// so asserting snapshot linearizability on them would be a false alarm
/// waiting for enough parallelism; they are covered by the single-key
/// map rounds here, by the `BTreeMap` range property tests, and by the
/// under-lock exactness the kv stress tier exercises.
fn check_range_rounds(
    name: &str,
    make: &(dyn Fn() -> Arc<dyn OrderedMap> + Send + Sync),
    rounds: usize,
) {
    const KEYS: [u64; RANGE_KEYS] = [10, 20, 30];
    for round in 0..rounds {
        let map = make();
        let all = Arc::new(Mutex::new(Vec::new()));
        let barrier = Arc::new(Barrier::new(4));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let map = Arc::clone(&map);
            let all = Arc::clone(&all);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let mut rec = HistoryRecorder::new();
                barrier.wait();
                for i in 0..10u64 {
                    let idx = ((t + 2 * i) % RANGE_KEYS as u64) as usize;
                    match (t + i + round as u64) % 4 {
                        0 => {
                            let v = t * 1_000 + i + 1; // distinct in-history
                            rec.record(|| map.put(KEYS[idx], v), |prev| RangeOp::Put(idx, v, prev));
                        }
                        1 => rec.record(|| map.remove(KEYS[idx]), |r| RangeOp::Remove(idx, r)),
                        2 => rec.record(|| map.get(KEYS[idx]), |g| RangeOp::Get(idx, g)),
                        _ => rec.record(
                            || {
                                let mut obs = [None; RANGE_KEYS];
                                map.range(KEYS[0], KEYS[RANGE_KEYS - 1], &mut |k, v| {
                                    if let Some(p) = KEYS.iter().position(|&kk| kk == k) {
                                        obs[p] = Some(v);
                                    }
                                });
                                obs
                            },
                            RangeOp::Range,
                        ),
                    }
                }
                all.lock().unwrap().extend(rec.into_ops());
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
        });
        let history = all.lock().unwrap().clone();
        assert!(
            check(&RangeMapSpec::default(), &history),
            "{name}: non-linearizable range-observing history (round {round})"
        );
    }
}

/// Runs the whole registry through the appropriate checker, `rounds`
/// histories per unique implementation.
fn run_tier(rounds: usize) {
    let reg = scenarios::registry();
    let mut seen: HashSet<String> = HashSet::new();
    let (mut sets, mut queues, mut stacks, mut maps, mut ordered, mut ranged) = (0, 0, 0, 0, 0, 0);
    for s in reg.iter() {
        if !seen.insert(s.subject_id().to_string()) {
            continue;
        }
        match s.subject() {
            Subject::Set(make) => {
                sets += 1;
                check_set_rounds(s.subject_id(), make.as_ref(), rounds);
            }
            Subject::Queue(make) => {
                queues += 1;
                check_queue_rounds(s.subject_id(), make.as_ref(), rounds);
            }
            Subject::Stack(make) => {
                stacks += 1;
                check_stack_rounds(s.subject_id(), make.as_ref(), rounds);
            }
            Subject::Map(make) => {
                maps += 1;
                check_map_rounds(s.subject_id(), make.as_ref(), rounds);
            }
            Subject::Ordered(make) => {
                // Ordered subjects run the value-carrying single-key
                // rounds; store-backed ones (validated-snapshot ranges)
                // additionally run the range-observing rounds — see
                // `check_range_rounds` for why raw backends do not.
                ordered += 1;
                let as_map = |make: &(dyn Fn() -> Arc<dyn OrderedMap> + Send + Sync)| {
                    let m = make();
                    let out: Arc<dyn ConcurrentMap> = Arc::new(OrderedAsMap(m));
                    out
                };
                let make_ref = make.as_ref();
                check_map_rounds(s.subject_id(), &move || as_map(make_ref), rounds);
                if s.subject_id().starts_with("kv/") {
                    ranged += 1;
                    check_range_rounds(s.subject_id(), make_ref, rounds);
                }
            }
            Subject::None => {}
        }
    }
    // The registry must actually be feeding the tier: all five families of
    // structures appear, and nothing shrank silently.
    assert!(
        sets >= 20,
        "expected >=20 unique set implementations, got {sets}"
    );
    assert!(queues >= 6, "expected >=6 unique queues, got {queues}");
    assert!(stacks >= 3, "expected >=3 unique stacks, got {stacks}");
    assert!(
        maps >= 10,
        "expected >=10 unique kv/map subjects, got {maps}"
    );
    assert!(
        ordered >= 10,
        "expected >=10 unique ordered subjects (raw + kv-mounted), got {ordered}"
    );
    assert!(
        ranged >= 5,
        "expected >=5 range-checked (store-backed) ordered subjects, got {ranged}"
    );
}

#[test]
fn registry_structures_are_linearizable() {
    run_tier(2);
}

#[test]
#[ignore = "full-strength linearizability tier; run in CI via --ignored"]
fn registry_structures_are_linearizable_full() {
    run_tier(25);
}

// ---------------------------------------------------------------------------
// TTL rounds: fake-clock histories against the TTL-aware map spec.
// ---------------------------------------------------------------------------

/// Single-key TTL history: 4 threads × 12 ops on one key mixing plain
/// puts, TTL puts, `expire_after`, gets, and removes, while thread 0
/// also advances the shared fake clock through *recorded* `Advance`
/// operations — so expiry is an event in the history and a read that
/// observes an expired binding cannot linearize.
fn check_ttl_rounds<B: ConcurrentMap + 'static>(
    name: &str,
    make: impl Fn(Arc<FakeClock>) -> KvStore<B>,
    rounds: usize,
) {
    const KEY: u64 = 42;
    for round in 0..rounds {
        let clock = Arc::new(FakeClock::new());
        let store = Arc::new(make(Arc::clone(&clock)));
        let all = Arc::new(Mutex::new(Vec::new()));
        let barrier = Arc::new(Barrier::new(4));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let store = Arc::clone(&store);
            let clock = Arc::clone(&clock);
            let all = Arc::clone(&all);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let mut rec = HistoryRecorder::new();
                barrier.wait();
                for i in 0..12u64 {
                    let v = t * 1_000 + i + 1; // distinct in-history
                    match (t + i + round as u64) % 6 {
                        0 => rec.record(|| store.put(KEY, v), |prev| TtlOp::Put(v, prev)),
                        1 => rec.record(
                            || store.put_with_ttl(KEY, v, 3),
                            |prev| TtlOp::PutTtl(v, 3, prev),
                        ),
                        2 => rec.record(
                            || store.expire_after(KEY, 2),
                            |found| TtlOp::ExpireAfter(2, found),
                        ),
                        3 => rec.record(|| store.remove(KEY), TtlOp::Remove),
                        4 if t == 0 => rec.record(|| clock.advance(1), TtlOp::Advance),
                        _ => rec.record(|| store.get(KEY), TtlOp::Get),
                    }
                }
                all.lock().unwrap().extend(rec.into_ops());
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
        });
        let history = all.lock().unwrap().clone();
        assert!(
            check(&TtlMapSpec::default(), &history),
            "{name}: non-linearizable TTL history (round {round})"
        );
    }
}

fn run_ttl_tier(rounds: usize) {
    check_ttl_rounds(
        "kv/ttl-striped-optik",
        |clock| {
            KvStore::with_shards_ttl(4, clock, |_| {
                optik_suite::hashtables::StripedOptikHashTable::new(32, 8)
            })
        },
        rounds,
    );
    check_ttl_rounds(
        "kv/ttl-ordered-optik2",
        |clock| {
            KvStore::with_ordered_shards_ttl(4, 128, clock, |_| {
                optik_suite::skiplists::OptikSkipList2::new()
            })
        },
        rounds,
    );
}

#[test]
fn ttl_stores_are_linearizable_under_the_fake_clock() {
    run_ttl_tier(3);
}

#[test]
#[ignore = "full-strength TTL linearizability tier; run in CI via --ignored"]
fn ttl_stores_are_linearizable_under_the_fake_clock_full() {
    run_ttl_tier(30);
}

// ---------------------------------------------------------------------------
// Rebalance rounds: single-key histories across forced boundary migrations.
// ---------------------------------------------------------------------------

/// 4 threads run the value-carrying map mix on a key that sits between
/// two oscillating partition boundaries while a rebalancer thread forces
/// split/merge migrations (the key changes shards continuously). The
/// recorded history must stay linearizable against the plain `MapSpec` —
/// migration is invisible to clients or it is broken.
fn check_rebalance_rounds(rounds: usize, shifts_per_round: u64) {
    const KEY: u64 = 20;
    for round in 0..rounds {
        let store = Arc::new(KvStore::with_ordered_shards(4, 40, |_| {
            optik_suite::skiplists::OptikSkipList2::new()
        }));
        let all = Arc::new(Mutex::new(Vec::new()));
        let barrier = Arc::new(Barrier::new(5));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let store = Arc::clone(&store);
            let all = Arc::clone(&all);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let mut rec = HistoryRecorder::new();
                barrier.wait();
                for i in 0..12u64 {
                    match (t + i + round as u64) % 3 {
                        0 => {
                            let v = t * 1_000 + i + 1; // distinct in-history
                            rec.record(|| store.put(KEY, v), |prev| MapOp::Put(v, prev));
                        }
                        1 => rec.record(|| store.remove(KEY), MapOp::Remove),
                        _ => rec.record(|| store.get(KEY), MapOp::Get),
                    }
                }
                all.lock().unwrap().extend(rec.into_ops());
            }));
        }
        // The rebalancer: walk the boundary under KEY back and forth so
        // the key's owning shard flips on every shift.
        let rebalancer = {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // Partition bounds start at [10, 20, 30, MAX]; walking
                // bounds[1] between 15 and 25 flips KEY = 20 between
                // shards 1 and 2 on every shift.
                for i in 0..shifts_per_round {
                    let bound = if i % 2 == 0 { KEY + 5 } else { KEY - 5 };
                    store.shift_boundary(1, bound).expect("legal shift");
                }
            })
        };
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
            rebalancer.join().unwrap();
        });
        let history = all.lock().unwrap().clone();
        assert!(
            check(&MapSpec::default(), &history),
            "kv/rebalance: non-linearizable history across migrations (round {round})"
        );
    }
}

#[test]
fn kv_store_stays_linearizable_across_forced_rebalances() {
    check_rebalance_rounds(3, 40);
}

// ---------------------------------------------------------------------------
// Grouped multi_get rounds: multi-key reads across forced boundary
// migrations, decided against the range spec.
// ---------------------------------------------------------------------------

/// 4 threads run the multi-key mix over the tracked keys while a
/// rebalancer walks a partition boundary back and forth underneath them,
/// so the batch's shard *grouping* changes continuously. The multi-key
/// read op is the store's grouped `multi_get` over all tracked keys,
/// recorded as a [`RangeOp::Range`] observation: against [`RangeMapSpec`]
/// it must be a snapshot — one atomic window across every shard-group the
/// batch touched, no matter how the router regrouped it mid-read. A
/// grouped read that misses a routing flip (probing a key's old shard
/// after migration) shows up here as a non-linearizable observation.
fn check_multiget_rebalance_rounds(rounds: usize, shifts_per_round: u64) {
    const KEYS: [u64; RANGE_KEYS] = [10, 20, 30];
    for round in 0..rounds {
        let store = Arc::new(KvStore::with_ordered_shards(4, 40, |_| {
            optik_suite::skiplists::OptikSkipList2::new()
        }));
        let all = Arc::new(Mutex::new(Vec::new()));
        let barrier = Arc::new(Barrier::new(5));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let store = Arc::clone(&store);
            let all = Arc::clone(&all);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let mut rec = HistoryRecorder::new();
                barrier.wait();
                for i in 0..10u64 {
                    let idx = ((t + 2 * i) % RANGE_KEYS as u64) as usize;
                    match (t + i + round as u64) % 4 {
                        0 => {
                            let v = t * 1_000 + i + 1; // distinct in-history
                            rec.record(
                                || store.put(KEYS[idx], v),
                                |prev| RangeOp::Put(idx, v, prev),
                            );
                        }
                        1 => rec.record(|| store.remove(KEYS[idx]), |r| RangeOp::Remove(idx, r)),
                        2 => rec.record(|| store.get(KEYS[idx]), |g| RangeOp::Get(idx, g)),
                        _ => rec.record(
                            || {
                                let vals = store.multi_get(&KEYS);
                                let mut obs = [None; RANGE_KEYS];
                                obs.copy_from_slice(&vals);
                                obs
                            },
                            RangeOp::Range,
                        ),
                    }
                }
                all.lock().unwrap().extend(rec.into_ops());
            }));
        }
        // Walk bounds[1] between 15 and 25: KEYS[1] = 20 flips between
        // shards 1 and 2 on every shift, regrouping the batch mid-flight.
        let rebalancer = {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..shifts_per_round {
                    let bound = if i % 2 == 0 { 25 } else { 15 };
                    store.shift_boundary(1, bound).expect("legal shift");
                }
            })
        };
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
            rebalancer.join().unwrap();
        });
        let history = all.lock().unwrap().clone();
        assert!(
            check(&RangeMapSpec::default(), &history),
            "kv/multiget-rebalance: non-linearizable grouped multi_get history (round {round})"
        );
    }
}

#[test]
fn kv_grouped_multi_get_stays_linearizable_across_rebalances() {
    check_multiget_rebalance_rounds(3, 40);
}

#[test]
#[ignore = "full-strength grouped-multiget rebalance linearizability tier; run in CI via --ignored"]
fn kv_grouped_multi_get_stays_linearizable_across_rebalances_full() {
    check_multiget_rebalance_rounds(30, 400);
}

#[test]
#[ignore = "full-strength rebalance linearizability tier; run in CI via --ignored"]
fn kv_store_stays_linearizable_across_forced_rebalances_full() {
    check_rebalance_rounds(30, 400);
}
