//! The full benchmark pipeline as an integration test: harness workload →
//! runner → data structure, with the paper's invariants checked end to end
//! (effective update accounting, final-size consistency, skew behaviour).

use std::time::Duration;

use optik_suite::harness::runner::run_set_workload;
use optik_suite::harness::{ConcurrentSet, Workload};
use optik_suite::hashtables::OptikGlHashTable;
use optik_suite::lists::{OptikCacheList, OptikList};
use optik_suite::skiplists::OptikSkipList2;

#[test]
fn runner_counts_match_structure_state_list() {
    let w = Workload::paper(256, 20, false);
    let set = OptikList::new();
    w.initial_fill(5, |k, v| set.insert(k, v));
    assert_eq!(set.len() as u64, 256);

    let res = run_set_workload(8, Duration::from_millis(250), &w, 6, false, |_| &set);
    let expected = 256i64 + res.counts.net_inserted();
    assert_eq!(set.len() as i64, expected);
    // Issued updates ≈ 40% (2× the effective 20%): sanity band.
    let updates = res.counts.insert_suc
        + res.counts.insert_fail
        + res.counts.delete_suc
        + res.counts.delete_fail;
    let frac = updates as f64 / res.counts.total() as f64;
    assert!((0.3..0.5).contains(&frac), "issued update fraction {frac}");
    // Roughly half the updates fail (key range is double the size).
    let fail = (res.counts.insert_fail + res.counts.delete_fail) as f64 / updates.max(1) as f64;
    assert!((0.3..0.7).contains(&fail), "failed update fraction {fail}");
}

#[test]
fn runner_counts_match_structure_state_hashtable() {
    let w = Workload::paper(512, 10, false);
    let set = OptikGlHashTable::new(512);
    w.initial_fill(7, |k, v| set.insert(k, v));
    let res = run_set_workload(8, Duration::from_millis(250), &w, 8, false, |_| &set);
    assert_eq!(set.len() as i64, 512 + res.counts.net_inserted());
}

#[test]
fn skewed_workload_runs_and_balances_skiplist() {
    let w = Workload::paper(1024, 20, true);
    let set = OptikSkipList2::new();
    w.initial_fill(9, |k, v| set.insert(k, v));
    let res = run_set_workload(8, Duration::from_millis(250), &w, 10, false, |_| &set);
    assert_eq!(set.len() as i64, 1024 + res.counts.net_inserted());
    // Skew means hits cluster: search hit rate should be well above the
    // uniform 50% (popular keys are mostly present... actually with range
    // 2x and zipf on the whole range, hit rate hovers near the steady
    // state; just require the workload made progress on both kinds).
    assert!(res.counts.search_hit > 0 && res.counts.search_miss > 0);
}

#[test]
fn cache_handles_survive_the_runner() {
    let w = Workload::paper(512, 20, false);
    let set = OptikCacheList::new();
    w.initial_fill(11, |k, v| set.insert(k, v));
    let res = run_set_workload(8, Duration::from_millis(250), &w, 12, false, |_| {
        set.handle()
    });
    assert_eq!(set.len() as i64, 512 + res.counts.net_inserted());
    let (allocs, _) = set.pool_stats();
    assert!(allocs as i64 >= 512 + res.counts.insert_suc as i64);
}

#[test]
fn latency_recording_produces_boxplots() {
    let w = Workload::paper(64, 20, false);
    let set = OptikList::new();
    w.initial_fill(13, |k, v| set.insert(k, v));
    let res = run_set_workload(4, Duration::from_millis(200), &w, 14, true, |_| &set);
    use optik_suite::harness::OpKind;
    let p = res
        .latency
        .percentiles(OpKind::SearchHit)
        .expect("search hits recorded");
    assert!(p.p5 <= p.p25 && p.p25 <= p.p50 && p.p50 <= p.p75 && p.p75 <= p.p95);
    assert!(p.count > 100);
}
