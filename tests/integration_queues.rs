//! Cross-crate integration for every queue registered in the scenario
//! registry: linearizable FIFO behaviour under the harness workload, plus
//! conservation and drain checks. Registering a queue in
//! `optik_bench::scenarios` automatically enrolls it here.

use std::sync::Arc;

use optik_suite::harness::runner::run_queue_workload;
use optik_suite::harness::scenario::Subject;
use optik_suite::harness::ConcurrentQueue;

fn all_queues() -> Vec<(String, Arc<dyn ConcurrentQueue>)> {
    // Deduplicate by subject id, keeping the FIRST registration — fig12
    // registers the canonical constructors (e.g. the victim queue with
    // the paper's threshold) before the ablation sweeps re-register
    // parameterized variants.
    let reg = optik_bench::scenarios::registry();
    let mut out: Vec<(String, Arc<dyn ConcurrentQueue>)> = Vec::new();
    for s in reg.iter() {
        if let Subject::Queue(make) = s.subject() {
            if !out.iter().any(|(id, _)| *id == s.subject_id()) {
                out.push((s.subject_id().to_string(), make()));
            }
        }
    }
    assert!(out.len() >= 6, "registry shrank: {} queues", out.len());
    out
}

#[test]
fn harness_workload_balances_counts() {
    for (name, q) in all_queues() {
        for i in 0..5_000u64 {
            q.enqueue(i);
        }
        let res = run_queue_workload(
            q.as_ref(),
            8,
            std::time::Duration::from_millis(200),
            50,
            11,
            false,
        );
        let expected = 5_000i64 + res.counts.enqueue as i64 - res.counts.dequeue_suc as i64;
        assert_eq!(q.len() as i64, expected, "{name}");
        assert!(res.counts.total() > 0, "{name}: did work");
    }
}

#[test]
fn drain_after_concurrent_fill_yields_every_element_once() {
    // Scaled for tier-1 (see `optik_harness::stress`); the paper-strength
    // count runs in the `--ignored` tier.
    drain_after_concurrent_fill(optik_suite::harness::stress::ops(30_000));
}

#[test]
#[ignore = "full 8-core-strength stress tier; run via --ignored"]
fn drain_after_concurrent_fill_yields_every_element_once_full() {
    drain_after_concurrent_fill(30_000);
}

fn drain_after_concurrent_fill(per: u64) {
    for (name, q) in all_queues() {
        const PRODUCERS: u64 = 6;
        let per = per.max(64);
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    q.enqueue(p * per + i);
                }
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
        });
        let mut seen = vec![false; (PRODUCERS * per) as usize];
        while let Some(v) = q.dequeue() {
            let i = v as usize;
            assert!(!seen[i], "{name}: {v} dequeued twice");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "{name}: element lost");
    }
}

#[test]
fn alternating_enqueue_dequeue_is_exact_fifo() {
    let iters = optik_suite::harness::stress::ops(100_000);
    for (name, q) in all_queues() {
        let mut next_out = 0u64;
        let mut next_in = 0u64;
        let mut x = 777u64;
        for _ in 0..iters {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x % 3 != 0 {
                q.enqueue(next_in);
                next_in += 1;
            } else if let Some(v) = q.dequeue() {
                assert_eq!(v, next_out, "{name}: FIFO order broken");
                next_out += 1;
            } else {
                assert_eq!(next_in, next_out, "{name}: empty only when balanced");
            }
        }
        assert_eq!(q.len() as u64, next_in - next_out, "{name}");
    }
}
