//! Cross-crate integration for the six queues: linearizable FIFO behaviour
//! under the harness workload, plus conservation and drain checks.

use std::sync::Arc;

use optik_suite::harness::runner::run_queue_workload;
use optik_suite::harness::ConcurrentQueue;
use optik_suite::queues::{
    MsLbQueue, MsLfQueue, OptikQueue0, OptikQueue1, OptikQueue2, VictimQueue,
};

fn all_queues() -> Vec<(&'static str, Arc<dyn ConcurrentQueue>)> {
    vec![
        ("ms-lf", Arc::new(MsLfQueue::new())),
        ("ms-lb", Arc::new(MsLbQueue::new())),
        ("optik0", Arc::new(OptikQueue0::new())),
        ("optik1", Arc::new(OptikQueue1::new())),
        ("optik2", Arc::new(OptikQueue2::new())),
        ("optik3", Arc::new(VictimQueue::new())),
    ]
}

#[test]
fn harness_workload_balances_counts() {
    for (name, q) in all_queues() {
        for i in 0..5_000u64 {
            q.enqueue(i);
        }
        let res = run_queue_workload(
            q.as_ref(),
            8,
            std::time::Duration::from_millis(200),
            50,
            11,
            false,
        );
        let expected = 5_000i64 + res.counts.enqueue as i64 - res.counts.dequeue_suc as i64;
        assert_eq!(q.len() as i64, expected, "{name}");
        assert!(res.counts.total() > 0, "{name}: did work");
    }
}

#[test]
fn drain_after_concurrent_fill_yields_every_element_once() {
    for (name, q) in all_queues() {
        const PRODUCERS: u64 = 6;
        const PER: u64 = 30_000;
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER {
                    q.enqueue(p * PER + i);
                }
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
        });
        let mut seen = vec![false; (PRODUCERS * PER) as usize];
        while let Some(v) = q.dequeue() {
            let i = v as usize;
            assert!(!seen[i], "{name}: {v} dequeued twice");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "{name}: element lost");
    }
}

#[test]
fn alternating_enqueue_dequeue_is_exact_fifo() {
    for (name, q) in all_queues() {
        let mut next_out = 0u64;
        let mut next_in = 0u64;
        let mut x = 777u64;
        for _ in 0..100_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x % 3 != 0 {
                q.enqueue(next_in);
                next_in += 1;
            } else if let Some(v) = q.dequeue() {
                assert_eq!(v, next_out, "{name}: FIFO order broken");
                next_out += 1;
            } else {
                assert_eq!(next_in, next_out, "{name}: empty only when balanced");
            }
        }
        assert_eq!(q.len() as u64, next_in - next_out, "{name}");
    }
}
