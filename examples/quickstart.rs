//! Quickstart: the OPTIK lock, the OPTIK pattern, and a first data
//! structure.
//!
//! Run with: `cargo run --release -p optik-suite --example quickstart`

use std::sync::Arc;
use std::thread;

use optik_suite::optik::{transaction, OptikGuard, TxStep};
use optik_suite::prelude::*;

fn main() {
    // ---------------------------------------------------------------
    // 1. The raw OPTIK lock interface (§3.2 of the paper).
    // ---------------------------------------------------------------
    let lock = OptikVersioned::new();
    let v = lock.get_version();
    // ... optimistic, non-synchronized work happens here ...
    // Lock-and-validate in a single CAS: succeeds iff nothing committed
    // since we read `v`.
    assert!(lock.try_lock_version(v));
    // ... critical section ...
    lock.unlock(); // releases AND advances the version
    assert!(
        !lock.try_lock_version(v),
        "the old version is now stale — concurrent readers detect our commit"
    );
    println!("raw OPTIK lock: ok");

    // ---------------------------------------------------------------
    // 2. RAII guards: revert on drop, commit explicitly.
    // ---------------------------------------------------------------
    let lock = OptikVersioned::new();
    let v0 = lock.get_version();
    {
        let _g = OptikGuard::try_acquire(&lock, lock.get_version()).expect("free lock");
        // dropped without commit => version restored (no false conflicts)
    }
    assert!(
        lock.try_lock_version(v0),
        "read-only sections are invisible"
    );
    lock.unlock();
    println!("guards: ok");

    // ---------------------------------------------------------------
    // 3. The pattern as a reusable transaction (Figure 2).
    // ---------------------------------------------------------------
    let lock = OptikVersioned::new();
    let shared = std::cell::Cell::new(0u64);
    let result = transaction(
        &lock,
        |_version| TxStep::Commit(41),
        |prepared| {
            shared.set(shared.get() + prepared + 1);
            shared.get()
        },
    );
    assert_eq!(result, 42);
    println!("transaction helper: ok");

    // ---------------------------------------------------------------
    // 4. A concurrent data structure built on the pattern: the
    //    fine-grained OPTIK linked list (Figure 8), hammered by threads.
    // ---------------------------------------------------------------
    let list = Arc::new(OptikList::new());
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let list = Arc::clone(&list);
        handles.push(thread::spawn(move || {
            let lo = t * 1000 + 1;
            for k in lo..lo + 1000 {
                assert!(list.insert(k, k * 10));
            }
            for k in lo..lo + 1000 {
                assert_eq!(list.search(k), Some(k * 10));
            }
            for k in (lo..lo + 1000).step_by(2) {
                assert_eq!(list.delete(k), Some(k * 10));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(list.len(), 2000);
    println!(
        "fine-grained OPTIK list with 4 threads: ok ({} elements left)",
        list.len()
    );

    println!("\nquickstart complete.");
}
