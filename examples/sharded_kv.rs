//! The `optik-kv` subsystem end to end: a sharded store over
//! striped-OPTIK hash-table backends serving a mixed workload of
//! single-key ops, atomic cross-shard batches, and validated snapshot
//! scans — the service-shaped layer the hand-rolled `kv_store` example
//! predates.
//!
//! Run with: `cargo run --release -p optik-suite --example sharded_kv`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use optik_suite::harness::FastRng;
use optik_suite::hashtables::StripedOptikHashTable;
use optik_suite::kv::KvStore;

const SHARDS: usize = 8;
const KEYS: u64 = 4_096;
const BATCH: usize = 8;
const RUN: Duration = Duration::from_millis(400);

fn main() {
    let store = Arc::new(KvStore::with_shards(SHARDS, |_| {
        StripedOptikHashTable::new((KEYS as usize) / SHARDS, 16)
    }));
    println!("{SHARDS}-shard store over striped-OPTIK backends");

    // Seed every account with a starting balance of 1000.
    let accounts: Vec<(u64, u64)> = (1..=KEYS).map(|k| (k, 1_000)).collect();
    store.multi_put(&accounts);
    let initial_total: u64 = store.snapshot().iter().map(|&(_, v)| v).sum();
    println!(
        "{} accounts seeded, total balance {initial_total}",
        store.len()
    );

    // Writers move balance between account pairs with atomic multi-key
    // batches; auditors snapshot concurrently and verify invariants.
    // Each writer owns a disjoint key range (a read-modify-write across
    // two batches is not a transaction, so disjoint ownership is what
    // makes the final conservation check exact).
    const WRITERS: u64 = 3;
    let stop = Arc::new(AtomicBool::new(false));
    let transfers = Arc::new(AtomicU64::new(0));
    let audits = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for tid in 0..WRITERS {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let transfers = Arc::clone(&transfers);
        handles.push(std::thread::spawn(move || {
            let (lo, hi) = (tid * KEYS / WRITERS + 1, (tid + 1) * KEYS / WRITERS);
            let mut rng = FastRng::for_thread(11, tid as usize);
            while !stop.load(Ordering::Relaxed) {
                // BATCH/2 disjoint (from, to) pairs from this writer's
                // range; 1 unit moves along each pair, all applied as one
                // atomic cross-shard batch.
                let mut keys: Vec<u64> = Vec::with_capacity(BATCH);
                while keys.len() < BATCH {
                    let k = rng.range_inclusive(lo, hi);
                    if !keys.contains(&k) {
                        keys.push(k);
                    }
                }
                let balances = store.multi_get(&keys);
                let mut update = Vec::with_capacity(BATCH);
                for i in (0..BATCH).step_by(2) {
                    let (from, to) = (keys[i], keys[i + 1]);
                    let a = balances[i].expect("seeded keys are never removed");
                    let b = balances[i + 1].expect("seeded keys are never removed");
                    if a > 0 {
                        update.push((from, a - 1));
                        update.push((to, b + 1));
                    }
                }
                if !update.is_empty() {
                    store.multi_put(&update);
                    transfers.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    for _ in 0..2 {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let audits = Arc::clone(&audits);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                // Shard-consistent snapshot; transfers within one shard can
                // never appear half-applied. (Cross-shard transfers can
                // straddle a scan, so audit a per-shard invariant: no
                // balance ever exceeds what its shard could hold — here
                // simply that every balance is sane.)
                let snap = store.snapshot();
                assert_eq!(snap.len(), KEYS as usize, "accounts conserved");
                assert!(snap.iter().all(|&(_, v)| v <= initial_total));
                audits.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    std::thread::sleep(RUN);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    // Quiesced: total balance must be exactly conserved.
    let final_total: u64 = store.snapshot().iter().map(|&(_, v)| v).sum();
    println!(
        "{} atomic transfer batches, {} snapshot audits",
        transfers.load(Ordering::Relaxed),
        audits.load(Ordering::Relaxed)
    );
    assert_eq!(final_total, initial_total, "balance conserved");
    println!("conservation check passed: total balance still {final_total}");
}
