//! A warehouse inventory on the OPTIK external BST, with optimistic
//! per-SKU stock counters.
//!
//! SKUs (stock-keeping units) live in an [`OptikBst`] — the workspace's
//! extension structure, the BST-TK-style tree the paper's related work
//! points to. Each SKU's on-hand count lives in an [`OptikCell`], so reads
//! never lock and adjustments are single-CAS OPTIK transactions. Pickers
//! take units, a restocker tops depleted SKUs back up, and auditors
//! continuously check that counts stay within bounds. At the end the
//! example asserts exact conservation: initial + restocked − picked ==
//! on-hand.
//!
//! Run with: `cargo run --release -p optik-suite --example inventory`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use optik_suite::harness::FastRng;
use optik_suite::optik::OptikCell;
use optik_suite::prelude::*;

const SKUS: u64 = 512;
const INITIAL_STOCK: u64 = 100;
const PICKERS: u64 = 6;
const AUDITORS: usize = 2;
const RUN_MS: u64 = 300;

fn main() {
    // The catalog maps SKU -> slot index; per-slot stock counters are
    // OPTIK cells (seqlock-style readers, single-CAS optimistic writers).
    let catalog = Arc::new(OptikBst::new());
    let stock: Arc<Vec<OptikCell<u64>>> =
        Arc::new((0..SKUS).map(|_| OptikCell::new(INITIAL_STOCK)).collect());

    for sku in 1..=SKUS {
        assert!(catalog.insert(sku, sku - 1)); // value = slot index
    }
    println!(
        "catalog seeded with {} SKUs x {INITIAL_STOCK} units",
        catalog.len()
    );

    let stop = Arc::new(AtomicBool::new(false));
    let picked = Arc::new(AtomicU64::new(0));
    let restocked = Arc::new(AtomicU64::new(0));
    let oos_events = Arc::new(AtomicU64::new(0)); // out-of-stock

    let mut handles = Vec::new();

    // Pickers: look a SKU up in the tree, then try to take one unit. A
    // failed `try_update` (conflicting picker/restocker) is simply
    // retried on the next loop iteration — best-effort, like the paper's
    // trylock-based operations.
    for t in 0..PICKERS {
        let catalog = Arc::clone(&catalog);
        let stock = Arc::clone(&stock);
        let stop = Arc::clone(&stop);
        let picked = Arc::clone(&picked);
        let oos = Arc::clone(&oos_events);
        handles.push(std::thread::spawn(move || {
            let mut rng = FastRng::for_thread(7, t as usize);
            while !stop.load(Ordering::Relaxed) {
                let sku = rng.range_inclusive(1, SKUS);
                let Some(slot) = catalog.search(sku) else {
                    continue;
                };
                let cell = &stock[slot as usize];
                let mut before = 0;
                if cell
                    .try_update(|n| {
                        before = n;
                        n.saturating_sub(1)
                    })
                    .is_ok()
                {
                    if before > 0 {
                        picked.fetch_add(1, Ordering::Relaxed);
                    } else {
                        oos.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }

    // Restocker: sweeps the shelves; SKUs below half get topped back up to
    // the initial level. The read never locks; only actual top-ups
    // synchronize (the OPTIK "infeasible operations return without
    // locking" rule).
    {
        let stock = Arc::clone(&stock);
        let stop = Arc::clone(&stop);
        let restocked = Arc::clone(&restocked);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for cell in stock.iter() {
                    if cell.read() >= INITIAL_STOCK / 2 {
                        continue; // plenty left: no synchronization
                    }
                    let mut added = 0;
                    if cell
                        .try_update(|cur| {
                            added = INITIAL_STOCK.saturating_sub(cur);
                            INITIAL_STOCK.max(cur)
                        })
                        .is_ok()
                    {
                        restocked.fetch_add(added, Ordering::Relaxed);
                    }
                }
                std::thread::yield_now();
            }
        }));
    }

    // Auditors: snapshots must always be sane — never above the restock
    // level, and never torn.
    for _ in 0..AUDITORS {
        let stock = Arc::clone(&stock);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for cell in stock.iter() {
                    let n = cell.read();
                    assert!(n <= INITIAL_STOCK, "stock overflowed: {n}");
                }
            }
        }));
    }

    std::thread::sleep(std::time::Duration::from_millis(RUN_MS));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    let total: u64 = stock.iter().map(|c| c.read()).sum();
    println!(
        "picked {} units, restocked {}, {} out-of-stock hits",
        picked.load(Ordering::Relaxed),
        restocked.load(Ordering::Relaxed),
        oos_events.load(Ordering::Relaxed)
    );
    println!(
        "on-hand now {total} units across {SKUS} SKUs (≤ {} by audit invariant)",
        SKUS * INITIAL_STOCK
    );
    // Conservation: initial + restocked - picked == on-hand.
    assert_eq!(
        SKUS * INITIAL_STOCK + restocked.load(Ordering::Relaxed) - picked.load(Ordering::Relaxed),
        total,
        "units must be conserved"
    );
    println!("conservation check passed");
}
