//! A multi-producer/multi-consumer job pipeline on the victim queue
//! (*optik3*, §5.4) — the design built for exactly this enqueue-heavy
//! pattern.
//!
//! Producers submit "jobs" (checksum work items) in bursts; consumers
//! drain and execute them. The victim queue absorbs enqueue bursts that
//! would otherwise convoy behind the tail lock.
//!
//! Run with: `cargo run --release -p optik-suite --example job_queue`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use optik_suite::prelude::*;

const PRODUCERS: u64 = 6;
const CONSUMERS: usize = 4;
const JOBS_PER_PRODUCER: u64 = 50_000;

/// Pretend work: mix the job id into a checksum.
fn execute(job: u64) -> u64 {
    let mut x = job.wrapping_mul(0x9E3779B97F4A7C15);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^ (x >> 32)
}

fn main() {
    let queue = Arc::new(VictimQueue::new());
    let produced = Arc::new(AtomicU64::new(0));
    let consumed = Arc::new(AtomicU64::new(0));
    let checksum = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    let t0 = std::time::Instant::now();
    let mut handles = Vec::new();
    for p in 0..PRODUCERS {
        let queue = Arc::clone(&queue);
        let produced = Arc::clone(&produced);
        handles.push(std::thread::spawn(move || {
            for i in 0..JOBS_PER_PRODUCER {
                queue.enqueue((p << 32) | i);
                produced.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    let mut consumers = Vec::new();
    for _ in 0..CONSUMERS {
        let queue = Arc::clone(&queue);
        let consumed = Arc::clone(&consumed);
        let checksum = Arc::clone(&checksum);
        let done = Arc::clone(&done);
        consumers.push(std::thread::spawn(move || loop {
            match queue.dequeue() {
                Some(job) => {
                    checksum.fetch_xor(execute(job), Ordering::Relaxed);
                    consumed.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    if done.load(Ordering::Acquire) && queue.is_empty() {
                        break;
                    }
                    synchro::relax();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    done.store(true, Ordering::Release);
    for c in consumers {
        c.join().unwrap();
    }
    let secs = t0.elapsed().as_secs_f64();

    let total = PRODUCERS * JOBS_PER_PRODUCER;
    assert_eq!(produced.load(Ordering::Relaxed), total);
    assert_eq!(consumed.load(Ordering::Relaxed), total);
    assert!(queue.is_empty());

    // Verify the checksum against a sequential execution.
    let mut expect = 0u64;
    for p in 0..PRODUCERS {
        for i in 0..JOBS_PER_PRODUCER {
            expect ^= execute((p << 32) | i);
        }
    }
    assert_eq!(checksum.load(Ordering::Relaxed), expect, "work corrupted");

    println!(
        "{total} jobs through {PRODUCERS} producers / {CONSUMERS} consumers in {:.2}s ({:.2} Mjobs/s), checksum verified",
        secs,
        total as f64 / secs / 1e6
    );
}
