//! A web-session store on the resizable striped hash table.
//!
//! Session stores rarely know their cardinality up front — exactly the
//! situation the fixed-capacity `java` table of Figure 10 cannot handle
//! and the [`ResizableStripedHashTable`] extension exists for. Login
//! threads create sessions (forcing segment-local growth), request
//! threads validate tokens, and a reaper expires old sessions. The store
//! starts at 2 buckets per segment and grows itself by orders of
//! magnitude while serving reads lock-free.
//!
//! Run with: `cargo run --release -p optik-suite --example session_store`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use optik_suite::harness::FastRng;
use optik_suite::prelude::*;

const SEGMENTS: usize = 64;
const LOGIN_THREADS: u64 = 4;
const REQUEST_THREADS: u64 = 4;
const RUN_MS: u64 = 300;

fn main() {
    let store = Arc::new(ResizableStripedHashTable::new(SEGMENTS, 2));
    println!(
        "session store: {SEGMENTS} segments, {} total buckets initially",
        store.capacity()
    );

    let stop = Arc::new(AtomicBool::new(false));
    let next_session = Arc::new(AtomicU64::new(1));
    let logins = Arc::new(AtomicU64::new(0));
    let hits = Arc::new(AtomicU64::new(0));
    let misses = Arc::new(AtomicU64::new(0));
    let expired = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();

    // Login threads: mint session ids, store token hashes.
    for _ in 0..LOGIN_THREADS {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let next = Arc::clone(&next_session);
        let logins = Arc::clone(&logins);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let sid = next.fetch_add(1, Ordering::Relaxed);
                let token = sid.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                assert!(store.insert(sid, token), "session ids are unique");
                logins.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    // Request threads: validate tokens for random recent sessions.
    for t in 0..REQUEST_THREADS {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let next = Arc::clone(&next_session);
        let hits = Arc::clone(&hits);
        let misses = Arc::clone(&misses);
        handles.push(std::thread::spawn(move || {
            let mut rng = FastRng::for_thread(31, t as usize);
            while !stop.load(Ordering::Relaxed) {
                let hi = next.load(Ordering::Relaxed);
                if hi <= 1 {
                    continue;
                }
                let sid = rng.range_inclusive(1, hi - 1);
                match store.search(sid) {
                    Some(token) => {
                        // Token integrity: must be the exact hash minted at
                        // login, never a torn/stale value.
                        assert_eq!(token, sid.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        misses.fetch_add(1, Ordering::Relaxed); // reaped
                    }
                }
            }
        }));
    }

    // Reaper: expires the oldest half of the id space, continuously.
    {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let next = Arc::clone(&next_session);
        let expired = Arc::clone(&expired);
        handles.push(std::thread::spawn(move || {
            let mut cursor = 1u64;
            while !stop.load(Ordering::Relaxed) {
                let hi = next.load(Ordering::Relaxed);
                // Keep roughly the newest half alive.
                while cursor < hi / 2 {
                    if store.delete(cursor).is_some() {
                        expired.fetch_add(1, Ordering::Relaxed);
                    }
                    cursor += 1;
                }
                std::thread::yield_now();
            }
        }));
    }

    std::thread::sleep(std::time::Duration::from_millis(RUN_MS));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    let logins = logins.load(Ordering::Relaxed);
    let expired = expired.load(Ordering::Relaxed);
    println!(
        "{} logins, {} validated, {} misses (reaped), {} expired",
        logins,
        hits.load(Ordering::Relaxed),
        misses.load(Ordering::Relaxed),
        expired
    );
    println!(
        "store grew to {} buckets; {} sessions live",
        store.capacity(),
        ConcurrentSet::len(store.as_ref())
    );
    assert_eq!(
        ConcurrentSet::len(store.as_ref()) as u64,
        logins - expired,
        "sessions conserved"
    );
    println!("conservation check passed");
}
