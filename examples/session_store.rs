//! A web-session store on the kv engine's native TTL layer.
//!
//! Session stores rarely know their cardinality up front — so the shards
//! are [`ResizableStripedHashTable`]s that grow themselves — and session
//! lifetime is a *property of the entry*, not of a hand-rolled reaper
//! walking the id space: logins call [`KvStore::put_with_ttl`], reads
//! treat expired sessions as misses the instant their deadline passes,
//! and a single sweeper thread drives [`KvStore::sweep_expired`] to
//! reclaim them through QSBR. Login threads mint sessions (forcing
//! segment-local growth), request threads validate tokens lock-free, and
//! the store serves reads throughout.
//!
//! Run with: `cargo run --release -p optik-suite --example session_store`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use optik_suite::harness::FastRng;
use optik_suite::prelude::*;

const SHARDS: usize = 8;
const SEGMENTS_PER_SHARD: usize = 8;
const SEGMENTS: usize = SHARDS * SEGMENTS_PER_SHARD;
const LOGIN_THREADS: u64 = 4;
const REQUEST_THREADS: u64 = 4;
const RUN_MS: u64 = 300;
/// Session lifetime in clock ticks (wall milliseconds): sessions minted
/// early in the run expire while it is still going.
const SESSION_TTL_MS: u64 = 60;

fn main() {
    let store = Arc::new(KvStore::with_shards_ttl(
        SHARDS,
        Arc::new(SystemClock::new()),
        |_| ResizableStripedHashTable::new(SEGMENTS_PER_SHARD, 2),
    ));
    let buckets = |s: &KvStore<ResizableStripedHashTable>| -> usize {
        (0..s.num_shards()).map(|i| s.backend(i).capacity()).sum()
    };
    println!(
        "session store: {SEGMENTS} segments, {} total buckets initially",
        buckets(&store)
    );

    let stop = Arc::new(AtomicBool::new(false));
    let next_session = Arc::new(AtomicU64::new(1));
    let logins = Arc::new(AtomicU64::new(0));
    let hits = Arc::new(AtomicU64::new(0));
    let misses = Arc::new(AtomicU64::new(0));
    let expired = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();

    // Login threads: mint session ids, store token hashes with a TTL.
    for _ in 0..LOGIN_THREADS {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let next = Arc::clone(&next_session);
        let logins = Arc::clone(&logins);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let sid = next.fetch_add(1, Ordering::Relaxed);
                let token = sid.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                assert!(
                    store.put_with_ttl(sid, token, SESSION_TTL_MS).is_none(),
                    "session ids are unique"
                );
                logins.fetch_add(1, Ordering::Relaxed);
            }
            reclaim::offline();
        }));
    }

    // Request threads: validate tokens for random recent sessions.
    for t in 0..REQUEST_THREADS {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let next = Arc::clone(&next_session);
        let hits = Arc::clone(&hits);
        let misses = Arc::clone(&misses);
        handles.push(std::thread::spawn(move || {
            let mut rng = FastRng::for_thread(31, t as usize);
            while !stop.load(Ordering::Relaxed) {
                let hi = next.load(Ordering::Relaxed);
                if hi <= 1 {
                    continue;
                }
                let sid = rng.range_inclusive(1, hi - 1);
                match store.get(sid) {
                    Some(token) => {
                        // Token integrity: must be the exact hash minted at
                        // login, never a torn/stale value.
                        assert_eq!(token, sid.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        misses.fetch_add(1, Ordering::Relaxed); // reaped
                    }
                }
                reclaim::quiescent();
            }
            reclaim::offline();
        }));
    }

    // Sweeper: one thread driving the engine's incremental expiry sweep —
    // the TTL layer decides *what* is dead; this thread only donates
    // cycles to reclaim it.
    {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let expired = Arc::clone(&expired);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let swept = store.sweep_expired(256);
                expired.fetch_add(swept, Ordering::Relaxed);
                if swept == 0 {
                    std::thread::yield_now();
                }
                reclaim::quiescent();
            }
            reclaim::offline();
        }));
    }

    std::thread::sleep(std::time::Duration::from_millis(RUN_MS));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    reclaim::online();

    let logins = logins.load(Ordering::Relaxed);
    let expired = expired.load(Ordering::Relaxed);
    println!(
        "{} logins, {} validated, {} misses (reaped), {} expired",
        logins,
        hits.load(Ordering::Relaxed),
        misses.load(Ordering::Relaxed),
        expired
    );
    println!(
        "store grew to {} buckets; {} sessions live",
        buckets(&store),
        store.len()
    );
    // Physical removal happens only through the sweeper (session ids are
    // never reused and reads are purely lazy), so the ledger must close.
    assert_eq!(store.len() as u64, logins - expired, "sessions conserved");
    println!("conservation check passed");
}
