//! A game leaderboard on the paper's novel OPTIK skip list (§5.3).
//!
//! Skewed access — the hottest (highest) scores are updated most often —
//! matches the paper's zipfian evaluation where optik2 shines. Player
//! scores are keys; concurrent "matches" move players up and down while
//! spectators look scores up.
//!
//! Run with: `cargo run --release -p optik-suite --example leaderboard`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use optik_suite::harness::{FastRng, Zipf};
use optik_suite::prelude::*;

const SCORE_RANGE: u64 = 10_000;
const PLAYERS: u64 = 5_000;
const UPDATERS: u64 = 6;
const SPECTATORS: usize = 4;

fn main() {
    let board = Arc::new(OptikSkipList2::new());

    // Seed the board: one entry per occupied score slot (score -> player).
    let mut rng = FastRng::new(99);
    let mut seeded = 0;
    while seeded < PLAYERS {
        let score = rng.range_inclusive(1, SCORE_RANGE);
        if board.insert(score, score * 1000) {
            seeded += 1;
        }
    }
    println!("leaderboard seeded with {} scores", board.len());

    let stop = Arc::new(AtomicBool::new(false));
    let updates = Arc::new(AtomicU64::new(0));
    let lookups = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for t in 0..UPDATERS {
        let board = Arc::clone(&board);
        let stop = Arc::clone(&stop);
        let updates = Arc::clone(&updates);
        handles.push(std::thread::spawn(move || {
            // Zipfian: top scores are the most contended (paper's skew).
            let zipf = Zipf::paper(SCORE_RANGE as usize);
            let mut rng = FastRng::for_thread(99, t as usize);
            while !stop.load(Ordering::Relaxed) {
                let old = zipf.sample_key(&mut rng, 1, SCORE_RANGE);
                let new = zipf.sample_key(&mut rng, 1, SCORE_RANGE);
                // A match result: player moves from `old` to `new`. A taken
                // slot (including `old`, which a racer may reoccupy) makes
                // us retry nearby slots, so entries are always conserved.
                if let Some(player) = board.delete(old) {
                    let mut target = new;
                    while !board.insert(target, player) {
                        target = rng.range_inclusive(1, SCORE_RANGE);
                    }
                }
                updates.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for s in 0..SPECTATORS {
        let board = Arc::clone(&board);
        let stop = Arc::clone(&stop);
        let lookups = Arc::clone(&lookups);
        handles.push(std::thread::spawn(move || {
            let zipf = Zipf::paper(SCORE_RANGE as usize);
            let mut rng = FastRng::for_thread(1234, s);
            while !stop.load(Ordering::Relaxed) {
                let score = zipf.sample_key(&mut rng, 1, SCORE_RANGE);
                let _ = board.search(score);
                lookups.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    let t0 = std::time::Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(500));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    let secs = t0.elapsed().as_secs_f64();

    println!(
        "{:.2} M updates/s, {:.2} M lookups/s over {:.2}s",
        updates.load(Ordering::Relaxed) as f64 / secs / 1e6,
        lookups.load(Ordering::Relaxed) as f64 / secs / 1e6,
        secs
    );
    println!(
        "board still holds {} scores (moves conserve entries)",
        board.len()
    );
    assert_eq!(board.len() as u64, PLAYERS, "entries must be conserved");
}
