//! A concurrent key–value store built on the paper's fastest hash table
//! (per-bucket global-lock OPTIK lists, §5.2).
//!
//! Simulates a read-mostly cache workload: N worker threads serve lookups
//! with occasional updates, exactly the scenario the paper's introduction
//! motivates ("optimistic concurrency is deployed in every state-of-the-art
//! data structure").
//!
//! Run with: `cargo run --release -p optik-suite --example kv_store`

use std::sync::Arc;
use std::time::{Duration, Instant};

use optik_suite::harness::{FastRng, Workload};
use optik_suite::prelude::*;

const STORE_SIZE: u64 = 16_384;
const WORKERS: usize = 8;
const RUN: Duration = Duration::from_millis(500);

fn main() {
    // One bucket per expected element, as in the paper's evaluation.
    let store = Arc::new(OptikGlHashTable::new(STORE_SIZE as usize));

    // Pre-populate half the key range.
    let workload = Workload::paper(STORE_SIZE, 10, false);
    workload.initial_fill(7, |k, v| store.insert(k, v));
    println!("store pre-filled with {} entries", store.len());

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    for tid in 0..WORKERS {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let workload = workload.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = FastRng::for_thread(7, tid);
            let (mut reads, mut hits, mut writes) = (0u64, 0u64, 0u64);
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                match workload.next_op(&mut rng) {
                    optik_suite::harness::Op::Search(k) => {
                        reads += 1;
                        if store.search(k).is_some() {
                            hits += 1;
                        }
                    }
                    optik_suite::harness::Op::Insert(k, v) => {
                        writes += 1;
                        store.insert(k, v);
                    }
                    optik_suite::harness::Op::Delete(k) => {
                        writes += 1;
                        store.delete(k);
                    }
                }
                reclaim::quiescent();
            }
            (reads, hits, writes)
        }));
    }

    let t0 = Instant::now();
    std::thread::sleep(RUN);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut total = (0u64, 0u64, 0u64);
    for h in handles {
        let (r, hh, w) = h.join().unwrap();
        total = (total.0 + r, total.1 + hh, total.2 + w);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let ops = total.0 + total.2;
    println!(
        "{WORKERS} workers: {:.2} Mops/s ({} reads, {:.1}% hit rate, {} writes)",
        ops as f64 / elapsed / 1e6,
        total.0,
        100.0 * total.1 as f64 / total.0.max(1) as f64,
        total.2
    );
    println!("final store size: {}", store.len());
}
