//! Global-lock OPTIK external BST (*optik-gl*).
//!
//! The tree analogue of the list crate's *optik-gl*: one OPTIK lock
//! protects the whole tree. Updates traverse optimistically and
//! lock-and-validate only when feasible, so infeasible updates (duplicate
//! inserts, misses) never synchronize; searches never lock. Like its list
//! counterpart, this design trades false conflicts (every committed update
//! invalidates every concurrent one) for a very cheap common path — it is
//! the right building block for per-bucket use.

use std::sync::atomic::{AtomicPtr, Ordering};

use optik::{OptikLock, OptikVersioned};
use synchro::Backoff;

use crate::{assert_user_key, ConcurrentSet, Key, Val, SENTINEL_KEY};

struct Node {
    key: Key,
    val: Val,
    leaf: bool,
    left: AtomicPtr<Node>,
    right: AtomicPtr<Node>,
}

impl Node {
    fn leaf_boxed(key: Key, val: Val) -> *mut Node {
        Box::into_raw(Box::new(Node {
            key,
            val,
            leaf: true,
            left: AtomicPtr::new(std::ptr::null_mut()),
            right: AtomicPtr::new(std::ptr::null_mut()),
        }))
    }

    fn router_boxed(key: Key, left: *mut Node, right: *mut Node) -> *mut Node {
        Box::into_raw(Box::new(Node {
            key,
            val: 0,
            leaf: false,
            left: AtomicPtr::new(left),
            right: AtomicPtr::new(right),
        }))
    }

    #[inline]
    fn child_for(&self, key: Key) -> &AtomicPtr<Node> {
        if key < self.key {
            &self.left
        } else {
            &self.right
        }
    }

    #[inline]
    fn sibling_for(&self, key: Key) -> &AtomicPtr<Node> {
        if key < self.key {
            &self.right
        } else {
            &self.left
        }
    }
}

/// The global-lock OPTIK external BST (*optik-gl*), generic over the lock
/// implementation.
pub struct OptikGlBst<L: OptikLock = OptikVersioned> {
    lock: L,
    root: *mut Node,
}

// SAFETY: updates validate through the global OPTIK lock; searches are
// oblivious and QSBR-protected.
unsafe impl<L: OptikLock> Send for OptikGlBst<L> {}
unsafe impl<L: OptikLock> Sync for OptikGlBst<L> {}

impl<L: OptikLock> OptikGlBst<L> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        let l = Node::leaf_boxed(SENTINEL_KEY, 0);
        let r = Node::leaf_boxed(SENTINEL_KEY, 0);
        Self {
            lock: L::default(),
            root: Node::router_boxed(SENTINEL_KEY, l, r),
        }
    }

    /// Finds `(gparent, parent, leaf)` for `key`.
    ///
    /// # Safety
    ///
    /// Caller must be inside a QSBR grace period.
    #[inline]
    unsafe fn locate(&self, key: Key) -> (*mut Node, *mut Node, *mut Node) {
        // SAFETY: per contract.
        unsafe {
            let mut gp = self.root;
            let mut p = gp;
            let mut cur = (*p).child_for(key).load(Ordering::Acquire);
            while !(*cur).leaf {
                gp = p;
                p = cur;
                cur = (*p).child_for(key).load(Ordering::Acquire);
            }
            (gp, p, cur)
        }
    }
}

impl<L: OptikLock> Default for OptikGlBst<L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L: OptikLock> ConcurrentSet for OptikGlBst<L> {
    fn search(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        // SAFETY: grace period; oblivious sequential descent.
        unsafe {
            let mut cur = self.root;
            while !(*cur).leaf {
                cur = (*cur).child_for(key).load(Ordering::Acquire);
            }
            ((*cur).key == key).then(|| (*cur).val)
        }
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        assert_user_key(key);
        reclaim::quiescent();
        let mut bo = Backoff::new();
        loop {
            let vn = self.lock.get_version();
            // SAFETY: grace period per attempt.
            unsafe {
                let (_, p, l) = self.locate(key);
                if (*l).key == key {
                    // Infeasible: return false without ever locking.
                    return false;
                }
                if !self.lock.try_lock_version(vn) {
                    bo.backoff();
                    continue;
                }
                // Validated: no update committed since `vn`, so the
                // traversal results are still exact.
                let new_leaf = Node::leaf_boxed(key, val);
                let router = if key < (*l).key {
                    Node::router_boxed((*l).key, new_leaf, l)
                } else {
                    Node::router_boxed(key, l, new_leaf)
                };
                (*p).child_for(key).store(router, Ordering::Release);
                self.lock.unlock();
                return true;
            }
        }
    }

    fn delete(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        let mut bo = Backoff::new();
        loop {
            let vn = self.lock.get_version();
            // SAFETY: grace period per attempt.
            unsafe {
                let (gp, p, l) = self.locate(key);
                if (*l).key != key {
                    // Infeasible: return without ever locking.
                    return None;
                }
                if !self.lock.try_lock_version(vn) {
                    bo.backoff();
                    continue;
                }
                let sibling = (*p).sibling_for(key).load(Ordering::Relaxed);
                (*gp).child_for(key).store(sibling, Ordering::Release);
                self.lock.unlock();
                let val = (*l).val;
                // SAFETY: unlinked under the validated lock.
                reclaim::with_local(|h| {
                    h.retire(p);
                    h.retire(l);
                });
                return Some(val);
            }
        }
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        // SAFETY: grace period; exact only in quiescence.
        unsafe {
            let mut n = 0;
            let mut stack = vec![self.root];
            while let Some(node) = stack.pop() {
                if (*node).leaf {
                    if (*node).key != SENTINEL_KEY {
                        n += 1;
                    }
                } else {
                    stack.push((*node).left.load(Ordering::Acquire));
                    stack.push((*node).right.load(Ordering::Acquire));
                }
            }
            n
        }
    }
}

impl<L: OptikLock> Drop for OptikGlBst<L> {
    fn drop(&mut self) {
        // SAFETY: exclusive at drop; retired nodes were already unlinked.
        unsafe {
            let mut stack = vec![self.root];
            while let Some(node) = stack.pop() {
                if !(*node).leaf {
                    stack.push((*node).left.load(Ordering::Relaxed));
                    stack.push((*node).right.load(Ordering::Relaxed));
                }
                drop(Box::from_raw(node));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optik::OptikTicket;
    use std::sync::Arc;

    #[test]
    fn infeasible_updates_never_bump_the_version() {
        let t: OptikGlBst = OptikGlBst::new();
        assert!(t.insert(5, 50));
        let v0 = t.lock.get_version();
        assert!(!t.insert(5, 99), "duplicate insert is infeasible");
        assert_eq!(t.delete(7), None, "missing delete is infeasible");
        assert_eq!(t.search(5), Some(50));
        assert_eq!(
            t.lock.get_version(),
            v0,
            "infeasible operations must not synchronize"
        );
    }

    #[test]
    fn works_over_ticket_locks_too() {
        let t: OptikGlBst<OptikTicket> = OptikGlBst::new();
        for k in 1..=50u64 {
            assert!(t.insert(k, k));
        }
        for k in 1..=50u64 {
            assert_eq!(t.delete(k), Some(k));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn concurrent_churn_preserves_stable_keys() {
        let t = Arc::new(OptikGlBst::<OptikVersioned>::new());
        for k in 500..600u64 {
            assert!(t.insert(k, k));
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let hs: Vec<_> = (0..4u64)
            .map(|i| {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut x = 0xA076_1D64_78BD_642Fu64.wrapping_mul(i + 1);
                    while !stop.load(Ordering::Relaxed) {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = 1 + (x % 400);
                        if x & 1 == 0 {
                            t.insert(k, k);
                        } else {
                            t.delete(k);
                        }
                    }
                    reclaim::offline();
                })
            })
            .collect();
        for _ in 0..1_000 {
            for k in 500..600u64 {
                assert_eq!(t.search(k), Some(k));
            }
            reclaim::quiescent();
        }
        stop.store(true, Ordering::Relaxed);
        for h in hs {
            h.join().unwrap();
        }
        reclaim::online();
    }
}
