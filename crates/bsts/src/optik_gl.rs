//! Global-lock OPTIK external BST (*optik-gl*).
//!
//! The tree analogue of the list crate's *optik-gl*: one OPTIK lock
//! protects the whole tree. Updates traverse optimistically and
//! lock-and-validate only when feasible, so infeasible updates (duplicate
//! inserts, misses) never synchronize; searches never lock. Like its list
//! counterpart, this design trades false conflicts (every committed update
//! invalidates every concurrent one) for a very cheap common path — it is
//! the right building block for per-bucket use.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use optik::{OptikLock, OptikVersioned};
use reclaim::NodePool;
use synchro::Backoff;

use crate::{
    assert_user_key, ConcurrentMap, ConcurrentSet, Key, OrderedMap, Val, RANGE_OPTIMISTIC_ATTEMPTS,
    SENTINEL_KEY,
};

struct Node {
    key: Key,
    /// Leaf binding, updated in place by `ConcurrentMap::put` under the
    /// validated global lock; 0 and never read on routers.
    val: AtomicU64,
    leaf: bool,
    left: AtomicPtr<Node>,
    right: AtomicPtr<Node>,
}

impl Node {
    fn leaf(key: Key, val: Val) -> Self {
        Node {
            key,
            val: AtomicU64::new(val),
            leaf: true,
            left: AtomicPtr::new(std::ptr::null_mut()),
            right: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    fn router(key: Key, left: *mut Node, right: *mut Node) -> Self {
        Node {
            key,
            val: AtomicU64::new(0),
            leaf: false,
            left: AtomicPtr::new(left),
            right: AtomicPtr::new(right),
        }
    }

    #[inline]
    fn child_for(&self, key: Key) -> &AtomicPtr<Node> {
        if key < self.key {
            &self.left
        } else {
            &self.right
        }
    }

    #[inline]
    fn sibling_for(&self, key: Key) -> &AtomicPtr<Node> {
        if key < self.key {
            &self.right
        } else {
            &self.left
        }
    }
}

/// The global-lock OPTIK external BST (*optik-gl*), generic over the lock
/// implementation.
pub struct OptikGlBst<L: OptikLock = OptikVersioned> {
    lock: L,
    root: *mut Node,
    pool: Arc<NodePool<Node>>,
}

// SAFETY: updates validate through the global OPTIK lock; searches are
// oblivious and QSBR-protected.
unsafe impl<L: OptikLock> Send for OptikGlBst<L> {}
unsafe impl<L: OptikLock> Sync for OptikGlBst<L> {}

impl<L: OptikLock> OptikGlBst<L> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::from_pool(NodePool::new())
    }

    /// Creates an empty tree with an arena-backed node pool.
    pub fn new_arena() -> Self {
        Self::from_pool(NodePool::arena())
    }

    fn from_pool(pool: Arc<NodePool<Node>>) -> Self {
        let l = pool.alloc_init(|| Node::leaf(SENTINEL_KEY, 0));
        let r = pool.alloc_init(|| Node::leaf(SENTINEL_KEY, 0));
        Self {
            lock: L::default(),
            root: pool.alloc_init(|| Node::router(SENTINEL_KEY, l, r)),
            pool,
        }
    }

    /// Number of elements (O(n); exact only in quiescence). Inherent so
    /// callers with both [`ConcurrentSet`] and [`ConcurrentMap`] in scope
    /// need no disambiguation.
    pub fn len(&self) -> usize {
        ConcurrentSet::len(self)
    }

    /// Whether the tree is empty (see [`OptikGlBst::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finds `(gparent, parent, leaf)` for `key`.
    ///
    /// # Safety
    ///
    /// Caller must be inside a QSBR grace period.
    #[inline]
    unsafe fn locate(&self, key: Key) -> (*mut Node, *mut Node, *mut Node) {
        // SAFETY: per contract.
        unsafe {
            let mut gp = self.root;
            let mut p = gp;
            let mut cur = (*p).child_for(key).load(Ordering::Acquire);
            while !(*cur).leaf {
                gp = p;
                p = cur;
                cur = (*p).child_for(key).load(Ordering::Acquire);
            }
            (gp, p, cur)
        }
    }
}

impl<L: OptikLock> Default for OptikGlBst<L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L: OptikLock> ConcurrentSet for OptikGlBst<L> {
    fn search(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        // SAFETY: grace period; oblivious sequential descent.
        unsafe {
            let mut cur = self.root;
            while !(*cur).leaf {
                cur = (*cur).child_for(key).load(Ordering::Acquire);
            }
            ((*cur).key == key).then(|| (*cur).val.load(Ordering::Acquire))
        }
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        assert_user_key(key);
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        loop {
            let vn = self.lock.get_version();
            // SAFETY: grace period per attempt.
            unsafe {
                let (_, p, l) = self.locate(key);
                if (*l).key == key {
                    // Infeasible: return false without ever locking.
                    return false;
                }
                if !self.lock.try_lock_version(vn) {
                    bo.backoff();
                    continue;
                }
                // Validated: no update committed since `vn`, so the
                // traversal results are still exact.
                let new_leaf = self.pool.alloc_init(|| Node::leaf(key, val));
                let router = if key < (*l).key {
                    self.pool.alloc_init(|| Node::router((*l).key, new_leaf, l))
                } else {
                    self.pool.alloc_init(|| Node::router(key, l, new_leaf))
                };
                (*p).child_for(key).store(router, Ordering::Release);
                self.lock.unlock();
                return true;
            }
        }
    }

    fn delete(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        loop {
            let vn = self.lock.get_version();
            // SAFETY: grace period per attempt.
            unsafe {
                let (gp, p, l) = self.locate(key);
                if (*l).key != key {
                    // Infeasible: return without ever locking.
                    return None;
                }
                if !self.lock.try_lock_version(vn) {
                    bo.backoff();
                    continue;
                }
                let sibling = (*p).sibling_for(key).load(Ordering::Relaxed);
                (*gp).child_for(key).store(sibling, Ordering::Release);
                self.lock.unlock();
                let val = (*l).val.load(Ordering::Relaxed);
                // SAFETY: unlinked under the validated lock.
                reclaim::with_local(|h| {
                    self.pool.retire(p, h);
                    self.pool.retire(l, h);
                });
                return Some(val);
            }
        }
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        // SAFETY: grace period; exact only in quiescence.
        unsafe {
            let mut n = 0;
            let mut stack = vec![self.root];
            while let Some(node) = stack.pop() {
                if (*node).leaf {
                    if (*node).key != SENTINEL_KEY {
                        n += 1;
                    }
                } else {
                    stack.push((*node).left.load(Ordering::Acquire));
                    stack.push((*node).right.load(Ordering::Acquire));
                }
            }
            n
        }
    }
}

impl<L: OptikLock> ConcurrentMap for OptikGlBst<L> {
    fn get(&self, key: Key) -> Option<Val> {
        ConcurrentSet::search(self, key)
    }

    /// In-place upsert: a present key's leaf value is swapped after a
    /// successful `try_lock_version` against the version read before the
    /// traversal — the validation proves the leaf is still the key's
    /// current binding. The release is a `revert`: a value swap changes no
    /// structure, so concurrent optimistic updates need not re-traverse.
    fn put(&self, key: Key, val: Val) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        loop {
            let vn = self.lock.get_version();
            // SAFETY: grace period per attempt.
            unsafe {
                let (_, p, l) = self.locate(key);
                if (*l).key == key {
                    if !self.lock.try_lock_version(vn) {
                        bo.backoff();
                        continue;
                    }
                    let prev = (*l).val.swap(val, Ordering::AcqRel);
                    self.lock.revert();
                    return Some(prev);
                }
                if !self.lock.try_lock_version(vn) {
                    bo.backoff();
                    continue;
                }
                let new_leaf = self.pool.alloc_init(|| Node::leaf(key, val));
                let router = if key < (*l).key {
                    self.pool.alloc_init(|| Node::router((*l).key, new_leaf, l))
                } else {
                    self.pool.alloc_init(|| Node::router(key, l, new_leaf))
                };
                (*p).child_for(key).store(router, Ordering::Release);
                self.lock.unlock();
                return None;
            }
        }
    }

    fn remove(&self, key: Key) -> Option<Val> {
        ConcurrentSet::delete(self, key)
    }

    fn len(&self) -> usize {
        ConcurrentSet::len(self)
    }

    fn for_each(&self, f: &mut dyn FnMut(Key, Val)) {
        self.range(1, SENTINEL_KEY - 1, f);
    }
}

impl<L: OptikLock> OrderedMap for OptikGlBst<L> {
    /// Whole-range OPTIK read: collect the pruned in-order window under a
    /// version read, validate, emit — the same collect-and-validate shape
    /// as the kv store's shard snapshots. After
    /// `RANGE_OPTIMISTIC_ATTEMPTS` failed rounds the pass runs under the
    /// global lock (released with `revert`: read-only critical section).
    fn range(&self, lo: Key, hi: Key, f: &mut dyn FnMut(Key, Val)) {
        let hi = hi.min(SENTINEL_KEY - 1);
        let lo = lo.max(1);
        if lo > hi {
            return;
        }
        reclaim::quiescent();
        let mut buf: Vec<(Key, Val)> = Vec::new();
        let mut bo = Backoff::adaptive();
        for attempt in 0..=RANGE_OPTIMISTIC_ATTEMPTS {
            buf.clear();
            let locked = attempt == RANGE_OPTIMISTIC_ATTEMPTS;
            let vn = if locked {
                self.lock.lock()
            } else {
                self.lock.get_version_wait()
            };
            // SAFETY: grace period (held since entry; collection only).
            unsafe { self.collect_range(lo, hi, &mut buf) };
            let ok = if locked {
                self.lock.revert(); // read-only critical section
                true
            } else {
                self.lock.validate(vn)
            };
            if ok {
                for &(k, v) in &buf {
                    f(k, v);
                }
                return;
            }
            bo.backoff();
        }
    }
}

impl<L: OptikLock> OptikGlBst<L> {
    /// Pruned in-order collection of `[lo, hi]` into `buf`.
    ///
    /// # Safety
    ///
    /// QSBR grace period required.
    unsafe fn collect_range(&self, lo: Key, hi: Key, buf: &mut Vec<(Key, Val)>) {
        // SAFETY: per contract.
        unsafe {
            let mut stack = vec![self.root];
            while let Some(node) = stack.pop() {
                if (*node).leaf {
                    let k = (*node).key;
                    if k != SENTINEL_KEY && (lo..=hi).contains(&k) {
                        buf.push((k, (*node).val.load(Ordering::Acquire)));
                    }
                    continue;
                }
                // In-order via LIFO: push right first, then left, pruning
                // subtrees the window cannot reach (`key < node.key` goes
                // left).
                if hi >= (*node).key {
                    stack.push((*node).right.load(Ordering::Acquire));
                }
                if lo < (*node).key {
                    stack.push((*node).left.load(Ordering::Acquire));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optik::OptikTicket;
    use std::sync::Arc;

    #[test]
    fn infeasible_updates_never_bump_the_version() {
        let t: OptikGlBst = OptikGlBst::new();
        assert!(t.insert(5, 50));
        let v0 = t.lock.get_version();
        assert!(!t.insert(5, 99), "duplicate insert is infeasible");
        assert_eq!(t.delete(7), None, "missing delete is infeasible");
        assert_eq!(t.search(5), Some(50));
        assert_eq!(
            t.lock.get_version(),
            v0,
            "infeasible operations must not synchronize"
        );
    }

    #[test]
    fn works_over_ticket_locks_too() {
        let t: OptikGlBst<OptikTicket> = OptikGlBst::new();
        for k in 1..=50u64 {
            assert!(t.insert(k, k));
        }
        for k in 1..=50u64 {
            assert_eq!(t.delete(k), Some(k));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn concurrent_churn_preserves_stable_keys() {
        let t = Arc::new(OptikGlBst::<OptikVersioned>::new());
        for k in 500..600u64 {
            assert!(t.insert(k, k));
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let hs: Vec<_> = (0..4u64)
            .map(|i| {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut x = 0xA076_1D64_78BD_642Fu64.wrapping_mul(i + 1);
                    while !stop.load(Ordering::Relaxed) {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = 1 + (x % 400);
                        if x & 1 == 0 {
                            t.insert(k, k);
                        } else {
                            t.delete(k);
                        }
                    }
                    reclaim::offline();
                })
            })
            .collect();
        for _ in 0..1_000 {
            for k in 500..600u64 {
                assert_eq!(t.search(k), Some(k));
            }
            reclaim::quiescent();
        }
        stop.store(true, Ordering::Relaxed);
        for h in hs {
            h.join().unwrap();
        }
        reclaim::online();
    }
}
