//! The fine-grained OPTIK external BST (*optik-tk*), in the BST-TK style.
//!
//! The paper's related work notes that "the BST-TK binary search tree,
//! part of the ASCY work, detects concurrency with version numbers (as
//! OPTIK does)". This module rebuilds that design directly on the
//! workspace's OPTIK locks, so the tree is an instance of the OPTIK
//! pattern rather than an ad-hoc scheme:
//!
//! - every **router** (internal node) carries an OPTIK lock whose version
//!   covers the router's two child pointers;
//! - traversals perform hand-over-hand version tracking exactly like the
//!   fine-grained list (Fig. 8): a router's version is read *on arrival*,
//!   before its child pointer is followed;
//! - an **insert** lock-and-validates only the parent router (single
//!   `try_lock_version` CAS), then swings one child pointer to a new
//!   router over {old leaf, new leaf};
//! - a **delete** lock-and-validates the grandparent and the parent, then
//!   splices the sibling subtree into the grandparent; the spliced-out
//!   parent's OPTIK lock is **never released** (the list's "no deleted
//!   flag" trick), so any stale validation against it fails forever;
//! - searches are completely oblivious to concurrency.
//!
//! Leaves are immutable after publication and are never locked. The
//! linearization points of updates are the child-pointer stores, as in
//! the paper's lists.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use optik::{OptikLock, OptikVersioned, Version};
use reclaim::NodePool;
use synchro::Backoff;

use crate::{
    assert_user_key, ConcurrentMap, ConcurrentSet, Key, OrderedMap, Val, RANGE_OPTIMISTIC_ATTEMPTS,
    SENTINEL_KEY,
};

pub(crate) struct Node {
    /// Router key (`key < k` routes left) or element key for leaves.
    key: Key,
    /// Element value, updated in place by `ConcurrentMap::put` under the
    /// parent router's validated lock; 0 and never read for routers.
    val: AtomicU64,
    /// Leaves route nothing and are never locked.
    leaf: bool,
    /// Covers `left` and `right`; unused (but present) on leaves.
    lock: OptikVersioned,
    left: AtomicPtr<Node>,
    right: AtomicPtr<Node>,
}

impl Node {
    fn leaf(key: Key, val: Val) -> Self {
        Node {
            key,
            val: AtomicU64::new(val),
            leaf: true,
            lock: OptikVersioned::new(),
            left: AtomicPtr::new(std::ptr::null_mut()),
            right: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    fn router(key: Key, left: *mut Node, right: *mut Node) -> Self {
        Node {
            key,
            val: AtomicU64::new(0),
            leaf: false,
            lock: OptikVersioned::new(),
            left: AtomicPtr::new(left),
            right: AtomicPtr::new(right),
        }
    }

    /// The child slot `key` routes to.
    #[inline]
    fn child_for(&self, key: Key) -> &AtomicPtr<Node> {
        if key < self.key {
            &self.left
        } else {
            &self.right
        }
    }

    /// The *other* child slot (the sibling side for `key`).
    #[inline]
    fn sibling_for(&self, key: Key) -> &AtomicPtr<Node> {
        if key < self.key {
            &self.right
        } else {
            &self.left
        }
    }
}

/// The fine-grained OPTIK external BST (*optik-tk*).
///
/// ```
/// use optik_bsts::{ConcurrentSet, OptikBst};
///
/// let tree = OptikBst::new();
/// assert!(tree.insert(42, 420));
/// assert!(!tree.insert(42, 999)); // duplicate: fails without overwriting
/// assert_eq!(tree.search(42), Some(420));
/// assert_eq!(tree.delete(42), Some(420));
/// assert!(tree.is_empty());
/// ```
pub struct OptikBst {
    /// Sentinel router with key `u64::MAX`; all user keys route left.
    /// Never locked-for-deletion, never spliced out.
    root: *mut Node,
    /// Type-stable node pool. Hand-over-hand version tracking never spans
    /// operations (versions are read on arrival within the op), so slots
    /// recycled after a grace period are plainly re-initialized — including
    /// the never-released lock of a spliced-out router, which by then no
    /// running operation can still validate against.
    pool: Arc<NodePool<Node>>,
}

// SAFETY: all shared mutation goes through per-router OPTIK locks and
// atomic child pointers; reclamation is QSBR.
unsafe impl Send for OptikBst {}
unsafe impl Sync for OptikBst {}

impl OptikBst {
    /// Creates an empty tree (sentinel root router over two sentinel
    /// leaves).
    pub fn new() -> Self {
        Self::from_pool(NodePool::new())
    }

    /// Creates an empty tree with an arena-backed node pool.
    pub fn new_arena() -> Self {
        Self::from_pool(NodePool::arena())
    }

    fn from_pool(pool: Arc<NodePool<Node>>) -> Self {
        let l = pool.alloc_init(|| Node::leaf(SENTINEL_KEY, 0));
        let r = pool.alloc_init(|| Node::leaf(SENTINEL_KEY, 0));
        let root = pool.alloc_init(|| Node::router(SENTINEL_KEY, l, r));
        Self { root, pool }
    }

    /// Number of elements (O(n); exact only in quiescence). Inherent so
    /// callers with both [`ConcurrentSet`] and [`ConcurrentMap`] in scope
    /// need no disambiguation.
    pub fn len(&self) -> usize {
        ConcurrentSet::len(self)
    }

    /// Whether the tree is empty (see [`OptikBst::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Traversal with hand-over-hand version tracking. Returns
    /// `(gparent, gparentv, parent, parentv, leaf)`; `gparent` is the root
    /// when the parent router hangs directly under it.
    ///
    /// Every version is read *on arrival* at the router — before the child
    /// pointer is followed — so a later `try_lock_version` validates that
    /// the router's children did not change since we routed through it.
    ///
    /// # Safety
    ///
    /// Caller must be inside a QSBR grace period.
    #[inline]
    unsafe fn locate(&self, key: Key) -> (*mut Node, Version, *mut Node, Version, *mut Node) {
        // SAFETY: nodes reachable during this grace period stay allocated.
        unsafe {
            let mut gp = self.root;
            let mut gpv = (*gp).lock.get_version();
            let mut p = gp;
            let mut pv = gpv;
            let mut cur = (*p).child_for(key).load(Ordering::Acquire);
            while !(*cur).leaf {
                gp = p;
                gpv = pv;
                p = cur;
                pv = (*p).lock.get_version();
                cur = (*p).child_for(key).load(Ordering::Acquire);
            }
            (gp, gpv, p, pv, cur)
        }
    }
}

impl Default for OptikBst {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentSet for OptikBst {
    fn search(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        // SAFETY: grace period; oblivious sequential descent.
        unsafe {
            let mut cur = self.root;
            while !(*cur).leaf {
                cur = (*cur).child_for(key).load(Ordering::Acquire);
            }
            ((*cur).key == key).then(|| (*cur).val.load(Ordering::Acquire))
        }
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        assert_user_key(key);
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        // Pre-allocate nothing: the new router's key depends on the leaf
        // found, so nodes are built inside the attempt.
        loop {
            // SAFETY: grace period per attempt.
            unsafe {
                let (_, _, p, pv, l) = self.locate(key);
                if (*l).key == key {
                    return false;
                }
                // Lock-and-validate the parent: one CAS. A success means
                // p's children are exactly as traversed, so `l` is still
                // p's child on our side.
                if !(*p).lock.try_lock_version(pv) {
                    bo.backoff();
                    continue;
                }
                let new_leaf = self.pool.alloc_init(|| Node::leaf(key, val));
                // Router key is the larger of {key, l.key}: the smaller
                // routes left.
                let router = if key < (*l).key {
                    self.pool.alloc_init(|| Node::router((*l).key, new_leaf, l))
                } else {
                    self.pool.alloc_init(|| Node::router(key, l, new_leaf))
                };
                // Linearization point.
                (*p).child_for(key).store(router, Ordering::Release);
                (*p).lock.unlock();
                return true;
            }
        }
    }

    fn delete(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        loop {
            // SAFETY: grace period per attempt.
            unsafe {
                let (gp, gpv, p, pv, l) = self.locate(key);
                if (*l).key != key {
                    return None;
                }
                // Nested lock-and-validate: grandparent first, then
                // parent; on a late failure revert the earlier lock (the
                // paper's lock-nesting rule, §3.3).
                if !(*gp).lock.try_lock_version(gpv) {
                    bo.backoff();
                    continue;
                }
                if !(*p).lock.try_lock_version(pv) {
                    (*gp).lock.revert();
                    bo.backoff();
                    continue;
                }
                // Both validated: gp's child on our side is still p, and
                // p's children are still {l, sibling}. Splice the sibling
                // into gp (linearization point).
                let sibling = (*p).sibling_for(key).load(Ordering::Relaxed);
                (*gp).child_for(key).store(sibling, Ordering::Release);
                (*gp).lock.unlock();
                // p's OPTIK lock is never released: stale operations that
                // tracked p as parent or grandparent can never validate
                // against it again. The leaf was never locked; it is
                // unreachable once p is spliced out. Reading the value
                // *after* claiming p also serializes against the in-place
                // swaps of `ConcurrentMap::put`, which validate p's lock.
                let val = (*l).val.load(Ordering::Relaxed);
                // SAFETY: both unlinked; sole deleter retires.
                reclaim::with_local(|h| {
                    self.pool.retire(p, h);
                    self.pool.retire(l, h);
                });
                return Some(val);
            }
        }
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        // Iterative in-order walk counting non-sentinel leaves.
        // SAFETY: grace period; exact only in quiescence.
        unsafe {
            let mut n = 0;
            let mut stack = vec![self.root];
            while let Some(node) = stack.pop() {
                if (*node).leaf {
                    if (*node).key != SENTINEL_KEY {
                        n += 1;
                    }
                } else {
                    stack.push((*node).left.load(Ordering::Acquire));
                    stack.push((*node).right.load(Ordering::Acquire));
                }
            }
            n
        }
    }
}

impl ConcurrentMap for OptikBst {
    fn get(&self, key: Key) -> Option<Val> {
        ConcurrentSet::search(self, key)
    }

    /// In-place upsert: the parent router's lock (one `try_lock_version`,
    /// exactly the insert path's cost) guards the leaf's value swap — a
    /// deleter must claim the same router before it can splice the leaf
    /// out and read its value, so updates and removals serialize. The
    /// release is a `revert`: no child pointer changed.
    fn put(&self, key: Key, val: Val) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        loop {
            // SAFETY: grace period per attempt.
            unsafe {
                let (_, _, p, pv, l) = self.locate(key);
                if (*l).key == key {
                    if !(*p).lock.try_lock_version(pv) {
                        bo.backoff();
                        continue;
                    }
                    // Validated: l is still p's child, hence still the
                    // key's current binding; the deleter cannot intervene
                    // while we hold p.
                    let prev = (*l).val.swap(val, Ordering::AcqRel);
                    (*p).lock.revert();
                    return Some(prev);
                }
                if !(*p).lock.try_lock_version(pv) {
                    bo.backoff();
                    continue;
                }
                let new_leaf = self.pool.alloc_init(|| Node::leaf(key, val));
                let router = if key < (*l).key {
                    self.pool.alloc_init(|| Node::router((*l).key, new_leaf, l))
                } else {
                    self.pool.alloc_init(|| Node::router(key, l, new_leaf))
                };
                (*p).child_for(key).store(router, Ordering::Release);
                (*p).lock.unlock();
                return None;
            }
        }
    }

    fn remove(&self, key: Key) -> Option<Val> {
        ConcurrentSet::delete(self, key)
    }

    fn len(&self) -> usize {
        ConcurrentSet::len(self)
    }

    fn for_each(&self, f: &mut dyn FnMut(Key, Val)) {
        self.range(1, SENTINEL_KEY - 1, f);
    }
}

impl OrderedMap for OptikBst {
    /// Pruned in-order walk with per-router OPTIK validation: a router's
    /// version is read on arrival, its children after, and the version is
    /// validated before either child is descended — the traversal analogue
    /// of the tree's hand-over-hand version tracking. Interference
    /// restarts from the root, re-pruned to just past the last emitted key
    /// (sorted, duplicate-free output). After
    /// `RANGE_OPTIMISTIC_ATTEMPTS` restarts the pass downgrades to an
    /// oblivious walk: spliced-out routers keep their locks forever, so a
    /// blocking lock fallback could hang, while the oblivious walk is
    /// still quiescence-consistent — every pointer is read during the
    /// call, and a spliced router's children are frozen at splice time, so
    /// every reached leaf was present at some instant of the call. Exact
    /// under a writer-excluding lock (the kv store's shard fallback).
    fn range(&self, lo: Key, hi: Key, f: &mut dyn FnMut(Key, Val)) {
        let hi = hi.min(SENTINEL_KEY - 1);
        let mut from = lo.max(1);
        if from > hi {
            return;
        }
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        'restart: for attempt in 0..=RANGE_OPTIMISTIC_ATTEMPTS {
            let validate = attempt < RANGE_OPTIMISTIC_ATTEMPTS;
            // SAFETY: grace period; pointer reads only.
            unsafe {
                let mut stack: Vec<*mut Node> = vec![self.root];
                while let Some(node) = stack.pop() {
                    if (*node).leaf {
                        let k = (*node).key;
                        if k != SENTINEL_KEY && k >= from && k <= hi {
                            f(k, (*node).val.load(Ordering::Acquire));
                            from = k + 1;
                        }
                        continue;
                    }
                    let rv = (*node).lock.get_version();
                    let left = (*node).left.load(Ordering::Acquire);
                    let right = (*node).right.load(Ordering::Acquire);
                    if validate && !(*node).lock.validate(rv) {
                        bo.backoff();
                        continue 'restart;
                    }
                    if hi >= (*node).key {
                        stack.push(right);
                    }
                    if from < (*node).key {
                        stack.push(left);
                    }
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_tree_has_only_sentinels() {
        let t = OptikBst::new();
        assert!(t.is_empty());
        assert_eq!(t.search(1), None);
        assert_eq!(t.delete(1), None);
    }

    #[test]
    fn router_keys_route_correctly() {
        let t = OptikBst::new();
        // Insert a chain that forces both router-key arms.
        assert!(t.insert(50, 1)); // new leaf right of sentinel? key<MAX → router key MAX
        assert!(t.insert(25, 2)); // 25 < 50: router key 50, 25 left
        assert!(t.insert(75, 3)); // 75 > 50: router key 75, 50 left, 75 right
        for (k, v) in [(50, 1), (25, 2), (75, 3)] {
            assert_eq!(t.search(k), Some(v));
        }
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn delete_leaf_under_root_router() {
        let t = OptikBst::new();
        assert!(t.insert(10, 1));
        assert_eq!(t.delete(10), Some(1));
        assert!(t.is_empty());
        // The sentinel structure must be intact for reuse.
        assert!(t.insert(11, 2));
        assert_eq!(t.search(11), Some(2));
    }

    #[test]
    fn interleaved_insert_delete_keeps_reachability() {
        let t = OptikBst::new();
        for k in 1..=200u64 {
            assert!(t.insert(k, k));
            if k % 3 == 0 {
                assert_eq!(t.delete(k / 3), Some(k / 3));
            }
        }
        for k in 1..=66u64 {
            assert_eq!(t.search(k), None, "deleted key {k}");
        }
        for k in 67..=200u64 {
            assert_eq!(t.search(k), Some(k), "live key {k}");
        }
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let t = Arc::new(OptikBst::new());
        let threads = 8;
        let per = 500u64;
        let hs: Vec<_> = (0..threads)
            .map(|i| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for j in 0..per {
                        assert!(t.insert(1 + i * per + j, j));
                    }
                    reclaim::offline();
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        reclaim::online();
        assert_eq!(t.len() as u64, threads * per);
    }

    #[test]
    fn concurrent_same_key_insert_exactly_one_wins() {
        for _ in 0..50 {
            let t = Arc::new(OptikBst::new());
            let hs: Vec<_> = (0..4)
                .map(|i| {
                    let t = Arc::clone(&t);
                    std::thread::spawn(move || {
                        let won = t.insert(42, i);
                        reclaim::offline();
                        won
                    })
                })
                .collect();
            let wins = hs
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|&w| w)
                .count();
            reclaim::online();
            assert_eq!(wins, 1);
            assert_eq!(t.len(), 1);
        }
    }

    #[test]
    fn concurrent_same_key_delete_exactly_one_wins() {
        for _ in 0..50 {
            let t = Arc::new(OptikBst::new());
            assert!(t.insert(42, 420));
            let hs: Vec<_> = (0..4)
                .map(|_| {
                    let t = Arc::clone(&t);
                    std::thread::spawn(move || {
                        let won = t.delete(42);
                        reclaim::offline();
                        won
                    })
                })
                .collect();
            let wins = hs
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|&w| w == Some(420))
                .count();
            reclaim::online();
            assert_eq!(wins, 1);
            assert!(t.is_empty());
        }
    }

    #[test]
    fn contended_mixed_churn_stays_consistent() {
        let t = Arc::new(OptikBst::new());
        // Stable keys must never disappear while churn keys flap.
        for k in (1000..1100u64).step_by(2) {
            assert!(t.insert(k, k));
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let churners: Vec<_> = (0..6u64)
            .map(|i| {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut x = 0x9E3779B97F4A7C15u64.wrapping_mul(i + 1);
                    while !stop.load(Ordering::Relaxed) {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = 1 + (x % 500);
                        if x & 1 == 0 {
                            t.insert(k, k);
                        } else {
                            t.delete(k);
                        }
                    }
                    reclaim::offline();
                })
            })
            .collect();
        for _ in 0..2_000 {
            for k in (1000..1100u64).step_by(2) {
                assert_eq!(t.search(k), Some(k), "stable key {k} vanished");
            }
            reclaim::quiescent();
        }
        stop.store(true, Ordering::Relaxed);
        for h in churners {
            h.join().unwrap();
        }
        reclaim::online();
        for k in (1000..1100u64).step_by(2) {
            assert_eq!(t.delete(k), Some(k));
        }
    }
}
