//! Global-lock external BST with non-synchronized searches (*mcs-gl*).
//!
//! The tree analogue of the list crate's *mcs-gl-opt*: updates serialize
//! behind one MCS lock, searches traverse lock-free and rely on QSBR. The
//! linearization points of updates are the child-pointer stores.

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

use reclaim::NodePool;
use synchro::McsLock;

use crate::{assert_user_key, ConcurrentSet, Key, Val, SENTINEL_KEY};

struct Node {
    key: Key,
    val: Val,
    leaf: bool,
    left: AtomicPtr<Node>,
    right: AtomicPtr<Node>,
}

impl Node {
    fn leaf(key: Key, val: Val) -> Self {
        Node {
            key,
            val,
            leaf: true,
            left: AtomicPtr::new(std::ptr::null_mut()),
            right: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    fn router(key: Key, left: *mut Node, right: *mut Node) -> Self {
        Node {
            key,
            val: 0,
            leaf: false,
            left: AtomicPtr::new(left),
            right: AtomicPtr::new(right),
        }
    }

    #[inline]
    fn child_for(&self, key: Key) -> &AtomicPtr<Node> {
        if key < self.key {
            &self.left
        } else {
            &self.right
        }
    }

    #[inline]
    fn sibling_for(&self, key: Key) -> &AtomicPtr<Node> {
        if key < self.key {
            &self.right
        } else {
            &self.left
        }
    }
}

/// The MCS global-lock external BST with lock-free searches (*mcs-gl*).
///
/// Nodes come from a type-stable [`NodePool`]; no pointer survives across
/// operations, so recycled slots are plainly re-initialized after their
/// grace period.
pub struct GlobalLockBst {
    lock: McsLock,
    root: *mut Node,
    pool: Arc<NodePool<Node>>,
}

// SAFETY: updates are serialized by the MCS lock; searches only read
// QSBR-protected nodes through atomic child pointers.
unsafe impl Send for GlobalLockBst {}
unsafe impl Sync for GlobalLockBst {}

impl GlobalLockBst {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::from_pool(NodePool::new())
    }

    /// Creates an empty tree with an arena-backed node pool.
    pub fn new_arena() -> Self {
        Self::from_pool(NodePool::arena())
    }

    fn from_pool(pool: Arc<NodePool<Node>>) -> Self {
        let l = pool.alloc_init(|| Node::leaf(SENTINEL_KEY, 0));
        let r = pool.alloc_init(|| Node::leaf(SENTINEL_KEY, 0));
        Self {
            lock: McsLock::new(),
            root: pool.alloc_init(|| Node::router(SENTINEL_KEY, l, r)),
            pool,
        }
    }

    /// Finds `(gparent, parent, leaf)` for `key`.
    ///
    /// # Safety
    ///
    /// Caller must be inside a QSBR grace period.
    #[inline]
    unsafe fn locate(&self, key: Key) -> (*mut Node, *mut Node, *mut Node) {
        // SAFETY: per contract.
        unsafe {
            let mut gp = self.root;
            let mut p = gp;
            let mut cur = (*p).child_for(key).load(Ordering::Acquire);
            while !(*cur).leaf {
                gp = p;
                p = cur;
                cur = (*p).child_for(key).load(Ordering::Acquire);
            }
            (gp, p, cur)
        }
    }
}

impl Default for GlobalLockBst {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentSet for GlobalLockBst {
    fn search(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        // SAFETY: grace period; oblivious sequential descent.
        unsafe {
            let mut cur = self.root;
            while !(*cur).leaf {
                cur = (*cur).child_for(key).load(Ordering::Acquire);
            }
            ((*cur).key == key).then(|| (*cur).val)
        }
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        assert_user_key(key);
        reclaim::quiescent();
        self.lock.with(|| {
            // SAFETY: grace period; updates serialized by the lock.
            unsafe {
                let (_, p, l) = self.locate(key);
                if (*l).key == key {
                    return false;
                }
                let new_leaf = self.pool.alloc_init(|| Node::leaf(key, val));
                let router = if key < (*l).key {
                    self.pool.alloc_init(|| Node::router((*l).key, new_leaf, l))
                } else {
                    self.pool.alloc_init(|| Node::router(key, l, new_leaf))
                };
                (*p).child_for(key).store(router, Ordering::Release);
                true
            }
        })
    }

    fn delete(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        self.lock.with(|| {
            // SAFETY: grace period; updates serialized by the lock.
            unsafe {
                let (gp, p, l) = self.locate(key);
                if (*l).key != key {
                    return None;
                }
                let sibling = (*p).sibling_for(key).load(Ordering::Relaxed);
                (*gp).child_for(key).store(sibling, Ordering::Release);
                let val = (*l).val;
                // SAFETY: unlinked under the lock; searches may still hold
                // references, hence QSBR retire.
                reclaim::with_local(|h| {
                    self.pool.retire(p, h);
                    self.pool.retire(l, h);
                });
                Some(val)
            }
        })
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        // SAFETY: grace period; exact only in quiescence.
        unsafe {
            let mut n = 0;
            let mut stack = vec![self.root];
            while let Some(node) = stack.pop() {
                if (*node).leaf {
                    if (*node).key != SENTINEL_KEY {
                        n += 1;
                    }
                } else {
                    stack.push((*node).left.load(Ordering::Acquire));
                    stack.push((*node).right.load(Ordering::Acquire));
                }
            }
            n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn updates_serialize_searches_do_not_block() {
        let t = Arc::new(GlobalLockBst::new());
        for k in 1..=100u64 {
            assert!(t.insert(k, k * 2));
        }
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for k in 1..=100u64 {
                        assert_eq!(t.search(k), Some(k * 2));
                    }
                    reclaim::offline();
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        reclaim::online();
    }

    #[test]
    fn concurrent_updates_preserve_net_count() {
        let t = Arc::new(GlobalLockBst::new());
        let hs: Vec<_> = (0..4u64)
            .map(|i| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for j in 0..250u64 {
                        let k = 1 + i * 250 + j;
                        assert!(t.insert(k, k));
                        if j % 2 == 0 {
                            assert_eq!(t.delete(k), Some(k));
                        }
                    }
                    reclaim::offline();
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        reclaim::online();
        assert_eq!(t.len(), 4 * 125);
    }
}
