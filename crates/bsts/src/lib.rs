//! Concurrent external binary search trees built with the OPTIK pattern.
//!
//! This crate is the workspace's *extension* beyond the paper's figures.
//! The paper's related-work section singles out BST-TK (David, Guerraoui
//! and Trigonakis, ASPLOS '15) as a tree that "detects concurrency with
//! version numbers (as OPTIK does)" — i.e. the OPTIK pattern applied to a
//! binary search tree. We build that tree on top of the workspace's OPTIK
//! locks, together with the same baseline ladder the list crate uses:
//!
//! | name        | type              | design |
//! |-------------|-------------------|--------|
//! | `seq`       | [`SeqBst`]        | single-threaded oracle |
//! | `mcs-gl`    | [`GlobalLockBst`] | global MCS lock, non-synchronized searches |
//! | `optik-gl`  | [`OptikGlBst`]    | one global OPTIK lock: infeasible updates never lock |
//! | `optik-tk`  | [`OptikBst`]      | per-node OPTIK locks, BST-TK style |
//!
//! All trees are **external** (leaf-oriented): internal nodes are pure
//! routers, every key-value pair lives in a leaf. Routing follows
//! `key < node.key → left`, otherwise right. External trees keep deletions
//! local — a delete splices out one router and one leaf, never relocates
//! another element's node — which is exactly the property that lets a
//! version number on the parent router stand in for the ad-hoc validation
//! of internal-tree designs.
//!
//! Keys/values and reclamation follow the workspace conventions: `u64 →
//! u64` with `u64::MAX` reserved for the sentinel leaves, QSBR grace
//! periods announced at operation entry.

#![warn(missing_docs)]

mod global_lock;
mod optik_gl;
mod optik_tk;
mod seq;

pub use global_lock::GlobalLockBst;
pub use optik_gl::OptikGlBst;
pub use optik_tk::OptikBst;
pub use seq::SeqBst;

pub use optik_harness::api::{ConcurrentMap, ConcurrentSet, Key, OrderedMap, SetHandle, Val};

/// Sentinel key of the initial leaves and the root router; user keys must
/// be smaller.
pub const SENTINEL_KEY: Key = u64::MAX;

/// Consecutive optimistic attempts a range traversal makes before its
/// fallback (a locked pass for the global-lock tree, an oblivious pass for
/// the fine-grained tree — see each `OrderedMap` impl).
pub(crate) const RANGE_OPTIMISTIC_ATTEMPTS: usize = 8;

#[inline]
pub(crate) fn assert_user_key(key: Key) {
    debug_assert!(
        (1..SENTINEL_KEY).contains(&key),
        "user keys must be in (0, u64::MAX)"
    );
}

#[cfg(test)]
mod cross_tests {
    //! One behavioural suite run over every tree implementation.

    use super::*;
    use std::sync::Arc;

    pub(crate) fn implementations() -> Vec<(&'static str, Arc<dyn ConcurrentSet>)> {
        vec![
            ("seq", Arc::new(SeqBst::new())),
            ("mcs-gl", Arc::new(GlobalLockBst::new())),
            (
                "optik-gl",
                Arc::new(OptikGlBst::<optik::OptikVersioned>::new()),
            ),
            ("optik-tk", Arc::new(OptikBst::new())),
        ]
    }

    #[test]
    fn roundtrip_semantics() {
        for (name, t) in implementations() {
            assert!(t.is_empty(), "{name}");
            assert!(t.insert(10, 100), "{name}");
            assert!(t.insert(5, 50), "{name}");
            assert!(t.insert(20, 200), "{name}");
            assert!(!t.insert(10, 999), "{name}: duplicate");
            assert_eq!(t.search(10), Some(100), "{name}");
            assert_eq!(t.search(5), Some(50), "{name}");
            assert_eq!(t.search(15), None, "{name}");
            assert_eq!(t.len(), 3, "{name}");
            assert_eq!(t.delete(10), Some(100), "{name}");
            assert_eq!(t.delete(10), None, "{name}");
            assert_eq!(t.search(10), None, "{name}");
            assert_eq!(t.len(), 2, "{name}");
        }
    }

    #[test]
    fn ascending_descending_and_alternating_inserts() {
        for (name, t) in implementations() {
            for k in 1..=40u64 {
                assert!(t.insert(k, k * 10), "{name}");
            }
            for k in (41..=80u64).rev() {
                assert!(t.insert(k, k * 10), "{name}");
            }
            for i in 0..20u64 {
                let k = if i % 2 == 0 { 100 + i } else { 200 - i };
                assert!(t.insert(k, k * 10), "{name}");
            }
            assert_eq!(t.len(), 100, "{name}");
            for k in 1..=80u64 {
                assert_eq!(t.search(k), Some(k * 10), "{name} key {k}");
            }
            for k in 1..=80u64 {
                assert_eq!(t.delete(k), Some(k * 10), "{name} key {k}");
            }
            assert_eq!(t.len(), 20, "{name}");
        }
    }

    #[test]
    fn boundary_keys_accepted() {
        for (name, t) in implementations() {
            assert!(t.insert(1, 11), "{name}: smallest user key");
            assert!(t.insert(SENTINEL_KEY - 1, 22), "{name}: largest user key");
            assert_eq!(t.search(1), Some(11), "{name}");
            assert_eq!(t.search(SENTINEL_KEY - 1), Some(22), "{name}");
            assert_eq!(t.delete(1), Some(11), "{name}");
            assert_eq!(t.delete(SENTINEL_KEY - 1), Some(22), "{name}");
            assert!(t.is_empty(), "{name}");
        }
    }

    #[test]
    fn delete_root_region_repeatedly() {
        // Exercises the gp == root splice path: a single element's parent
        // router hangs directly under the root.
        for (name, t) in implementations() {
            for round in 0..50u64 {
                let k = round + 1;
                assert!(t.insert(k, k), "{name}");
                assert_eq!(t.delete(k), Some(k), "{name}");
                assert!(t.is_empty(), "{name} round {round}");
            }
        }
    }

    fn ordered_implementations() -> Vec<(&'static str, Arc<dyn OrderedMap>)> {
        vec![
            (
                "optik-gl",
                Arc::new(OptikGlBst::<optik::OptikVersioned>::new()),
            ),
            ("optik-tk", Arc::new(OptikBst::new())),
        ]
    }

    #[test]
    fn map_upsert_roundtrip() {
        for (name, m) in ordered_implementations() {
            assert_eq!(m.put(10, 100), None, "{name}");
            assert_eq!(m.put(10, 101), Some(100), "{name}: in-place update");
            assert_eq!(m.get(10), Some(101), "{name}");
            assert_eq!(m.put(5, 50), None, "{name}");
            assert_eq!(m.remove(10), Some(101), "{name}");
            assert_eq!(m.get(10), None, "{name}");
            assert_eq!(m.put(10, 102), None, "{name}: reinsert after remove");
            assert_eq!(ConcurrentMap::len(m.as_ref()), 2, "{name}");
        }
    }

    #[test]
    fn range_matches_btreemap_windows() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for (name, m) in ordered_implementations() {
            let mut rng = StdRng::seed_from_u64(0x7BEE);
            let mut model = std::collections::BTreeMap::new();
            for _ in 0..4_000 {
                let k = rng.gen_range(1..=128u64);
                if rng.gen_range(0..3) < 2 {
                    model.insert(k, k * 3);
                    m.put(k, k * 3);
                } else {
                    assert_eq!(m.remove(k), model.remove(&k), "{name} remove {k}");
                }
                if rng.gen_range(0..16) == 0 {
                    let lo = rng.gen_range(1..=128u64);
                    let hi = rng.gen_range(lo..=160u64);
                    let got = m.range_collect(lo, hi);
                    let want: Vec<(u64, u64)> =
                        model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                    assert_eq!(got, want, "{name} range [{lo}, {hi}]");
                }
            }
            let full = m.range_collect(1, u64::MAX - 1);
            let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            assert_eq!(full, want, "{name} full range");
        }
    }

    #[test]
    fn concurrent_ranges_stay_sorted_and_unique() {
        use std::sync::atomic::{AtomicBool, Ordering};
        for (name, m) in ordered_implementations() {
            for k in (10..=200u64).step_by(10) {
                m.put(k, k);
            }
            let stop = Arc::new(AtomicBool::new(false));
            let mut churners = Vec::new();
            for t in 0..3u64 {
                let m = Arc::clone(&m);
                let stop = Arc::clone(&stop);
                churners.push(std::thread::spawn(move || {
                    let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                    while !stop.load(Ordering::Relaxed) {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % 200 + 1;
                        if k % 10 == 0 {
                            continue; // never touch the backbone
                        }
                        if x & 1 == 0 {
                            m.put(k, k);
                        } else {
                            m.remove(k);
                        }
                    }
                    reclaim::offline();
                }));
            }
            for round in 0..synchro::stress::ops(300) {
                let lo = (round % 50) * 2 + 1;
                let got = m.range_collect(lo, 220);
                assert!(
                    got.windows(2).all(|w| w[0].0 < w[1].0),
                    "{name}: unsorted or duplicated keys in {got:?}"
                );
                for &(k, v) in &got {
                    assert_eq!(v, k, "{name}: foreign value");
                }
                for k in (10..=200u64).step_by(10).filter(|&k| k >= lo) {
                    assert!(
                        got.iter().any(|&(g, _)| g == k),
                        "{name}: scan missed stable key {k} (lo={lo})"
                    );
                }
                reclaim::quiescent();
            }
            stop.store(true, Ordering::Relaxed);
            for h in churners {
                h.join().unwrap();
            }
            reclaim::online();
        }
    }

    #[test]
    fn agrees_with_oracle_on_random_mix() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xB57);
        for (name, t) in implementations() {
            let mut oracle = std::collections::BTreeMap::new();
            for _ in 0..4_000 {
                let key = rng.gen_range(1..128u64);
                match rng.gen_range(0..3) {
                    0 => {
                        let val = rng.gen_range(0..1_000);
                        // Set semantics: a failed insert must not overwrite.
                        let expect = !oracle.contains_key(&key);
                        if expect {
                            oracle.insert(key, val);
                        }
                        assert_eq!(t.insert(key, val), expect, "{name} insert {key}");
                    }
                    1 => assert_eq!(t.delete(key), oracle.remove(&key), "{name} delete {key}"),
                    _ => assert_eq!(
                        t.search(key),
                        oracle.get(&key).copied(),
                        "{name} search {key}"
                    ),
                }
            }
            assert_eq!(t.len(), oracle.len(), "{name} final length");
        }
    }
}
