//! Sequential external BST: baseline and oracle.

use std::cell::UnsafeCell;

use crate::{assert_user_key, ConcurrentSet, Key, Val};

enum Tree {
    /// Pure router: `key < k` goes left, otherwise right.
    Router {
        k: Key,
        left: Box<Tree>,
        right: Box<Tree>,
    },
    /// Element leaf.
    Leaf { k: Key, v: Val },
    /// Empty tree (only ever the whole tree; subtrees are never empty).
    Empty,
}

/// A plain single-threaded external (leaf-oriented) BST.
///
/// Implements [`ConcurrentSet`] for interface uniformity, but concurrent
/// use must be externally serialized — it is the oracle the cross tests
/// compare the concurrent trees against, and the sequential structure the
/// OPTIK trees are derived from.
pub struct SeqBst {
    root: UnsafeCell<Tree>,
    len: UnsafeCell<usize>,
}

// SAFETY: users serialize access externally (struct contract).
unsafe impl Send for SeqBst {}
unsafe impl Sync for SeqBst {}

impl SeqBst {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self {
            root: UnsafeCell::new(Tree::Empty),
            len: UnsafeCell::new(0),
        }
    }

    #[allow(clippy::mut_from_ref)]
    fn root_mut(&self) -> &mut Tree {
        // SAFETY: externally serialized (struct contract).
        unsafe { &mut *self.root.get() }
    }
}

impl Default for SeqBst {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentSet for SeqBst {
    fn search(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        let mut cur = &*self.root_mut();
        loop {
            match cur {
                Tree::Router { k, left, right } => {
                    cur = if key < *k { left } else { right };
                }
                Tree::Leaf { k, v } => return (*k == key).then_some(*v),
                Tree::Empty => return None,
            }
        }
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        assert_user_key(key);
        let mut cur = self.root_mut();
        loop {
            match cur {
                Tree::Router { k, left, right } => {
                    cur = if key < *k { left } else { right };
                }
                Tree::Leaf { k, .. } => {
                    if *k == key {
                        return false;
                    }
                    // Replace this leaf with a router over {old leaf, new
                    // leaf}; router key is the larger of the two so the
                    // smaller routes left.
                    let old = std::mem::replace(cur, Tree::Empty);
                    let (ok, _) = match &old {
                        Tree::Leaf { k, v } => (*k, *v),
                        _ => unreachable!(),
                    };
                    let new = Tree::Leaf { k: key, v: val };
                    *cur = if key < ok {
                        Tree::Router {
                            k: ok,
                            left: Box::new(new),
                            right: Box::new(old),
                        }
                    } else {
                        Tree::Router {
                            k: key,
                            left: Box::new(old),
                            right: Box::new(new),
                        }
                    };
                    // SAFETY: serialized.
                    unsafe { *self.len.get() += 1 };
                    return true;
                }
                Tree::Empty => {
                    *cur = Tree::Leaf { k: key, v: val };
                    // SAFETY: serialized.
                    unsafe { *self.len.get() += 1 };
                    return true;
                }
            }
        }
    }

    fn delete(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        // Walk down holding the *parent* slot so the matched leaf's sibling
        // can be spliced into it (external-tree delete removes exactly one
        // router and one leaf).
        let root = self.root_mut();
        match root {
            Tree::Empty => return None,
            Tree::Leaf { k, v } => {
                if *k == key {
                    let v = *v;
                    *root = Tree::Empty;
                    // SAFETY: serialized.
                    unsafe { *self.len.get() -= 1 };
                    return Some(v);
                }
                return None;
            }
            Tree::Router { .. } => {}
        }
        let mut parent_slot: *mut Tree = root;
        loop {
            // Probe the child with a scoped borrow, then act on the slot.
            // SAFETY: serialized; parent_slot is a live subtree slot.
            let (go_left, probe) = match unsafe { &*parent_slot } {
                Tree::Router { k, left, right } => {
                    let go_left = key < *k;
                    let child = if go_left { &**left } else { &**right };
                    match child {
                        Tree::Router { .. } => (go_left, None),
                        Tree::Leaf { k, v } => (go_left, Some((*k == key).then_some(*v))),
                        Tree::Empty => unreachable!("subtrees are never empty"),
                    }
                }
                _ => unreachable!("walk only descends through routers"),
            };
            match probe {
                // Child is a router: descend into it.
                None => {
                    // SAFETY: serialized; re-borrow for the child slot.
                    parent_slot = match unsafe { &mut *parent_slot } {
                        Tree::Router { left, right, .. } => {
                            if go_left {
                                left.as_mut()
                            } else {
                                right.as_mut()
                            }
                        }
                        _ => unreachable!(),
                    };
                }
                // Child is a leaf with a different key: not present.
                Some(None) => return None,
                // Matched leaf: splice the sibling subtree into the parent
                // slot, dropping the router and the leaf.
                Some(Some(v)) => {
                    // SAFETY: serialized.
                    let parent = unsafe { &mut *parent_slot };
                    let old = std::mem::replace(parent, Tree::Empty);
                    let (left, right) = match old {
                        Tree::Router { left, right, .. } => (left, right),
                        _ => unreachable!(),
                    };
                    let sibling = if go_left { right } else { left };
                    *parent = *sibling;
                    // SAFETY: serialized.
                    unsafe { *self.len.get() -= 1 };
                    return Some(v);
                }
            }
        }
    }

    fn len(&self) -> usize {
        // SAFETY: serialized.
        unsafe { *self.len.get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_tree_behaviour() {
        let t = SeqBst::new();
        assert!(t.is_empty());
        assert_eq!(t.search(5), None);
        assert_eq!(t.delete(5), None);
    }

    #[test]
    fn single_leaf_root_is_deletable() {
        let t = SeqBst::new();
        assert!(t.insert(7, 70));
        assert_eq!(t.len(), 1);
        assert_eq!(t.delete(7), Some(70));
        assert!(t.is_empty());
        // reusable afterwards
        assert!(t.insert(7, 71));
        assert_eq!(t.search(7), Some(71));
    }

    #[test]
    fn deleting_router_child_promotes_sibling_subtree() {
        let t = SeqBst::new();
        for k in [50, 25, 75, 12, 37] {
            assert!(t.insert(k, k));
        }
        assert_eq!(t.delete(25), Some(25));
        for k in [50, 75, 12, 37] {
            assert_eq!(t.search(k), Some(k), "key {k} must survive");
        }
        assert_eq!(t.len(), 4);
    }

    proptest! {
        #[test]
        fn matches_btreemap_model(ops in proptest::collection::vec(
            (0u8..3, 1u64..64, 0u64..100), 1..200)) {
            let t = SeqBst::new();
            let mut model = std::collections::BTreeMap::new();
            for (op, key, val) in ops {
                match op {
                    0 => {
                        let expect = !model.contains_key(&key);
                        if expect { model.insert(key, val); }
                        prop_assert_eq!(t.insert(key, val), expect);
                    }
                    1 => prop_assert_eq!(t.delete(key), model.remove(&key)),
                    _ => prop_assert_eq!(t.search(key), model.get(&key).copied()),
                }
                prop_assert_eq!(t.len(), model.len());
            }
        }
    }
}
