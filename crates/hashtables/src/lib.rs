//! Hash tables (§5.2 of the OPTIK paper).
//!
//! Figure 10 compares six tables; all are implemented here:
//!
//! | paper name  | type                      | design |
//! |-------------|---------------------------|--------|
//! | `optik-gl`  | [`OptikGlHashTable`]      | per-bucket global-lock OPTIK list (the paper's fastest) |
//! | `optik`     | [`OptikHashTable`]        | per-bucket fine-grained OPTIK list |
//! | `optik-map` | [`OptikMapHashTable`]     | per-bucket OPTIK array map, contiguous bucket storage |
//! | `lazy-gl`   | [`LazyGlHashTable`]       | per-bucket lazy (Heller) list |
//! | `java`      | [`StripedHashTable`]      | ConcurrentHashMap-style lock striping (n = 128 segments), updates lock then traverse |
//! | `java-optik`| [`StripedOptikHashTable`] | striping + OPTIK: infeasible updates never lock; validated updates skip the second bucket traversal |
//! | `java-resize` (extension) | [`ResizableStripedHashTable`] | striping with the per-segment resizing half of CHM's design: each segment grows independently under its own lock |
//!
//! Buckets are selected by `key % num_buckets` (as in ASCYLIB); the paper
//! sets `num_buckets == initial size` so each bucket holds ~1 element.

#![warn(missing_docs)]

mod bucketed;
mod map_table;
mod striped;
mod striped_optik;
mod striped_resize;

pub use bucketed::{LazyGlHashTable, OptikGlHashTable, OptikHashTable};
pub use map_table::OptikMapHashTable;
pub use striped::StripedHashTable;
pub use striped_optik::StripedOptikHashTable;
pub use striped_resize::ResizableStripedHashTable;

pub use optik_harness::api::{ConcurrentMap, ConcurrentSet, Key, Val};

/// Default number of lock stripes for the Java-style tables; the paper
/// configures 128 "to accommodate as many threads as will ever concurrently
/// modify the table".
pub const DEFAULT_SEGMENTS: usize = 128;

#[inline]
pub(crate) fn bucket_of(key: Key, buckets: usize) -> usize {
    (key % buckets as u64) as usize
}

#[cfg(test)]
mod cross_tests {
    use super::*;
    use std::sync::Arc;

    fn implementations(buckets: usize) -> Vec<(&'static str, Arc<dyn ConcurrentSet>)> {
        vec![
            ("optik-gl", Arc::new(OptikGlHashTable::new(buckets))),
            ("optik", Arc::new(OptikHashTable::new(buckets))),
            (
                "optik-map",
                Arc::new(OptikMapHashTable::with_bucket_capacity(buckets, 64)),
            ),
            ("lazy-gl", Arc::new(LazyGlHashTable::new(buckets))),
            ("java", Arc::new(StripedHashTable::new(buckets, 16))),
            (
                "java-optik",
                Arc::new(StripedOptikHashTable::new(buckets, 16)),
            ),
        ]
    }

    #[test]
    fn roundtrip_semantics() {
        for (name, t) in implementations(8) {
            assert!(t.is_empty(), "{name}");
            assert!(t.insert(11, 110), "{name}");
            assert!(t.insert(19, 190), "{name}"); // same bucket as 11 (mod 8)
            assert!(!t.insert(11, 111), "{name}");
            assert_eq!(t.search(11), Some(110), "{name}");
            assert_eq!(t.search(19), Some(190), "{name}");
            assert_eq!(t.search(3), None, "{name}");
            assert_eq!(t.delete(11), Some(110), "{name}");
            assert_eq!(t.delete(11), None, "{name}");
            assert_eq!(t.len(), 1, "{name}");
        }
    }

    #[test]
    fn many_keys_across_buckets() {
        for (name, t) in implementations(16) {
            for k in 1..=400u64 {
                assert!(t.insert(k, k * 2), "{name} {k}");
            }
            assert_eq!(t.len(), 400, "{name}");
            for k in 1..=400u64 {
                assert_eq!(t.search(k), Some(k * 2), "{name} {k}");
            }
            for k in (1..=400u64).filter(|k| k % 3 == 0) {
                assert_eq!(t.delete(k), Some(k * 2), "{name} {k}");
            }
            assert_eq!(t.len(), 400 - 133, "{name}");
        }
    }

    #[test]
    fn random_ops_match_oracle() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for (name, t) in implementations(8) {
            let mut rng = StdRng::seed_from_u64(0xFACE);
            let mut model = std::collections::BTreeMap::new();
            for _ in 0..10_000 {
                let k = rng.gen_range(1..=48u64);
                match rng.gen_range(0..3) {
                    0 => {
                        let expect = !model.contains_key(&k);
                        if expect {
                            model.insert(k, k);
                        }
                        assert_eq!(t.insert(k, k), expect, "{name} insert {k}");
                    }
                    1 => {
                        assert_eq!(t.delete(k), model.remove(&k), "{name} delete {k}");
                    }
                    _ => {
                        assert_eq!(t.search(k), model.get(&k).copied(), "{name} search {k}");
                    }
                }
            }
            assert_eq!(t.len(), model.len(), "{name}");
        }
    }

    fn map_implementations(buckets: usize) -> Vec<(&'static str, Arc<dyn ConcurrentMap>)> {
        vec![
            (
                "optik-map",
                Arc::new(OptikMapHashTable::with_bucket_capacity(buckets, 64)),
            ),
            ("java", Arc::new(StripedHashTable::new(buckets, 16))),
            (
                "java-optik",
                Arc::new(StripedOptikHashTable::new(buckets, 16)),
            ),
            (
                "java-resize",
                Arc::new(ResizableStripedHashTable::new(4, 2)),
            ),
        ]
    }

    #[test]
    fn map_interface_random_ops_match_oracle() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for (name, t) in map_implementations(8) {
            let mut rng = StdRng::seed_from_u64(0xBEEF);
            let mut model = std::collections::BTreeMap::new();
            for _ in 0..10_000 {
                let k = rng.gen_range(1..=48u64);
                let v = rng.gen_range(0..1_000u64);
                match rng.gen_range(0..3) {
                    0 => {
                        assert_eq!(t.put(k, v), model.insert(k, v), "{name} put {k}");
                    }
                    1 => {
                        assert_eq!(t.remove(k), model.remove(&k), "{name} remove {k}");
                    }
                    _ => {
                        assert_eq!(t.get(k), model.get(&k).copied(), "{name} get {k}");
                    }
                }
            }
            assert_eq!(ConcurrentMap::len(t.as_ref()), model.len(), "{name}");
            let mut scanned = std::collections::BTreeMap::new();
            t.for_each(&mut |k, v| {
                assert!(scanned.insert(k, v).is_none(), "{name}: duplicate key {k}");
            });
            assert_eq!(scanned, model, "{name}: quiescent scan mismatch");
        }
    }

    #[test]
    fn map_put_is_tear_free_under_concurrent_gets() {
        // Writers upsert their own key with values tagged by the key;
        // readers must never see a value from a different key or a torn
        // one. Exercises the in-place AtomicU64 swap path of every table.
        use std::sync::atomic::{AtomicBool, Ordering};
        for (name, t) in map_implementations(4) {
            let stop = Arc::new(AtomicBool::new(false));
            let mut handles = Vec::new();
            for w in 1..=4u64 {
                let t = Arc::clone(&t);
                handles.push(std::thread::spawn(move || {
                    for i in 0..synchro::stress::ops(20_000) {
                        t.put(w, w * 1_000_000 + i);
                    }
                }));
            }
            for _ in 0..2 {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                handles.push(std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        for w in 1..=4u64 {
                            if let Some(v) = t.get(w) {
                                assert_eq!(v / 1_000_000, w, "foreign/torn value {v} at key {w}");
                            }
                        }
                    }
                }));
            }
            reclaim::offline_while(|| {
                for h in handles.drain(..4) {
                    h.join().unwrap();
                }
                stop.store(true, Ordering::Relaxed);
                for h in handles {
                    h.join().unwrap();
                }
            });
            assert_eq!(ConcurrentMap::len(t.as_ref()), 4, "{name}");
        }
    }

    #[test]
    fn concurrent_contended_net_count() {
        use std::sync::atomic::{AtomicI64, Ordering};
        for (name, t) in implementations(32) {
            let net = Arc::new(AtomicI64::new(0));
            let mut handles = Vec::new();
            for tid in 0..8u64 {
                let t = Arc::clone(&t);
                let net = Arc::clone(&net);
                handles.push(std::thread::spawn(move || {
                    let mut x = tid.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                    for _ in 0..synchro::stress::ops(20_000) {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % 64 + 1;
                        match x % 3 {
                            0 => {
                                if t.insert(k, k * 7) {
                                    net.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            1 => {
                                if t.delete(k).is_some() {
                                    net.fetch_sub(1, Ordering::Relaxed);
                                }
                            }
                            _ => {
                                if let Some(v) = t.search(k) {
                                    assert_eq!(v, k * 7, "{name}");
                                }
                            }
                        }
                    }
                }));
            }
            reclaim::offline_while(|| {
                for h in handles {
                    h.join().unwrap();
                }
            });
            assert_eq!(t.len() as i64, net.load(Ordering::Relaxed), "{name}");
        }
    }
}
