//! ConcurrentHashMap-style striped hash table **with per-segment
//! resizing** (*java-resize*).
//!
//! The paper describes Lea's design as "lock striping: It partitions the
//! buckets into n segments. Each segment (and its buckets) is protected by
//! a single lock **and can be individually resized**." The fixed-capacity
//! [`super::StripedHashTable`] is what Figure 10 benchmarks (the paper
//! sizes buckets == elements, so resizing never triggers there); this
//! module implements the resizing half of the design as the workspace's
//! extension, so the table stays O(1) when the initial sizing guess is
//! wrong.
//!
//! Resizing happens under the segment lock only — other segments are
//! completely undisturbed. Searches stay lock-free across a resize: the
//! rehash **clones** every node into the new bucket array, publishes the
//! new array with one release store, and retires the old array and old
//! nodes through QSBR, so a concurrent reader traverses either the old
//! snapshot or the new one, never a mix.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

use synchro::{CachePadded, RawLock, TtasLock};

use crate::striped::{chain_pool, ChainPool, Node};
use crate::{ConcurrentSet, Key, Val, DEFAULT_SEGMENTS};

/// One immutable-identity bucket array; replaced wholesale on resize.
struct Table {
    buckets: Box<[AtomicPtr<Node>]>,
}

impl Table {
    fn boxed(buckets: usize) -> *mut Table {
        Box::into_raw(Box::new(Table {
            buckets: (0..buckets)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        }))
    }
}

struct Segment {
    lock: TtasLock,
    /// Current bucket array; swapped (never mutated in place, except the
    /// chains it points to) under `lock`.
    table: AtomicPtr<Table>,
    /// Elements in this segment; written under `lock`, read lock-free.
    count: AtomicUsize,
}

/// Grow when `count + 1 > buckets * 3/4` (CHM's default load factor).
const LOAD_NUM: usize = 3;
const LOAD_DEN: usize = 4;

/// The resizable striped (`java-resize`) hash table.
///
/// ```
/// use optik_hashtables::{ConcurrentSet, ResizableStripedHashTable};
///
/// // 4 segments, 2 buckets each: grows itself as elements arrive.
/// let t = ResizableStripedHashTable::new(4, 2);
/// for k in 1..=100 {
///     assert!(t.insert(k, k * 10));
/// }
/// assert_eq!(t.len(), 100);
/// assert!(t.capacity() > 8, "segments grew independently");
/// assert_eq!(t.search(37), Some(370));
/// ```
pub struct ResizableStripedHashTable {
    segments: Box<[CachePadded<Segment>]>,
    /// Chain nodes are pooled (type-stable, magazine-cached); the bucket
    /// arrays themselves are plain boxes retired wholesale on resize.
    pool: ChainPool,
}

// SAFETY: updates are serialized per segment; searches read atomic
// pointers of QSBR-protected tables and nodes.
unsafe impl Send for ResizableStripedHashTable {}
unsafe impl Sync for ResizableStripedHashTable {}

/// Fibonacci spreading: segment and bucket come from different bit ranges
/// so `segments` and `buckets` being both small powers of two does not
/// alias.
#[inline]
fn spread(key: Key) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl ResizableStripedHashTable {
    /// Creates a table with `segments` lock stripes, each starting at
    /// `init_buckets` buckets.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(segments: usize, init_buckets: usize) -> Self {
        assert!(segments > 0, "need at least one segment");
        assert!(init_buckets > 0, "need at least one bucket per segment");
        Self {
            segments: (0..segments)
                .map(|_| {
                    CachePadded::new(Segment {
                        lock: TtasLock::new(),
                        table: AtomicPtr::new(Table::boxed(init_buckets)),
                        count: AtomicUsize::new(0),
                    })
                })
                .collect(),
            pool: chain_pool(),
        }
    }

    /// Creates a table with the paper's default of 128 segments, two
    /// initial buckets each.
    pub fn with_default_segments() -> Self {
        Self::new(DEFAULT_SEGMENTS, 2)
    }

    #[inline]
    fn segment(&self, key: Key) -> &Segment {
        // High bits pick the segment...
        &self.segments[(spread(key) >> 48) as usize % self.segments.len()]
    }

    #[inline]
    fn bucket(table: &Table, key: Key) -> &AtomicPtr<Node> {
        // ...low bits pick the bucket within the segment's table.
        &table.buckets[spread(key) as usize % table.buckets.len()]
    }

    /// Total buckets across all segments (for tests/diagnostics).
    pub fn capacity(&self) -> usize {
        self.segments
            .iter()
            .map(|s| {
                // SAFETY: table pointer is always valid (QSBR-retired only
                // after replacement; read under a grace period).
                unsafe { (&*s.table.load(Ordering::Acquire)).buckets.len() }
            })
            .sum()
    }

    /// Lock-free chain lookup in `table`.
    ///
    /// # Safety
    ///
    /// QSBR grace period required.
    #[inline]
    unsafe fn find(table: &Table, key: Key) -> Option<Val> {
        // SAFETY: per contract.
        unsafe {
            let mut cur = Self::bucket(table, key).load(Ordering::Acquire);
            while !cur.is_null() {
                if (*cur).key == key {
                    return Some((*cur).val.load(Ordering::Acquire));
                }
                cur = (*cur).next.load(Ordering::Acquire);
            }
            None
        }
    }

    /// Doubles `seg`'s bucket array, cloning every node.
    ///
    /// # Safety
    ///
    /// `seg.lock` must be held; QSBR grace period required.
    unsafe fn grow(&self, seg: &Segment) {
        // SAFETY: lock held — exclusive writer for this segment.
        unsafe {
            let old = seg.table.load(Ordering::Relaxed);
            let new = Table::boxed((&*old).buckets.len() * 2);
            for b in (*old).buckets.iter() {
                let mut cur = b.load(Ordering::Relaxed);
                while !cur.is_null() {
                    // Clone into the new table (head insertion); readers of
                    // the old table keep an intact chain.
                    let slot = Self::bucket(&*new, (*cur).key);
                    let head = slot.load(Ordering::Relaxed);
                    let key = (*cur).key;
                    let val = (*cur).val.load(Ordering::Relaxed);
                    slot.store(
                        self.pool.alloc_init(|| Node::make(key, val, head)),
                        Ordering::Relaxed,
                    );
                    cur = (*cur).next.load(Ordering::Relaxed);
                }
            }
            // Publish, then retire the old array and every old node.
            seg.table.store(new, Ordering::Release);
            reclaim::with_local(|h| {
                for b in (*old).buckets.iter() {
                    let mut cur = b.load(Ordering::Relaxed);
                    while !cur.is_null() {
                        let next = (*cur).next.load(Ordering::Relaxed);
                        self.pool.retire(cur, h);
                        cur = next;
                    }
                }
                h.retire(old);
            });
        }
    }
}

impl ConcurrentSet for ResizableStripedHashTable {
    fn search(&self, key: Key) -> Option<Val> {
        reclaim::quiescent();
        let seg = self.segment(key);
        // SAFETY: grace period; the table read stays valid through it.
        unsafe { Self::find(&*seg.table.load(Ordering::Acquire), key) }
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        reclaim::quiescent();
        let seg = self.segment(key);
        // Java behaviour: lock first, feasible or not.
        seg.lock.lock();
        // SAFETY: segment lock held; grace period for reads.
        let r = unsafe {
            let table = &*seg.table.load(Ordering::Relaxed);
            if Self::find(table, key).is_some() {
                false
            } else {
                let count = seg.count.load(Ordering::Relaxed);
                if (count + 1) * LOAD_DEN > table.buckets.len() * LOAD_NUM {
                    self.grow(seg);
                }
                let table = &*seg.table.load(Ordering::Relaxed);
                let slot = Self::bucket(table, key);
                let head = slot.load(Ordering::Relaxed);
                let node = self.pool.alloc_init(|| Node::make(key, val, head));
                slot.store(node, Ordering::Release);
                seg.count.store(count + 1, Ordering::Relaxed);
                true
            }
        };
        seg.lock.unlock();
        r
    }

    fn delete(&self, key: Key) -> Option<Val> {
        reclaim::quiescent();
        let seg = self.segment(key);
        seg.lock.lock();
        // SAFETY: segment lock held.
        let r = unsafe {
            let table = &*seg.table.load(Ordering::Relaxed);
            let slot = Self::bucket(table, key);
            let mut prev: *mut Node = std::ptr::null_mut();
            let mut cur = slot.load(Ordering::Relaxed);
            loop {
                if cur.is_null() {
                    break None;
                }
                if (*cur).key == key {
                    let next = (*cur).next.load(Ordering::Relaxed);
                    if prev.is_null() {
                        slot.store(next, Ordering::Release);
                    } else {
                        (*prev).next.store(next, Ordering::Release);
                    }
                    let val = (*cur).val.load(Ordering::Relaxed);
                    // SAFETY: unlinked exactly once under the lock.
                    reclaim::with_local(|h| self.pool.retire(cur, h));
                    seg.count.fetch_sub(1, Ordering::Relaxed);
                    break Some(val);
                }
                prev = cur;
                cur = (*cur).next.load(Ordering::Relaxed);
            }
        };
        seg.lock.unlock();
        r
    }

    fn len(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }
}

impl crate::ConcurrentMap for ResizableStripedHashTable {
    fn get(&self, key: Key) -> Option<Val> {
        ConcurrentSet::search(self, key)
    }

    /// Upsert under the segment lock; a fresh insert may trigger the
    /// segment's independent growth exactly like [`ConcurrentSet::insert`].
    fn put(&self, key: Key, val: Val) -> Option<Val> {
        reclaim::quiescent();
        let seg = self.segment(key);
        seg.lock.lock();
        // SAFETY: segment lock held; grace period for reads.
        let prev = unsafe {
            let table = &*seg.table.load(Ordering::Relaxed);
            let mut cur = Self::bucket(table, key).load(Ordering::Relaxed);
            let mut hit = None;
            while !cur.is_null() {
                if (*cur).key == key {
                    hit = Some(cur);
                    break;
                }
                cur = (*cur).next.load(Ordering::Relaxed);
            }
            match hit {
                Some(n) => Some((*n).val.swap(val, Ordering::AcqRel)),
                None => {
                    let count = seg.count.load(Ordering::Relaxed);
                    if (count + 1) * LOAD_DEN > table.buckets.len() * LOAD_NUM {
                        self.grow(seg);
                    }
                    let table = &*seg.table.load(Ordering::Relaxed);
                    let slot = Self::bucket(table, key);
                    let head = slot.load(Ordering::Relaxed);
                    let node = self.pool.alloc_init(|| Node::make(key, val, head));
                    slot.store(node, Ordering::Release);
                    seg.count.store(count + 1, Ordering::Relaxed);
                    None
                }
            }
        };
        seg.lock.unlock();
        prev
    }

    fn remove(&self, key: Key) -> Option<Val> {
        ConcurrentSet::delete(self, key)
    }

    fn len(&self) -> usize {
        ConcurrentSet::len(self)
    }

    fn for_each(&self, f: &mut dyn FnMut(Key, Val)) {
        reclaim::quiescent();
        for seg in self.segments.iter() {
            // SAFETY: grace period; the table read stays valid through it.
            unsafe {
                let table = &*seg.table.load(Ordering::Acquire);
                for b in table.buckets.iter() {
                    crate::striped::for_each_chain(b, f);
                }
            }
        }
    }
}

impl Drop for ResizableStripedHashTable {
    fn drop(&mut self) {
        for seg in self.segments.iter() {
            let table = seg.table.load(Ordering::Relaxed);
            // SAFETY: exclusive at drop; the table box is uniquely owned
            // (retired tables were already handed to QSBR). Chain nodes are
            // pool slots and are simply abandoned: the pool's chunks free
            // when the last Arc (here, or held by in-flight retires) drops.
            unsafe {
                drop(Box::from_raw(table));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_roundtrip() {
        let t = ResizableStripedHashTable::new(4, 2);
        assert!(t.insert(1, 10));
        assert!(!t.insert(1, 11));
        assert_eq!(t.search(1), Some(10));
        assert_eq!(t.delete(1), Some(10));
        assert_eq!(t.delete(1), None);
        assert!(t.is_empty());
    }

    #[test]
    fn grows_under_load_and_keeps_every_key() {
        let t = ResizableStripedHashTable::new(1, 2);
        let cap0 = t.capacity();
        for k in 1..=1_000u64 {
            assert!(t.insert(k, k * 3));
        }
        assert!(
            t.capacity() >= 1_000 * LOAD_DEN / LOAD_NUM / 2,
            "table must have grown: {} buckets",
            t.capacity()
        );
        assert!(t.capacity() > cap0);
        for k in 1..=1_000u64 {
            assert_eq!(t.search(k), Some(k * 3), "key {k} lost in resize");
        }
        assert_eq!(t.len(), 1_000);
        for k in 1..=1_000u64 {
            assert_eq!(t.delete(k), Some(k * 3));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn resize_is_per_segment() {
        let t = ResizableStripedHashTable::new(8, 2);
        // Fill heavily; every segment grows independently, none is starved.
        for k in 1..=4_000u64 {
            assert!(t.insert(k, k));
        }
        assert_eq!(t.len(), 4_000);
        // All 8 segments must have grown beyond the initial 2 buckets.
        assert!(t.capacity() > 8 * 2 * 4, "capacity {}", t.capacity());
    }

    #[test]
    fn searches_survive_concurrent_resizes() {
        // Readers hammer stable keys while writers force repeated growth
        // in the same segments; the clone-and-publish scheme must never
        // show a reader a partial table.
        let t = Arc::new(ResizableStripedHashTable::new(2, 2));
        for k in 1..=64u64 {
            assert!(t.insert(k, k + 9));
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for w in 0..2u64 {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut next = 1_000 + w * 1_000_000;
                while !stop.load(Ordering::Relaxed) {
                    // Insert fresh keys to force growth, then delete them
                    // so the run is bounded in memory.
                    for i in 0..512 {
                        assert!(t.insert(next + i, 1));
                    }
                    for i in 0..512 {
                        assert_eq!(t.delete(next + i), Some(1));
                    }
                    next += 512;
                }
                reclaim::offline();
            }));
        }
        for _ in 0..4 {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for k in 1..=64u64 {
                        assert_eq!(t.search(k), Some(k + 9), "stable key {k} vanished");
                    }
                }
                reclaim::offline();
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        reclaim::online();
        assert_eq!(t.len(), 64);
    }

    #[test]
    fn concurrent_inserts_count_exactly_across_growth() {
        let t = Arc::new(ResizableStripedHashTable::new(4, 2));
        let mut handles = Vec::new();
        for tid in 0..8u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut wins = 0u64;
                for i in 0..4_000u64 {
                    // Overlapping ranges: plenty of duplicate attempts.
                    let k = (tid * 1_000 + i) % 6_000 + 1;
                    if t.insert(k, k) {
                        wins += 1;
                    }
                }
                wins
            }));
        }
        let wins: u64 =
            reclaim::offline_while(|| handles.into_iter().map(|h| h.join().unwrap()).sum());
        assert_eq!(t.len() as u64, wins);
        // Every key that reports inserted must be found.
        let mut present = 0;
        for k in 1..=6_000u64 {
            if t.search(k).is_some() {
                present += 1;
            }
        }
        assert_eq!(present, t.len());
    }
}
