//! Hash table over per-bucket OPTIK array maps (*optik-map*, §5.2).
//!
//! Buckets are fixed-capacity array maps (§4.1) stored in consecutive
//! memory — the design whose contiguous layout triggered the hardware-
//! prefetching pathology on the paper's Xeon for small tables, and which
//! becomes "the fastest hash table on both platforms" once large enough.
//!
//! Because buckets are fixed arrays, an insert into a full bucket fails
//! (returns `false`), exactly like the paper's implementation ("we do not
//! employ array resizing for simplicity"). Size the bucket capacity for
//! the expected load factor.

use optik_maps::{ArrayMap, OptikArrayMap};

use crate::{bucket_of, ConcurrentSet, Key, Val};

/// Default slots per bucket.
pub const DEFAULT_BUCKET_CAPACITY: usize = 8;

/// Hash table with one OPTIK array map per bucket (*optik-map*).
pub struct OptikMapHashTable {
    buckets: Box<[OptikArrayMap]>,
    bucket_capacity: usize,
}

impl OptikMapHashTable {
    /// Creates a table with `buckets` buckets of the default capacity.
    pub fn new(buckets: usize) -> Self {
        Self::with_bucket_capacity(buckets, DEFAULT_BUCKET_CAPACITY)
    }

    /// Creates a table with `buckets` buckets of `capacity` slots each.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn with_bucket_capacity(buckets: usize, capacity: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(capacity > 0, "bucket capacity must be positive");
        Self {
            buckets: (0..buckets).map(|_| OptikArrayMap::new(capacity)).collect(),
            bucket_capacity: capacity,
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Slots per bucket.
    pub fn bucket_capacity(&self) -> usize {
        self.bucket_capacity
    }

    #[inline]
    fn bucket(&self, key: Key) -> &OptikArrayMap {
        &self.buckets[bucket_of(key, self.buckets.len())]
    }
}

impl ConcurrentSet for OptikMapHashTable {
    // `ArrayMap::` disambiguates: the maps also implement `ConcurrentSet`
    // directly (for the scenario registry), so the bare method calls became
    // ambiguous.
    fn search(&self, key: Key) -> Option<Val> {
        ArrayMap::search(self.bucket(key), key)
    }

    /// Inserts `key`; returns `false` if the key is present **or the bucket
    /// is full** (fixed-capacity buckets, as in the paper).
    fn insert(&self, key: Key, val: Val) -> bool {
        ArrayMap::insert(self.bucket(key), key, val)
    }

    fn delete(&self, key: Key) -> Option<Val> {
        ArrayMap::delete(self.bucket(key), key)
    }

    fn len(&self) -> usize {
        self.buckets.iter().map(ArrayMap::len).sum()
    }
}

impl crate::ConcurrentMap for OptikMapHashTable {
    fn get(&self, key: Key) -> Option<Val> {
        ArrayMap::search(self.bucket(key), key)
    }

    /// Upsert, delegated to the bucket's OPTIK array-map `put`.
    ///
    /// # Panics
    ///
    /// Panics if the key is fresh and its bucket is full (fixed-capacity
    /// buckets, as in the paper) — size `bucket_capacity` for the workload.
    fn put(&self, key: Key, val: Val) -> Option<Val> {
        ArrayMap::put(self.bucket(key), key, val)
    }

    fn remove(&self, key: Key) -> Option<Val> {
        ArrayMap::delete(self.bucket(key), key)
    }

    fn len(&self) -> usize {
        ConcurrentSet::len(self)
    }

    fn for_each(&self, f: &mut dyn FnMut(Key, Val)) {
        for b in self.buckets.iter() {
            ArrayMap::for_each(b, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_roundtrip() {
        let t = OptikMapHashTable::new(8);
        assert!(t.insert(5, 50));
        assert!(!t.insert(5, 51));
        assert_eq!(t.search(5), Some(50));
        assert_eq!(t.delete(5), Some(50));
        assert!(t.is_empty());
    }

    #[test]
    fn full_bucket_rejects_insert() {
        let t = OptikMapHashTable::with_bucket_capacity(2, 2);
        // Bucket 0 gets keys 2, 4, 6 (mod 2 == 0).
        assert!(t.insert(2, 2));
        assert!(t.insert(4, 4));
        assert!(!t.insert(6, 6), "bucket full");
        // Other bucket unaffected.
        assert!(t.insert(3, 3));
        // Freeing a slot admits the key.
        assert_eq!(t.delete(2), Some(2));
        assert!(t.insert(6, 6));
    }

    #[test]
    fn concurrent_disjoint_keys() {
        let t = Arc::new(OptikMapHashTable::with_bucket_capacity(64, 16));
        let mut handles = Vec::new();
        for tid in 0..8u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let lo = tid * 100 + 1;
                for k in lo..lo + 100 {
                    assert!(t.insert(k, k * 3));
                    assert_eq!(t.search(k), Some(k * 3));
                }
                for k in lo..lo + 100 {
                    assert_eq!(t.delete(k), Some(k * 3));
                }
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
        });
        assert!(t.is_empty());
    }
}
