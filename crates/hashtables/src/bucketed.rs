//! Hash tables built from one concurrent list per bucket.
//!
//! "Intuitively, the list protected by a global lock, resulting in
//! per-bucket locking, is more suitable for hash tables" (§5.2): with one
//! element per bucket on average, fine-grained per-node locking buys
//! nothing over one OPTIK lock per bucket, while the global-lock OPTIK
//! list's infeasible-updates-never-lock property carries over intact.

use optik_lists::{LazyList, LazyListPool, OptikGlList, OptikGlListPool, OptikList, OptikListPool};

use crate::{bucket_of, ConcurrentSet, Key, Val};

macro_rules! bucketed_table {
    ($(#[$doc:meta])* $name:ident, $list:ty, $pool:ty) => {
        $(#[$doc])*
        pub struct $name {
            buckets: Box<[$list]>,
        }

        impl $name {
            /// Creates a table with `buckets` buckets.
            ///
            /// All buckets draw nodes from one shared pool — ssmem's
            /// per-thread-allocator shape (§5.1). One pool per bucket would
            /// hand every bucket its own magazines and depot, and the
            /// allocation path's cache footprint would scale with the
            /// bucket count instead of the thread count.
            ///
            /// # Panics
            ///
            /// Panics if `buckets == 0`.
            pub fn new(buckets: usize) -> Self {
                assert!(buckets > 0, "need at least one bucket");
                let pool = <$pool>::new();
                Self {
                    buckets: (0..buckets).map(|_| <$list>::with_pool(&pool)).collect(),
                }
            }

            /// Creates a table whose shared pool is arena-backed
            /// ([`reclaim::NodePool::arena`]): aligned slabs and
            /// address-ordered magazine refills. Same sharing shape and
            /// API as [`Self::new`].
            ///
            /// # Panics
            ///
            /// Panics if `buckets == 0`.
            pub fn arena(buckets: usize) -> Self {
                assert!(buckets > 0, "need at least one bucket");
                let pool = <$pool>::arena();
                Self {
                    buckets: (0..buckets).map(|_| <$list>::with_pool(&pool)).collect(),
                }
            }

            /// Number of buckets.
            pub fn num_buckets(&self) -> usize {
                self.buckets.len()
            }

            #[inline]
            fn bucket(&self, key: Key) -> &$list {
                &self.buckets[bucket_of(key, self.buckets.len())]
            }
        }

        impl ConcurrentSet for $name {
            fn search(&self, key: Key) -> Option<Val> {
                self.bucket(key).search(key)
            }

            fn insert(&self, key: Key, val: Val) -> bool {
                self.bucket(key).insert(key, val)
            }

            fn delete(&self, key: Key) -> Option<Val> {
                self.bucket(key).delete(key)
            }

            fn len(&self) -> usize {
                self.buckets.iter().map(|b| b.len()).sum()
            }
        }
    };
}

bucketed_table!(
    /// Per-bucket global-lock OPTIK list (*optik-gl* in Figure 10 — the
    /// paper's overall fastest hash table).
    OptikGlHashTable,
    OptikGlList,
    OptikGlListPool
);

bucketed_table!(
    /// Per-bucket fine-grained OPTIK list (*optik* in Figure 10; ~9% slower
    /// than optik-gl in the paper because some operations take two locks).
    OptikHashTable,
    OptikList,
    OptikListPool
);

bucketed_table!(
    /// Per-bucket lazy list (*lazy-gl* in Figure 10).
    LazyGlHashTable,
    LazyList,
    LazyListPool
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_bucket_collisions_behave() {
        let t = OptikGlHashTable::new(4);
        // Keys 1, 5, 9, 13 all map to bucket 1.
        for (i, k) in [1u64, 5, 9, 13].iter().enumerate() {
            assert!(t.insert(*k, i as u64));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.search(9), Some(2));
        assert_eq!(t.delete(5), Some(1));
        assert_eq!(t.search(5), None);
        assert_eq!(t.search(13), Some(3));
    }

    #[test]
    fn num_buckets_reported() {
        assert_eq!(OptikHashTable::new(7).num_buckets(), 7);
        assert_eq!(LazyGlHashTable::new(1).num_buckets(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        let _ = OptikGlHashTable::new(0);
    }

    #[test]
    fn single_bucket_degenerates_to_list() {
        let t = OptikHashTable::new(1);
        for k in 1..=50u64 {
            assert!(t.insert(k, k));
        }
        assert_eq!(t.len(), 50);
        for k in 1..=50u64 {
            assert_eq!(t.delete(k), Some(k));
        }
        assert!(t.is_empty());
    }
}
