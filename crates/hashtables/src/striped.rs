//! ConcurrentHashMap-style striped hash table (*java*, §5.2).
//!
//! Re-implementation of the design the paper benchmarks as `java`
//! (Lea's `util.concurrent.ConcurrentHashMap` [34], as ported to C in
//! ASCYLIB): the bucket array is partitioned into `n` *segments*, each
//! protected by one lock. Searches are lock-free; **updates lock their
//! segment regardless of whether the operation is feasible** — the
//! unnecessary locking the paper's OPTIK variant removes.
//!
//! Buckets are unsorted chains with head insertion (as in CHM).

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use reclaim::NodePool;
use synchro::{CachePadded, RawLock, TtasLock};

use crate::{bucket_of, ConcurrentSet, Key, Val, DEFAULT_SEGMENTS};

pub(crate) struct Node {
    pub(crate) key: Key,
    /// Atomic so the map-interface `put` can replace it in place while
    /// lock-free readers traverse the chain.
    pub(crate) val: AtomicU64,
    pub(crate) next: AtomicPtr<Node>,
}

impl Node {
    pub(crate) fn make(key: Key, val: Val, next: *mut Node) -> Self {
        Node {
            key,
            val: AtomicU64::new(val),
            next: AtomicPtr::new(next),
        }
    }
}

/// One type-stable node pool per table, shared by all chains. The striped
/// tables never cache node pointers across operations, so recycled slots
/// are plainly re-initialized (`alloc_init`) after their grace period.
pub(crate) type ChainPool = Arc<NodePool<Node>>;

pub(crate) fn chain_pool() -> ChainPool {
    NodePool::new()
}

/// Arena-backed variant of [`chain_pool`]: aligned slabs and
/// address-ordered magazine refills, same API and safety story.
pub(crate) fn chain_pool_arena() -> ChainPool {
    NodePool::arena()
}

/// Lock-free walk of one chain, visiting every `(key, value)` — the one
/// traversal all three striped tables' `for_each` implementations share.
///
/// # Safety
///
/// QSBR grace period required (the caller must be a registered,
/// non-quiescing thread so retired nodes stay readable).
pub(crate) unsafe fn for_each_chain(head: &AtomicPtr<Node>, f: &mut dyn FnMut(Key, Val)) {
    // SAFETY: per contract.
    unsafe {
        let mut cur = head.load(Ordering::Acquire);
        while !cur.is_null() {
            f((*cur).key, (*cur).val.load(Ordering::Acquire));
            cur = (*cur).next.load(Ordering::Acquire);
        }
    }
}

/// The striped (`java`) hash table.
pub struct StripedHashTable {
    buckets: Box<[AtomicPtr<Node>]>,
    segments: Box<[CachePadded<TtasLock>]>,
    pool: ChainPool,
}

// SAFETY: updates are serialized per segment; searches read atomic
// pointers of QSBR-protected nodes.
unsafe impl Send for StripedHashTable {}
unsafe impl Sync for StripedHashTable {}

impl StripedHashTable {
    /// Creates a table with `buckets` buckets and `segments` lock stripes.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(buckets: usize, segments: usize) -> Self {
        Self::build(buckets, segments, chain_pool())
    }

    /// Creates a table whose chain pool is arena-backed
    /// ([`reclaim::NodePool::arena`]); same layout as [`Self::new`].
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn arena(buckets: usize, segments: usize) -> Self {
        Self::build(buckets, segments, chain_pool_arena())
    }

    fn build(buckets: usize, segments: usize, pool: ChainPool) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(segments > 0, "need at least one segment");
        Self {
            buckets: (0..buckets)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            segments: (0..segments)
                .map(|_| CachePadded::new(TtasLock::new()))
                .collect(),
            pool,
        }
    }

    /// Creates a table with the paper's default of 128 segments.
    pub fn with_default_segments(buckets: usize) -> Self {
        Self::new(buckets, DEFAULT_SEGMENTS)
    }

    #[inline]
    fn segment(&self, bucket: usize) -> &TtasLock {
        &self.segments[bucket % self.segments.len()]
    }

    /// Lock-free bucket lookup.
    ///
    /// # Safety
    ///
    /// QSBR grace period required.
    #[inline]
    unsafe fn find(&self, bucket: usize, key: Key) -> Option<Val> {
        // SAFETY: per contract.
        unsafe {
            let mut cur = self.buckets[bucket].load(Ordering::Acquire);
            while !cur.is_null() {
                if (*cur).key == key {
                    return Some((*cur).val.load(Ordering::Acquire));
                }
                cur = (*cur).next.load(Ordering::Acquire);
            }
            None
        }
    }
}

impl ConcurrentSet for StripedHashTable {
    fn search(&self, key: Key) -> Option<Val> {
        reclaim::quiescent();
        let b = bucket_of(key, self.buckets.len());
        // SAFETY: grace period.
        unsafe { self.find(b, key) }
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        reclaim::quiescent();
        let b = bucket_of(key, self.buckets.len());
        let seg = self.segment(b);
        // Java behaviour: lock first, feasible or not.
        seg.lock();
        // SAFETY: segment lock held; grace period for reads.
        let r = unsafe {
            if self.find(b, key).is_some() {
                false
            } else {
                let head = self.buckets[b].load(Ordering::Relaxed);
                let node = self.pool.alloc_init(|| Node::make(key, val, head));
                self.buckets[b].store(node, Ordering::Release);
                true
            }
        };
        seg.unlock();
        r
    }

    fn delete(&self, key: Key) -> Option<Val> {
        reclaim::quiescent();
        let b = bucket_of(key, self.buckets.len());
        let seg = self.segment(b);
        seg.lock();
        // SAFETY: segment lock held.
        let r = unsafe {
            let mut prev: *mut Node = std::ptr::null_mut();
            let mut cur = self.buckets[b].load(Ordering::Relaxed);
            loop {
                if cur.is_null() {
                    break None;
                }
                if (*cur).key == key {
                    let next = (*cur).next.load(Ordering::Relaxed);
                    if prev.is_null() {
                        self.buckets[b].store(next, Ordering::Release);
                    } else {
                        (*prev).next.store(next, Ordering::Release);
                    }
                    let val = (*cur).val.load(Ordering::Relaxed);
                    // SAFETY: unlinked exactly once under the lock.
                    reclaim::with_local(|h| self.pool.retire(cur, h));
                    break Some(val);
                }
                prev = cur;
                cur = (*cur).next.load(Ordering::Relaxed);
            }
        };
        seg.unlock();
        r
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        let mut n = 0;
        for b in self.buckets.iter() {
            // SAFETY: grace period.
            unsafe {
                let mut cur = b.load(Ordering::Acquire);
                while !cur.is_null() {
                    n += 1;
                    cur = (*cur).next.load(Ordering::Acquire);
                }
            }
        }
        n
    }
}

impl crate::ConcurrentMap for StripedHashTable {
    fn get(&self, key: Key) -> Option<Val> {
        ConcurrentSet::search(self, key)
    }

    /// Upsert, Java-style: lock the segment first, then either replace the
    /// matching node's value in place or head-insert a fresh node.
    fn put(&self, key: Key, val: Val) -> Option<Val> {
        reclaim::quiescent();
        let b = bucket_of(key, self.buckets.len());
        let seg = self.segment(b);
        seg.lock();
        // SAFETY: segment lock held; grace period for reads.
        let prev = unsafe {
            let mut cur = self.buckets[b].load(Ordering::Acquire);
            loop {
                if cur.is_null() {
                    let head = self.buckets[b].load(Ordering::Relaxed);
                    let node = self.pool.alloc_init(|| Node::make(key, val, head));
                    self.buckets[b].store(node, Ordering::Release);
                    break None;
                }
                if (*cur).key == key {
                    // In-place replacement: concurrent lock-free readers
                    // see either the old or the new value, never a tear.
                    break Some((*cur).val.swap(val, Ordering::AcqRel));
                }
                cur = (*cur).next.load(Ordering::Acquire);
            }
        };
        seg.unlock();
        prev
    }

    fn remove(&self, key: Key) -> Option<Val> {
        ConcurrentSet::delete(self, key)
    }

    fn len(&self) -> usize {
        ConcurrentSet::len(self)
    }

    fn for_each(&self, f: &mut dyn FnMut(Key, Val)) {
        reclaim::quiescent();
        for b in self.buckets.iter() {
            // SAFETY: grace period.
            unsafe { for_each_chain(b, f) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_roundtrip() {
        let t = StripedHashTable::new(8, 4);
        assert!(t.insert(1, 10));
        assert!(t.insert(9, 90)); // same bucket chain
        assert!(!t.insert(1, 11));
        assert_eq!(t.search(9), Some(90));
        assert_eq!(t.delete(1), Some(10));
        assert_eq!(t.search(1), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_middle_and_head_of_chain() {
        let t = StripedHashTable::new(2, 1);
        // All odd keys share bucket 1; chain: 7 -> 5 -> 3 -> 1 (head insert).
        for k in [1u64, 3, 5, 7] {
            assert!(t.insert(k, k));
        }
        assert_eq!(t.delete(5), Some(5)); // middle
        assert_eq!(t.delete(7), Some(7)); // head
        assert_eq!(t.search(3), Some(3));
        assert_eq!(t.search(1), Some(1));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn more_segments_than_buckets_is_fine() {
        let t = StripedHashTable::new(2, 64);
        assert!(t.insert(1, 1));
        assert!(t.insert(2, 2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn concurrent_same_segment_updates_are_exact() {
        // One segment: all updates serialize on one lock.
        let t = Arc::new(StripedHashTable::new(16, 1));
        let mut handles = Vec::new();
        for tid in 0..8u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut net = 0i64;
                for i in 0..synchro::stress::ops(10_000) {
                    let k = (tid * 37 + i) % 48 + 1;
                    if i % 2 == 0 {
                        if t.insert(k, k) {
                            net += 1;
                        }
                    } else if t.delete(k).is_some() {
                        net -= 1;
                    }
                }
                net
            }));
        }
        let net: i64 =
            reclaim::offline_while(|| handles.into_iter().map(|h| h.join().unwrap()).sum());
        assert_eq!(t.len() as i64, net);
    }
}
