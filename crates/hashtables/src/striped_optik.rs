//! Striped hash table optimized with OPTIK (*java-optik*, §5.2).
//!
//! The paper's optimization of [`crate::StripedHashTable`]: each segment's
//! lock becomes an OPTIK lock, and updates follow the OPTIK pattern:
//!
//! 1. read the segment version, traverse the bucket **read-only**;
//! 2. infeasible updates return `false` without any locking;
//! 3. feasible updates acquire with `lock_version(vn)`: when the version
//!    validates, "no concurrent modification has completed on this bucket,
//!    hence we do not need to re-traverse the bucket" — the first
//!    traversal's findings are applied directly;
//! 4. only on validation failure is the bucket re-traversed under the lock.
//!
//! Failed updates that had to lock release with `revert` so read-only
//! critical sections never advance the version.

use std::sync::atomic::{AtomicPtr, Ordering};

use optik::{OptikLock, OptikVersioned};
use synchro::CachePadded;

use crate::striped::{chain_pool, chain_pool_arena, ChainPool, Node};
use crate::{bucket_of, ConcurrentSet, Key, Val, DEFAULT_SEGMENTS};

/// The striped OPTIK (`java-optik`) hash table. Chain nodes come from a
/// per-table type-stable pool (magazine-cached allocation, QSBR-deferred
/// recycling).
pub struct StripedOptikHashTable {
    buckets: Box<[AtomicPtr<Node>]>,
    segments: Box<[CachePadded<OptikVersioned>]>,
    pool: ChainPool,
}

// SAFETY: updates are serialized per segment via the OPTIK locks;
// searches read atomic pointers of QSBR-protected nodes.
unsafe impl Send for StripedOptikHashTable {}
unsafe impl Sync for StripedOptikHashTable {}

impl StripedOptikHashTable {
    /// Creates a table with `buckets` buckets and `segments` OPTIK stripes.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(buckets: usize, segments: usize) -> Self {
        Self::build(buckets, segments, chain_pool())
    }

    /// Creates a table whose chain pool is arena-backed
    /// ([`reclaim::NodePool::arena`]); same layout as [`Self::new`].
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn arena(buckets: usize, segments: usize) -> Self {
        Self::build(buckets, segments, chain_pool_arena())
    }

    fn build(buckets: usize, segments: usize, pool: ChainPool) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(segments > 0, "need at least one segment");
        Self {
            buckets: (0..buckets)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            segments: (0..segments)
                .map(|_| CachePadded::new(OptikVersioned::new()))
                .collect(),
            pool,
        }
    }

    /// Creates a table with the paper's default of 128 segments.
    pub fn with_default_segments(buckets: usize) -> Self {
        Self::new(buckets, DEFAULT_SEGMENTS)
    }

    #[inline]
    fn segment(&self, bucket: usize) -> &OptikVersioned {
        &self.segments[bucket % self.segments.len()]
    }

    /// Read-only bucket traversal returning the matching node (if any).
    ///
    /// # Safety
    ///
    /// QSBR grace period required.
    #[inline]
    unsafe fn find_node(&self, bucket: usize, key: Key) -> Option<*mut Node> {
        // SAFETY: per contract.
        unsafe {
            let mut cur = self.buckets[bucket].load(Ordering::Acquire);
            while !cur.is_null() {
                if (*cur).key == key {
                    return Some(cur);
                }
                cur = (*cur).next.load(Ordering::Acquire);
            }
            None
        }
    }

    /// Traversal with predecessor tracking (for unlinking).
    ///
    /// # Safety
    ///
    /// QSBR grace period required.
    #[inline]
    unsafe fn find_with_pred(&self, bucket: usize, key: Key) -> Option<(*mut Node, *mut Node)> {
        // SAFETY: per contract.
        unsafe {
            let mut prev: *mut Node = std::ptr::null_mut();
            let mut cur = self.buckets[bucket].load(Ordering::Acquire);
            while !cur.is_null() {
                if (*cur).key == key {
                    return Some((prev, cur));
                }
                prev = cur;
                cur = (*cur).next.load(Ordering::Acquire);
            }
            None
        }
    }

    /// Unlinks `cur` (with predecessor `prev`, null = bucket head) and
    /// retires it.
    ///
    /// # Safety
    ///
    /// Caller holds the segment lock; `(prev, cur)` must be currently
    /// linked in `bucket`.
    unsafe fn unlink(&self, bucket: usize, prev: *mut Node, cur: *mut Node) -> Val {
        // SAFETY: per contract.
        unsafe {
            let next = (*cur).next.load(Ordering::Relaxed);
            if prev.is_null() {
                self.buckets[bucket].store(next, Ordering::Release);
            } else {
                (*prev).next.store(next, Ordering::Release);
            }
            let val = (*cur).val.load(Ordering::Relaxed);
            // SAFETY: unlinked exactly once under the lock.
            reclaim::with_local(|h| self.pool.retire(cur, h));
            val
        }
    }
}

impl ConcurrentSet for StripedOptikHashTable {
    fn search(&self, key: Key) -> Option<Val> {
        reclaim::quiescent();
        let b = bucket_of(key, self.buckets.len());
        // SAFETY: grace period.
        unsafe {
            self.find_node(b, key)
                .map(|n| (*n).val.load(Ordering::Acquire))
        }
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        reclaim::quiescent();
        let b = bucket_of(key, self.buckets.len());
        let seg = self.segment(b);
        let vn = seg.get_version();
        // Phase 1: optimistic read-only traversal.
        // SAFETY: grace period.
        if unsafe { self.find_node(b, key) }.is_some() {
            // Infeasible: no locking at all (the OPTIK win over `java`).
            return false;
        }
        // Phase 2: lock, learning whether the optimistic traversal is
        // still valid.
        let validated = seg.lock_version(vn);
        // SAFETY: segment lock held.
        unsafe {
            if !validated && self.find_node(b, key).is_some() {
                // Second traversal was needed and found the key.
                seg.revert(); // read-only critical section
                return false;
            }
            let head = self.buckets[b].load(Ordering::Relaxed);
            let node = self.pool.alloc_init(|| Node::make(key, val, head));
            self.buckets[b].store(node, Ordering::Release);
        }
        seg.unlock();
        true
    }

    fn delete(&self, key: Key) -> Option<Val> {
        reclaim::quiescent();
        let b = bucket_of(key, self.buckets.len());
        let seg = self.segment(b);
        let vn = seg.get_version();
        // Phase 1: optimistic traversal with predecessor tracking.
        // SAFETY: grace period.
        let Some((prev, cur)) = (unsafe { self.find_with_pred(b, key) }) else {
            return None; // infeasible: never locks
        };
        let validated = seg.lock_version(vn);
        // SAFETY: segment lock held.
        unsafe {
            if validated {
                // No committed modification since vn: (prev, cur) is still
                // the correct link — skip the second traversal.
                let val = self.unlink(b, prev, cur);
                seg.unlock();
                Some(val)
            } else {
                // Re-traverse under the lock.
                match self.find_with_pred(b, key) {
                    Some((prev, cur)) => {
                        let val = self.unlink(b, prev, cur);
                        seg.unlock();
                        Some(val)
                    }
                    None => {
                        seg.revert();
                        None
                    }
                }
            }
        }
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        let mut n = 0;
        for b in self.buckets.iter() {
            // SAFETY: grace period.
            unsafe {
                let mut cur = b.load(Ordering::Acquire);
                while !cur.is_null() {
                    n += 1;
                    cur = (*cur).next.load(Ordering::Acquire);
                }
            }
        }
        n
    }
}

impl crate::ConcurrentMap for StripedOptikHashTable {
    fn get(&self, key: Key) -> Option<Val> {
        ConcurrentSet::search(self, key)
    }

    /// OPTIK upsert: both outcomes write, so the operation always locks,
    /// but a successful validation lets it reuse the optimistic traversal's
    /// finding (the matching node, or its absence) without re-walking the
    /// bucket — the same second-traversal elision as `insert`/`delete`.
    fn put(&self, key: Key, val: Val) -> Option<Val> {
        reclaim::quiescent();
        let b = bucket_of(key, self.buckets.len());
        let seg = self.segment(b);
        let vn = seg.get_version();
        // Phase 1: optimistic read-only traversal.
        // SAFETY: grace period.
        let hit = unsafe { self.find_node(b, key) };
        // Phase 2: lock; on validation failure the traversal is stale and
        // must be redone under the lock.
        let validated = seg.lock_version(vn);
        // SAFETY: segment lock held.
        let prev = unsafe {
            let node = if validated {
                hit
            } else {
                self.find_node(b, key)
            };
            match node {
                Some(n) => Some((*n).val.swap(val, Ordering::AcqRel)),
                None => {
                    let head = self.buckets[b].load(Ordering::Relaxed);
                    let node = self.pool.alloc_init(|| Node::make(key, val, head));
                    self.buckets[b].store(node, Ordering::Release);
                    None
                }
            }
        };
        seg.unlock();
        prev
    }

    fn remove(&self, key: Key) -> Option<Val> {
        ConcurrentSet::delete(self, key)
    }

    fn len(&self) -> usize {
        ConcurrentSet::len(self)
    }

    fn for_each(&self, f: &mut dyn FnMut(Key, Val)) {
        reclaim::quiescent();
        for b in self.buckets.iter() {
            // SAFETY: grace period.
            unsafe { crate::striped::for_each_chain(b, f) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_roundtrip() {
        let t = StripedOptikHashTable::new(8, 4);
        assert!(t.insert(2, 20));
        assert!(t.insert(10, 100));
        assert!(!t.insert(2, 21));
        assert_eq!(t.search(10), Some(100));
        assert_eq!(t.delete(2), Some(20));
        assert_eq!(t.delete(2), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn infeasible_updates_never_bump_version() {
        let t = StripedOptikHashTable::new(4, 1);
        assert!(t.insert(1, 10));
        let v = t.segments[0].get_version();
        assert!(!t.insert(1, 11), "present key");
        assert_eq!(t.delete(2), None, "absent key");
        assert_eq!(t.search(1), Some(10));
        assert_eq!(
            t.segments[0].get_version(),
            v,
            "read-only paths must not synchronize"
        );
    }

    #[test]
    fn failed_update_that_locked_reverts() {
        // Force the !validated + infeasible path: insert under a version
        // that gets invalidated between phases is hard to stage
        // deterministically single-threaded, so exercise revert indirectly:
        // a full sequence of feasible/infeasible ops must leave the lock
        // free and version sane.
        let t = StripedOptikHashTable::new(2, 1);
        for k in 1..=20u64 {
            t.insert(k, k);
        }
        for k in 1..=20u64 {
            assert!(!t.insert(k, 0));
        }
        for k in 1..=20u64 {
            assert_eq!(t.delete(k), Some(k));
        }
        assert!(!t.segments[0].is_locked());
        assert!(t.is_empty());
    }

    #[test]
    fn concurrent_hot_segment_consistent() {
        let t = Arc::new(StripedOptikHashTable::new(8, 1));
        let mut handles = Vec::new();
        for tid in 0..8u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut net = 0i64;
                let mut x = tid.wrapping_mul(0xA24BAED4963EE407) | 1;
                for _ in 0..synchro::stress::ops(15_000) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % 32 + 1;
                    match x % 3 {
                        0 => {
                            if t.insert(k, k) {
                                net += 1;
                            }
                        }
                        1 => {
                            if t.delete(k).is_some() {
                                net -= 1;
                            }
                        }
                        _ => {
                            if let Some(v) = t.search(k) {
                                assert_eq!(v, k);
                            }
                        }
                    }
                }
                net
            }));
        }
        let net: i64 =
            reclaim::offline_while(|| handles.into_iter().map(|h| h.join().unwrap()).sum());
        assert_eq!(t.len() as i64, net);
    }
}
