//! # optik-suite — the complete OPTIK reproduction under one roof
//!
//! Re-exports every crate of the workspace so applications can depend on a
//! single package:
//!
//! ```
//! use optik_suite::prelude::*;
//!
//! let list = OptikList::new();
//! assert!(list.insert(7, 70));
//! assert_eq!(list.search(7), Some(70));
//! ```
//!
//! See the repository README for the full tour, and `DESIGN.md` for the
//! paper-to-module map.

#![warn(missing_docs)]

pub use optik;
pub use optik_bsts as bsts;
pub use optik_harness as harness;
pub use optik_hashtables as hashtables;
pub use optik_kv as kv;
pub use optik_lists as lists;
pub use optik_maps as maps;
pub use optik_queues as queues;
pub use optik_skiplists as skiplists;
pub use optik_stacks as stacks;
pub use reclaim;
pub use synchro;

/// The most common imports in one place.
pub mod prelude {
    pub use optik::{OptikGuard, OptikLock, OptikTicket, OptikVersioned};
    pub use optik_bsts::{GlobalLockBst, OptikBst, OptikGlBst};
    pub use optik_harness::api::{
        ConcurrentMap, ConcurrentQueue, ConcurrentSet, Key, OrderedMap, SetHandle, Val,
    };
    pub use optik_hashtables::{
        OptikGlHashTable, OptikHashTable, OptikMapHashTable, ResizableStripedHashTable,
    };
    pub use optik_kv::{Clock, FakeClock, KvStore, ShardPolicy, SystemClock};
    pub use optik_lists::{LazyList, OptikCacheList, OptikGlList, OptikList};
    pub use optik_maps::{ArrayMap, OptikArrayMap};
    pub use optik_queues::{MsLfQueue, OptikQueue2, VictimQueue};
    pub use optik_skiplists::{OptikSkipList1, OptikSkipList2};
    pub use optik_stacks::{ConcurrentStack, EliminationStack, OptikStack, TreiberStack};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_headline_types() {
        let list = OptikList::new();
        assert!(list.insert(1, 2));
        let ht = OptikGlHashTable::new(4);
        assert!(ht.insert(1, 2));
        let q = OptikQueue2::new();
        q.enqueue(5);
        assert_eq!(q.dequeue(), Some(5));
        let lock = OptikVersioned::new();
        let v = lock.get_version();
        assert!(lock.try_lock_version(v));
        lock.unlock();
    }
}
