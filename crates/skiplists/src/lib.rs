//! Skip lists (§5.3 of the OPTIK paper).
//!
//! Figure 11 compares five algorithms, all implemented here:
//!
//! | paper name | type                      | design |
//! |------------|---------------------------|--------|
//! | `herlihy`  | [`HerlihySkipList`]       | optimistic skip list, Herlihy/Lev/Luchangco/Shavit \[29\] |
//! | `herl-optik`| [`HerlihyOptikSkipList`] | same, with `lock_version` replacing per-level fine validation |
//! | `optik1`   | [`OptikSkipList1`]        | new OPTIK design; fine-grained re-validation on version failure |
//! | `optik2`   | [`OptikSkipList2`]        | new OPTIK design; immediate restart on version failure |
//! | `fraser`   | [`FraserSkipList`]        | lock-free, per-level marked pointers (Fraser \[15\]) |
//!
//! The paper notes skip lists are "somewhat of an exception" for OPTIK:
//! per-node version granularity covers *all* of a node's next pointers, so
//! updates at one level falsely conflict with validation at another. The
//! OPTIK designs win anyway under contention because failed validation
//! costs one CAS instead of a lock acquisition.

#![warn(missing_docs)]
// Indexing preds/succs by level is the idiomatic way to express skip-list
// algorithms (matching the paper's pseudocode); zip-based iteration would
// obscure the per-level lockstep.
#![allow(clippy::needless_range_loop)]

mod fraser;
mod herlihy;
mod herlihy_optik;
mod level;
mod optik_sl;

pub use fraser::FraserSkipList;
pub use herlihy::HerlihySkipList;
pub use herlihy_optik::HerlihyOptikSkipList;
pub use level::{random_level, MAX_LEVEL};
pub use optik_sl::{OptikSkipList1, OptikSkipList2};

pub use optik_harness::api::{ConcurrentSet, Key, Val};

/// Sentinel key of the head tower.
pub const HEAD_KEY: Key = 0;
/// Sentinel key of the tail tower.
pub const TAIL_KEY: Key = u64::MAX;

#[inline]
pub(crate) fn assert_user_key(key: Key) {
    debug_assert!(
        key > HEAD_KEY && key < TAIL_KEY,
        "user keys must be in (0, u64::MAX)"
    );
}

#[cfg(test)]
mod cross_tests {
    use super::*;
    use std::sync::Arc;

    fn implementations() -> Vec<(&'static str, Arc<dyn ConcurrentSet>)> {
        vec![
            ("herlihy", Arc::new(HerlihySkipList::new())),
            ("herl-optik", Arc::new(HerlihyOptikSkipList::new())),
            ("optik1", Arc::new(OptikSkipList1::new())),
            ("optik2", Arc::new(OptikSkipList2::new())),
            ("fraser", Arc::new(FraserSkipList::new())),
        ]
    }

    #[test]
    fn roundtrip_semantics() {
        for (name, s) in implementations() {
            assert!(s.is_empty(), "{name}");
            assert!(s.insert(50, 500), "{name}");
            assert!(s.insert(30, 300), "{name}");
            assert!(s.insert(70, 700), "{name}");
            assert!(!s.insert(50, 501), "{name}: duplicate");
            assert_eq!(s.search(30), Some(300), "{name}");
            assert_eq!(s.search(50), Some(500), "{name}");
            assert_eq!(s.search(40), None, "{name}");
            assert_eq!(s.delete(50), Some(500), "{name}");
            assert_eq!(s.delete(50), None, "{name}");
            assert_eq!(s.len(), 2, "{name}");
        }
    }

    #[test]
    fn large_sequential_volume() {
        for (name, s) in implementations() {
            for k in 1..=2000u64 {
                assert!(s.insert(k, k * 2), "{name} insert {k}");
            }
            assert_eq!(s.len(), 2000, "{name}");
            for k in 1..=2000u64 {
                assert_eq!(s.search(k), Some(k * 2), "{name} search {k}");
            }
            for k in (1..=2000u64).step_by(2) {
                assert_eq!(s.delete(k), Some(k * 2), "{name} delete {k}");
            }
            assert_eq!(s.len(), 1000, "{name}");
            for k in (1..=2000u64).step_by(2) {
                assert_eq!(s.search(k), None, "{name}");
            }
            for k in (2..=2000u64).step_by(2) {
                assert_eq!(s.search(k), Some(k * 2), "{name}");
            }
        }
    }

    #[test]
    fn random_ops_match_oracle() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for (name, s) in implementations() {
            let mut rng = StdRng::seed_from_u64(0x5EED);
            let mut model = std::collections::BTreeMap::new();
            for _ in 0..10_000 {
                let k = rng.gen_range(1..=96u64);
                match rng.gen_range(0..3) {
                    0 => {
                        let expect = !model.contains_key(&k);
                        if expect {
                            model.insert(k, k);
                        }
                        assert_eq!(s.insert(k, k), expect, "{name} insert {k}");
                    }
                    1 => {
                        assert_eq!(s.delete(k), model.remove(&k), "{name} delete {k}");
                    }
                    _ => {
                        assert_eq!(s.search(k), model.get(&k).copied(), "{name} search {k}");
                    }
                }
            }
            assert_eq!(s.len(), model.len(), "{name}");
        }
    }

    #[test]
    fn concurrent_disjoint_ranges() {
        const THREADS: u64 = 8;
        const RANGE: u64 = 300;
        for (name, s) in implementations() {
            let mut handles = Vec::new();
            for t in 0..THREADS {
                let s = Arc::clone(&s);
                handles.push(std::thread::spawn(move || {
                    let lo = t * RANGE + 1;
                    for k in lo..lo + RANGE {
                        assert!(s.insert(k, k * 3));
                    }
                    for k in lo..lo + RANGE {
                        assert_eq!(s.search(k), Some(k * 3));
                    }
                    for k in (lo..lo + RANGE).step_by(3) {
                        assert_eq!(s.delete(k), Some(k * 3));
                    }
                }));
            }
            reclaim::offline_while(|| {
                for h in handles {
                    h.join().unwrap();
                }
            });
            let expected = THREADS * RANGE - THREADS * RANGE.div_ceil(3);
            assert_eq!(s.len() as u64, expected, "{name}");
        }
    }

    #[test]
    fn concurrent_contended_net_count() {
        use std::sync::atomic::{AtomicI64, Ordering};
        const THREADS: u64 = 8;
        const OPS: u64 = 15_000;
        const KEYS: u64 = 48;
        for (name, s) in implementations() {
            let net = Arc::new(AtomicI64::new(0));
            let mut handles = Vec::new();
            for t in 0..THREADS {
                let s = Arc::clone(&s);
                let net = Arc::clone(&net);
                handles.push(std::thread::spawn(move || {
                    let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                    for _ in 0..OPS {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % KEYS + 1;
                        match x % 3 {
                            0 => {
                                if s.insert(k, k * 11) {
                                    net.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            1 => {
                                if s.delete(k).is_some() {
                                    net.fetch_sub(1, Ordering::Relaxed);
                                }
                            }
                            _ => {
                                if let Some(v) = s.search(k) {
                                    assert_eq!(v, k * 11, "{name}: corrupt value");
                                }
                            }
                        }
                    }
                }));
            }
            reclaim::offline_while(|| {
                for h in handles {
                    h.join().unwrap();
                }
            });
            assert_eq!(s.len() as i64, net.load(Ordering::Relaxed), "{name}");
        }
    }
}
