//! Skip lists (§5.3 of the OPTIK paper).
//!
//! Figure 11 compares five algorithms, all implemented here:
//!
//! | paper name | type                      | design |
//! |------------|---------------------------|--------|
//! | `herlihy`  | [`HerlihySkipList`]       | optimistic skip list, Herlihy/Lev/Luchangco/Shavit \[29\] |
//! | `herl-optik`| [`HerlihyOptikSkipList`] | same, with `lock_version` replacing per-level fine validation |
//! | `optik1`   | [`OptikSkipList1`]        | new OPTIK design; fine-grained re-validation on version failure |
//! | `optik2`   | [`OptikSkipList2`]        | new OPTIK design; immediate restart on version failure |
//! | `fraser`   | [`FraserSkipList`]        | lock-free, per-level marked pointers (Fraser \[15\]) |
//!
//! The paper notes skip lists are "somewhat of an exception" for OPTIK:
//! per-node version granularity covers *all* of a node's next pointers, so
//! updates at one level falsely conflict with validation at another. The
//! OPTIK designs win anyway under contention because failed validation
//! costs one CAS instead of a lock acquisition.

#![warn(missing_docs)]
// Indexing preds/succs by level is the idiomatic way to express skip-list
// algorithms (matching the paper's pseudocode); zip-based iteration would
// obscure the per-level lockstep.
#![allow(clippy::needless_range_loop)]

mod fraser;
mod herlihy;
mod herlihy_optik;
mod level;
mod optik_sl;

pub use fraser::FraserSkipList;
pub use herlihy::HerlihySkipList;
pub use herlihy_optik::HerlihyOptikSkipList;
pub use level::{random_level, MAX_LEVEL};
pub use optik_sl::{OptikSkipList1, OptikSkipList2};

pub use optik_harness::api::{ConcurrentMap, ConcurrentSet, Key, OrderedMap, Val};

/// Sentinel key of the head tower.
pub const HEAD_KEY: Key = 0;
/// Sentinel key of the tail tower.
pub const TAIL_KEY: Key = u64::MAX;

/// Consecutive per-step validation failures a range traversal tolerates
/// before falling back to a locked step (see each list's `OrderedMap`
/// impl). Matches the kv store's optimistic-attempt budget in spirit:
/// cheap retries first, guaranteed progress after.
pub(crate) const RANGE_OPTIMISTIC_ATTEMPTS: usize = 8;

#[inline]
pub(crate) fn assert_user_key(key: Key) {
    debug_assert!(
        key > HEAD_KEY && key < TAIL_KEY,
        "user keys must be in (0, u64::MAX)"
    );
}

/// Clamps a user-supplied range bound below the tail sentinel.
#[inline]
pub(crate) fn clamp_hi(hi: Key) -> Key {
    hi.min(TAIL_KEY - 1)
}

#[cfg(test)]
mod cross_tests {
    use super::*;
    use std::sync::Arc;

    fn implementations() -> Vec<(&'static str, Arc<dyn ConcurrentSet>)> {
        vec![
            ("herlihy", Arc::new(HerlihySkipList::new())),
            ("herl-optik", Arc::new(HerlihyOptikSkipList::new())),
            ("optik1", Arc::new(OptikSkipList1::new())),
            ("optik2", Arc::new(OptikSkipList2::new())),
            ("fraser", Arc::new(FraserSkipList::new())),
        ]
    }

    #[test]
    fn roundtrip_semantics() {
        for (name, s) in implementations() {
            assert!(s.is_empty(), "{name}");
            assert!(s.insert(50, 500), "{name}");
            assert!(s.insert(30, 300), "{name}");
            assert!(s.insert(70, 700), "{name}");
            assert!(!s.insert(50, 501), "{name}: duplicate");
            assert_eq!(s.search(30), Some(300), "{name}");
            assert_eq!(s.search(50), Some(500), "{name}");
            assert_eq!(s.search(40), None, "{name}");
            assert_eq!(s.delete(50), Some(500), "{name}");
            assert_eq!(s.delete(50), None, "{name}");
            assert_eq!(s.len(), 2, "{name}");
        }
    }

    #[test]
    fn large_sequential_volume() {
        for (name, s) in implementations() {
            for k in 1..=2000u64 {
                assert!(s.insert(k, k * 2), "{name} insert {k}");
            }
            assert_eq!(s.len(), 2000, "{name}");
            for k in 1..=2000u64 {
                assert_eq!(s.search(k), Some(k * 2), "{name} search {k}");
            }
            for k in (1..=2000u64).step_by(2) {
                assert_eq!(s.delete(k), Some(k * 2), "{name} delete {k}");
            }
            assert_eq!(s.len(), 1000, "{name}");
            for k in (1..=2000u64).step_by(2) {
                assert_eq!(s.search(k), None, "{name}");
            }
            for k in (2..=2000u64).step_by(2) {
                assert_eq!(s.search(k), Some(k * 2), "{name}");
            }
        }
    }

    #[test]
    fn random_ops_match_oracle() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for (name, s) in implementations() {
            let mut rng = StdRng::seed_from_u64(0x5EED);
            let mut model = std::collections::BTreeMap::new();
            for _ in 0..10_000 {
                let k = rng.gen_range(1..=96u64);
                match rng.gen_range(0..3) {
                    0 => {
                        let expect = !model.contains_key(&k);
                        if expect {
                            model.insert(k, k);
                        }
                        assert_eq!(s.insert(k, k), expect, "{name} insert {k}");
                    }
                    1 => {
                        assert_eq!(s.delete(k), model.remove(&k), "{name} delete {k}");
                    }
                    _ => {
                        assert_eq!(s.search(k), model.get(&k).copied(), "{name} search {k}");
                    }
                }
            }
            assert_eq!(s.len(), model.len(), "{name}");
        }
    }

    #[test]
    fn concurrent_disjoint_ranges() {
        const THREADS: u64 = 8;
        const RANGE: u64 = 300;
        for (name, s) in implementations() {
            let mut handles = Vec::new();
            for t in 0..THREADS {
                let s = Arc::clone(&s);
                handles.push(std::thread::spawn(move || {
                    let lo = t * RANGE + 1;
                    for k in lo..lo + RANGE {
                        assert!(s.insert(k, k * 3));
                    }
                    for k in lo..lo + RANGE {
                        assert_eq!(s.search(k), Some(k * 3));
                    }
                    for k in (lo..lo + RANGE).step_by(3) {
                        assert_eq!(s.delete(k), Some(k * 3));
                    }
                }));
            }
            reclaim::offline_while(|| {
                for h in handles {
                    h.join().unwrap();
                }
            });
            let expected = THREADS * RANGE - THREADS * RANGE.div_ceil(3);
            assert_eq!(s.len() as u64, expected, "{name}");
        }
    }

    fn ordered_implementations() -> Vec<(&'static str, Arc<dyn OrderedMap>)> {
        vec![
            ("herlihy", Arc::new(HerlihySkipList::new())),
            ("herl-optik", Arc::new(HerlihyOptikSkipList::new())),
            ("optik1", Arc::new(OptikSkipList1::new())),
            ("optik2", Arc::new(OptikSkipList2::new())),
            ("fraser", Arc::new(FraserSkipList::new())),
        ]
    }

    #[test]
    fn map_upsert_roundtrip() {
        for (name, m) in ordered_implementations() {
            assert_eq!(m.put(10, 100), None, "{name}");
            assert_eq!(m.put(10, 101), Some(100), "{name}: in-place update");
            assert_eq!(m.get(10), Some(101), "{name}");
            assert_eq!(m.put(5, 50), None, "{name}");
            assert_eq!(m.remove(10), Some(101), "{name}");
            assert_eq!(m.get(10), None, "{name}");
            assert_eq!(m.remove(10), None, "{name}");
            assert_eq!(m.put(10, 102), None, "{name}: reinsert after remove");
            assert_eq!(ConcurrentMap::len(m.as_ref()), 2, "{name}");
        }
    }

    #[test]
    fn range_matches_btreemap_windows() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for (name, m) in ordered_implementations() {
            let mut rng = StdRng::seed_from_u64(0x0A11CE);
            let mut model = std::collections::BTreeMap::new();
            for _ in 0..4_000 {
                let k = rng.gen_range(1..=128u64);
                if rng.gen_range(0..3) < 2 {
                    model.insert(k, k * 7);
                    m.put(k, k * 7);
                } else {
                    assert_eq!(m.remove(k), model.remove(&k), "{name} remove {k}");
                }
                if rng.gen_range(0..16) == 0 {
                    let lo = rng.gen_range(1..=128u64);
                    let hi = rng.gen_range(lo..=160u64);
                    let got = m.range_collect(lo, hi);
                    let want: Vec<(u64, u64)> =
                        model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                    assert_eq!(got, want, "{name} range [{lo}, {hi}]");
                }
            }
            // Full sweep == for_each == model.
            let full = m.range_collect(1, u64::MAX - 1);
            let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            assert_eq!(full, want, "{name} full range");
            let mut each = Vec::new();
            m.for_each(&mut |k, v| each.push((k, v)));
            assert_eq!(each, want, "{name} for_each");
        }
    }

    #[test]
    fn concurrent_ranges_stay_sorted_and_unique() {
        use std::sync::atomic::{AtomicBool, Ordering};
        for (name, m) in ordered_implementations() {
            // Stable backbone the scans must always observe.
            for k in (10..=200u64).step_by(10) {
                m.put(k, k);
            }
            let stop = Arc::new(AtomicBool::new(false));
            let mut churners = Vec::new();
            for t in 0..3u64 {
                let m = Arc::clone(&m);
                let stop = Arc::clone(&stop);
                churners.push(std::thread::spawn(move || {
                    let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                    while !stop.load(Ordering::Relaxed) {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % 200 + 1;
                        if k % 10 == 0 {
                            continue; // never touch the backbone
                        }
                        if x & 1 == 0 {
                            m.put(k, k);
                        } else {
                            m.remove(k);
                        }
                    }
                    reclaim::offline();
                }));
            }
            for round in 0..synchro::stress::ops(300) {
                let lo = (round % 50) * 2 + 1;
                let got = m.range_collect(lo, 220);
                assert!(
                    got.windows(2).all(|w| w[0].0 < w[1].0),
                    "{name}: unsorted or duplicated keys in {got:?}"
                );
                for &(k, v) in &got {
                    assert_eq!(v, k, "{name}: foreign value");
                }
                // Backbone keys in range must all be present.
                for k in (10..=200u64).step_by(10).filter(|&k| k >= lo) {
                    assert!(
                        got.iter().any(|&(g, _)| g == k),
                        "{name}: scan missed stable key {k} (lo={lo})"
                    );
                }
                reclaim::quiescent();
            }
            stop.store(true, Ordering::Relaxed);
            for h in churners {
                h.join().unwrap();
            }
            reclaim::online();
        }
    }

    #[test]
    fn concurrent_upserts_on_one_key_never_tear() {
        use std::sync::atomic::{AtomicBool, Ordering};
        for (name, m) in ordered_implementations() {
            m.put(42, 1_000);
            let stop = Arc::new(AtomicBool::new(false));
            let mut writers = Vec::new();
            for t in 0..3u64 {
                let m = Arc::clone(&m);
                let stop = Arc::clone(&stop);
                writers.push(std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // Every binding this test ever writes is >= 1000.
                        m.put(42, 1_000 + t * 1_000_000 + i);
                        i += 1;
                    }
                    reclaim::offline();
                }));
            }
            for _ in 0..synchro::stress::ops(5_000) {
                let v = m.get(42).unwrap_or_else(|| panic!("{name}: key vanished"));
                assert!(v >= 1_000, "{name}: torn or foreign value {v}");
                reclaim::quiescent();
            }
            stop.store(true, Ordering::Relaxed);
            for h in writers {
                h.join().unwrap();
            }
            reclaim::online();
        }
    }

    #[test]
    fn concurrent_contended_net_count() {
        use std::sync::atomic::{AtomicI64, Ordering};
        const THREADS: u64 = 8;
        const OPS: u64 = 15_000;
        const KEYS: u64 = 48;
        for (name, s) in implementations() {
            let net = Arc::new(AtomicI64::new(0));
            let mut handles = Vec::new();
            for t in 0..THREADS {
                let s = Arc::clone(&s);
                let net = Arc::clone(&net);
                handles.push(std::thread::spawn(move || {
                    let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                    for _ in 0..OPS {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % KEYS + 1;
                        match x % 3 {
                            0 => {
                                if s.insert(k, k * 11) {
                                    net.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            1 => {
                                if s.delete(k).is_some() {
                                    net.fetch_sub(1, Ordering::Relaxed);
                                }
                            }
                            _ => {
                                if let Some(v) = s.search(k) {
                                    assert_eq!(v, k * 11, "{name}: corrupt value");
                                }
                            }
                        }
                    }
                }));
            }
            reclaim::offline_while(|| {
                for h in handles {
                    h.join().unwrap();
                }
            });
            assert_eq!(s.len() as i64, net.load(Ordering::Relaxed), "{name}");
        }
    }
}
