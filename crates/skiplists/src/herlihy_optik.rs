//! Herlihy's optimistic skip list with OPTIK validation (*herl-optik*).
//!
//! The paper's first skip-list optimization (§5.3): "we simplify validation
//! in the optimistic skip list by Herlihy et al. using
//! `optik_lock_version`. If the validation is successful, then the
//! corresponding node has not been modified, thus we do not need to
//! validate the optimistic results in another way" — i.e. the per-level
//! `!pred.marked && !succ.marked && pred.next[level] == succ` checks are
//! skipped whenever the predecessor's version survived from the traversal
//! to the lock acquisition.
//!
//! Every modifying critical section releases with `unlock` (version bump);
//! aborting ones use `revert`, so versions track modifications exactly.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use optik::{OptikLock, OptikVersioned, Version};
use reclaim::NodePool;
use synchro::Backoff;

use crate::level::{random_level, MAX_LEVEL};
use crate::{
    assert_user_key, clamp_hi, ConcurrentMap, ConcurrentSet, Key, OrderedMap, Val, HEAD_KEY,
    RANGE_OPTIMISTIC_ATTEMPTS, TAIL_KEY,
};

pub(crate) struct Node {
    key: Key,
    /// In-place-updatable binding: swapped under this node's OPTIK lock,
    /// read lock-free.
    val: AtomicU64,
    top_level: usize,
    lock: OptikVersioned,
    marked: AtomicBool,
    fully_linked: AtomicBool,
    /// Inline fixed-height tower (only `0..=top_level` is used): keeps the
    /// node free of drop glue so it can live in a type-stable pool slot.
    next: [AtomicPtr<Node>; MAX_LEVEL],
}

impl Node {
    fn make(key: Key, val: Val, top_level: usize, linked: bool) -> Self {
        Node {
            key,
            val: AtomicU64::new(val),
            top_level,
            lock: OptikVersioned::new(),
            marked: AtomicBool::new(false),
            fully_linked: AtomicBool::new(linked),
            next: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
        }
    }
}

/// Herlihy's skip list with OPTIK-validated predecessor locking.
pub struct HerlihyOptikSkipList {
    head: *mut Node,
    /// Type-stable node pool. Deleters bump their victim's version before
    /// retiring it, and no version read survives across operations, so
    /// recycled slots (fresh lock included) are plainly re-initialized
    /// after their grace period.
    pool: Arc<NodePool<Node>>,
}

// SAFETY: per-node OPTIK locks serialize updates; searches read atomic
// fields of QSBR-protected nodes.
unsafe impl Send for HerlihyOptikSkipList {}
unsafe impl Sync for HerlihyOptikSkipList {}

/// Bookkeeping for the set of currently-held predecessor locks.
struct HeldPreds {
    /// Distinct locked nodes in acquisition order, with whether each was
    /// modified (decides unlock-vs-revert on release).
    nodes: Vec<(*mut Node, bool)>,
}

impl HeldPreds {
    fn new() -> Self {
        Self {
            nodes: Vec::with_capacity(MAX_LEVEL),
        }
    }

    fn holds(&self, p: *mut Node) -> bool {
        self.nodes.iter().any(|&(n, _)| n == p)
    }

    fn push(&mut self, p: *mut Node) {
        self.nodes.push((p, false));
    }

    fn mark_modified(&mut self, p: *mut Node) {
        if let Some(e) = self.nodes.iter_mut().find(|(n, _)| *n == p) {
            e.1 = true;
        }
    }

    /// Releases everything: bump versions of modified nodes, revert others.
    ///
    /// # Safety
    ///
    /// All recorded nodes must be locked by the caller and alive.
    unsafe fn release_all(&mut self) {
        for &(p, modified) in &self.nodes {
            // SAFETY: per contract.
            unsafe {
                if modified {
                    (*p).lock.unlock();
                } else {
                    (*p).lock.revert();
                }
            }
        }
        self.nodes.clear();
    }
}

impl HerlihyOptikSkipList {
    /// Creates an empty skip list.
    pub fn new() -> Self {
        Self::from_pool(NodePool::new())
    }

    /// Creates an empty skip list with an arena-backed node pool.
    pub fn new_arena() -> Self {
        Self::from_pool(NodePool::arena())
    }

    fn from_pool(pool: Arc<NodePool<Node>>) -> Self {
        let tail = pool.alloc_init(|| Node::make(TAIL_KEY, 0, MAX_LEVEL - 1, true));
        let head = pool.alloc_init(|| Node::make(HEAD_KEY, 0, MAX_LEVEL - 1, true));
        // SAFETY: fresh nodes.
        unsafe {
            for l in 0..MAX_LEVEL {
                (*head).next[l].store(tail, Ordering::Relaxed);
            }
        }
        Self { head, pool }
    }

    /// Number of elements (O(n); exact only in quiescence). Inherent so
    /// callers with both [`ConcurrentSet`] and [`ConcurrentMap`] in scope
    /// need no disambiguation.
    pub fn len(&self) -> usize {
        ConcurrentSet::len(self)
    }

    /// Whether the structure is empty (see [`HerlihyOptikSkipList::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `find` with per-level predecessor *version* tracking: each
    /// predecessor's version is read before its `next[l]` pointer.
    ///
    /// # Safety
    ///
    /// QSBR grace period required.
    unsafe fn find_tracking(
        &self,
        key: Key,
        preds: &mut [*mut Node; MAX_LEVEL],
        predvs: &mut [Version; MAX_LEVEL],
        succs: &mut [*mut Node; MAX_LEVEL],
    ) -> Option<usize> {
        // SAFETY: per contract.
        unsafe {
            let mut lfound = None;
            let mut pred = self.head;
            let mut predv = (*pred).lock.get_version();
            for l in (0..MAX_LEVEL).rev() {
                let mut cur = (*pred).next[l].load(Ordering::Acquire);
                synchro::prefetch::read(cur);
                while (*cur).key < key {
                    pred = cur;
                    predv = (*pred).lock.get_version();
                    cur = (*pred).next[l].load(Ordering::Acquire);
                    synchro::prefetch::read(cur);
                }
                if lfound.is_none() && (*cur).key == key {
                    lfound = Some(l);
                }
                preds[l] = pred;
                predvs[l] = predv;
                succs[l] = cur;
            }
            lfound
        }
    }

    /// Acquires `pred`'s lock for level `l` and decides validity: either
    /// the version validated (OPTIK fast path) or the Herlihy fine-grained
    /// check passes.
    ///
    /// # Safety
    ///
    /// Grace period; `held` tracks what we lock.
    unsafe fn lock_and_validate(
        held: &mut HeldPreds,
        pred: *mut Node,
        predv: Version,
        l: usize,
        succ_check: impl Fn(*mut Node, usize) -> bool,
    ) -> bool {
        // SAFETY: per contract.
        unsafe {
            if !held.holds(pred) {
                let version_ok = (*pred).lock.lock_version(predv);
                held.push(pred);
                // A marked predecessor is never valid, and the version
                // check alone cannot rule it out: if the node was unlinked
                // *before* the traversal read its version, nothing changes
                // the version afterwards, so `version_ok` still holds. The
                // version only vouches for the window after the read; the
                // marked flag covers everything before it. (Once we hold
                // the lock, nobody else can mark it, so one check here
                // suffices for every later level this pred covers.)
                if (*pred).marked.load(Ordering::Acquire) {
                    return false;
                }
                if version_ok {
                    // OPTIK fast path: alive, and unmodified since the
                    // traversal — no fine-grained validation needed.
                    return true;
                }
            } else if (*pred).lock.get_version() == predv.wrapping_add(1) {
                // Already held by us and the recorded version immediately
                // precedes the held (odd) one: unchanged since traversal.
                return true;
            }
            // Fine-grained validation (the original Herlihy checks);
            // `marked` was checked at acquisition and cannot be set while
            // we hold the lock.
            succ_check(pred, l)
        }
    }
}

impl Default for HerlihyOptikSkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentSet for HerlihyOptikSkipList {
    fn search(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        // SAFETY: grace period.
        unsafe {
            let mut pred = self.head;
            let mut found: *mut Node = std::ptr::null_mut();
            for l in (0..MAX_LEVEL).rev() {
                let mut cur = (*pred).next[l].load(Ordering::Acquire);
                synchro::prefetch::read(cur);
                while (*cur).key < key {
                    pred = cur;
                    cur = (*cur).next[l].load(Ordering::Acquire);
                    synchro::prefetch::read(cur);
                }
                if (*cur).key == key {
                    found = cur;
                    break;
                }
            }
            (!found.is_null()
                && (*found).fully_linked.load(Ordering::Acquire)
                && !(*found).marked.load(Ordering::Acquire))
            .then(|| (*found).val.load(Ordering::Acquire))
        }
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        assert_user_key(key);
        reclaim::quiescent();
        let top_level = random_level(key) - 1;
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut predvs = [0; MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        let mut bo = Backoff::adaptive();
        loop {
            // SAFETY: grace period per attempt.
            unsafe {
                if let Some(lf) = self.find_tracking(key, &mut preds, &mut predvs, &mut succs) {
                    let found = succs[lf];
                    if !(*found).marked.load(Ordering::Acquire) {
                        while !(*found).fully_linked.load(Ordering::Acquire) {
                            synchro::relax();
                        }
                        return false;
                    }
                    bo.backoff();
                    continue;
                }
                let mut held = HeldPreds::new();
                let mut valid = true;
                for l in 0..=top_level {
                    let succ = succs[l];
                    valid = Self::lock_and_validate(&mut held, preds[l], predvs[l], l, |p, l| {
                        !(*succ).marked.load(Ordering::Acquire)
                            && (*p).next[l].load(Ordering::Acquire) == succ
                    });
                    if !valid {
                        break;
                    }
                }
                if !valid {
                    held.release_all();
                    bo.backoff();
                    continue;
                }
                let newnode = self
                    .pool
                    .alloc_init(|| Node::make(key, val, top_level, false));
                for l in 0..=top_level {
                    (*newnode).next[l].store(succs[l], Ordering::Relaxed);
                }
                for l in 0..=top_level {
                    (*preds[l]).next[l].store(newnode, Ordering::Release);
                    held.mark_modified(preds[l]);
                }
                (*newnode).fully_linked.store(true, Ordering::Release);
                held.release_all();
                return true;
            }
        }
    }

    fn delete(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut predvs = [0; MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        let mut victim: *mut Node = std::ptr::null_mut();
        let mut is_marked = false;
        let mut top_level = 0usize;
        let mut bo = Backoff::adaptive();
        loop {
            // SAFETY: grace period per attempt; our marked victim is pinned.
            unsafe {
                let lf = self.find_tracking(key, &mut preds, &mut predvs, &mut succs);
                let ok = is_marked
                    || match lf {
                        Some(lf) => {
                            let c = succs[lf];
                            (*c).fully_linked.load(Ordering::Acquire)
                                && (*c).top_level == lf
                                && !(*c).marked.load(Ordering::Acquire)
                        }
                        None => false,
                    };
                if !ok {
                    return None;
                }
                if !is_marked {
                    victim = succs[lf.expect("found")];
                    top_level = (*victim).top_level;
                    (*victim).lock.lock();
                    if (*victim).marked.load(Ordering::Acquire) {
                        // Not modified by us: revert.
                        (*victim).lock.revert();
                        return None;
                    }
                    (*victim).marked.store(true, Ordering::Release);
                    is_marked = true;
                }
                let mut held = HeldPreds::new();
                let mut valid = true;
                for l in 0..=top_level {
                    valid = Self::lock_and_validate(&mut held, preds[l], predvs[l], l, |p, l| {
                        (*p).next[l].load(Ordering::Acquire) == victim
                    });
                    if !valid {
                        break;
                    }
                }
                if !valid {
                    held.release_all();
                    bo.backoff();
                    continue;
                }
                for l in (0..=top_level).rev() {
                    (*preds[l]).next[l]
                        .store((*victim).next[l].load(Ordering::Relaxed), Ordering::Release);
                    held.mark_modified(preds[l]);
                }
                // Read under the victim's lock: serialized against the
                // in-place swaps of `ConcurrentMap::put`.
                let val = (*victim).val.load(Ordering::Relaxed);
                // Victim was modified (marked + unlinked): bump its version.
                (*victim).lock.unlock();
                held.release_all();
                // SAFETY: fully unlinked; sole deleter.
                reclaim::with_local(|h| self.pool.retire(victim, h));
                return Some(val);
            }
        }
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        // SAFETY: grace period.
        unsafe {
            let mut n = 0;
            let mut cur = (*self.head).next[0].load(Ordering::Acquire);
            while (*cur).key != TAIL_KEY {
                if !(*cur).marked.load(Ordering::Relaxed)
                    && (*cur).fully_linked.load(Ordering::Relaxed)
                {
                    n += 1;
                }
                cur = (*cur).next[0].load(Ordering::Acquire);
            }
            n
        }
    }
}

impl ConcurrentMap for HerlihyOptikSkipList {
    fn get(&self, key: Key) -> Option<Val> {
        ConcurrentSet::search(self, key)
    }

    /// In-place upsert under the node's OPTIK lock. The lock excludes the
    /// deleter (which holds it across mark + value read), so the swap and
    /// the delete serialize; the release is a `revert` because a value
    /// swap changes no `next` pointer — the only thing concurrent
    /// traversals validate this node's version for.
    fn put(&self, key: Key, val: Val) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut predvs = [0; MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        let mut bo = Backoff::adaptive();
        loop {
            // SAFETY: grace period per attempt.
            unsafe {
                if let Some(lf) = self.find_tracking(key, &mut preds, &mut predvs, &mut succs) {
                    let n = succs[lf];
                    if (*n).marked.load(Ordering::Acquire) {
                        bo.backoff();
                        continue;
                    }
                    while !(*n).fully_linked.load(Ordering::Acquire) {
                        synchro::relax();
                    }
                    (*n).lock.lock();
                    if (*n).marked.load(Ordering::Acquire) {
                        // Claimed by a deleter while we waited; we modified
                        // nothing.
                        (*n).lock.revert();
                        bo.backoff();
                        continue;
                    }
                    let prev = (*n).val.swap(val, Ordering::AcqRel);
                    (*n).lock.revert();
                    return Some(prev);
                }
            }
            if ConcurrentSet::insert(self, key, val) {
                return None;
            }
            bo.backoff();
        }
    }

    fn remove(&self, key: Key) -> Option<Val> {
        ConcurrentSet::delete(self, key)
    }

    fn len(&self) -> usize {
        ConcurrentSet::len(self)
    }

    fn for_each(&self, f: &mut dyn FnMut(Key, Val)) {
        self.range(HEAD_KEY + 1, TAIL_KEY - 1, f);
    }
}

impl OrderedMap for HerlihyOptikSkipList {
    /// OPTIK-validated level-0 walk: the predecessor's version is read on
    /// arrival and validated after the successor's fields are read — the
    /// read-side half of the OPTIK pattern, per step. Interference
    /// re-descends to just past the last emitted key (sorted,
    /// duplicate-free output); `RANGE_OPTIMISTIC_ATTEMPTS` consecutive
    /// failures fall back to one step under the predecessor's lock.
    fn range(&self, lo: Key, hi: Key, f: &mut dyn FnMut(Key, Val)) {
        let hi = clamp_hi(hi);
        reclaim::quiescent();
        let mut from = lo.max(HEAD_KEY + 1);
        let mut fails = 0usize;
        let mut bo = Backoff::adaptive();
        'restart: loop {
            if from > hi {
                return;
            }
            // SAFETY: grace period.
            unsafe {
                let mut pred = self.head;
                let mut predv = (*pred).lock.get_version();
                for l in (0..MAX_LEVEL).rev() {
                    let mut cur = (*pred).next[l].load(Ordering::Acquire);
                    synchro::prefetch::read(cur);
                    while (*cur).key < from {
                        pred = cur;
                        predv = (*pred).lock.get_version();
                        cur = (*pred).next[l].load(Ordering::Acquire);
                        synchro::prefetch::read(cur);
                    }
                }
                if fails >= RANGE_OPTIMISTIC_ATTEMPTS {
                    // Locked fallback. Deleters release their victims'
                    // locks in this design, so a blocking acquisition
                    // always returns; a marked pred just re-descends. The
                    // monotonic floor applies exactly as on the optimistic
                    // path: a successor below `from` is neither emitted
                    // nor allowed to move the floor backward.
                    (*pred).lock.lock();
                    if (*pred).marked.load(Ordering::Acquire) {
                        (*pred).lock.revert();
                        bo.backoff();
                        continue 'restart;
                    }
                    let cur = (*pred).next[0].load(Ordering::Acquire);
                    let key = (*cur).key;
                    if key > hi {
                        (*pred).lock.revert();
                        return;
                    }
                    if key >= from {
                        if (*cur).fully_linked.load(Ordering::Acquire)
                            && !(*cur).marked.load(Ordering::Acquire)
                        {
                            f(key, (*cur).val.load(Ordering::Acquire));
                        }
                        from = key + 1;
                        fails = 0;
                    }
                    (*pred).lock.revert();
                    continue 'restart;
                }
                loop {
                    let cur = (*pred).next[0].load(Ordering::Acquire);
                    let key = (*cur).key;
                    if key > hi {
                        return;
                    }
                    let live = (*cur).fully_linked.load(Ordering::Acquire)
                        && !(*cur).marked.load(Ordering::Acquire);
                    let val = (*cur).val.load(Ordering::Acquire);
                    let nextv = (*cur).lock.get_version();
                    if !(*pred).lock.validate(predv) {
                        fails += 1;
                        bo.backoff();
                        continue 'restart;
                    }
                    if live && key >= from {
                        f(key, val);
                        from = key + 1;
                        fails = 0;
                    }
                    pred = cur;
                    predv = nextv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_roundtrip() {
        let s = HerlihyOptikSkipList::new();
        assert!(s.insert(10, 100));
        assert!(s.insert(5, 50));
        assert!(!s.insert(10, 999));
        assert_eq!(s.search(5), Some(50));
        assert_eq!(s.delete(10), Some(100));
        assert_eq!(s.delete(10), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn versions_bump_only_on_modification() {
        let s = HerlihyOptikSkipList::new();
        assert!(s.insert(5, 50));
        // SAFETY: single-threaded inspection.
        let headv = unsafe { (*s.head).lock.get_version() };
        // A failed insert of the same key must not touch the head version.
        assert!(!s.insert(5, 51));
        assert_eq!(unsafe { (*s.head).lock.get_version() }, headv);
        // Deleting 5 modifies head (its level-0 pred): version must move.
        assert_eq!(s.delete(5), Some(50));
        assert_ne!(unsafe { (*s.head).lock.get_version() }, headv);
    }

    #[test]
    fn dead_predecessor_never_validates_under_churn() {
        // Regression test: a traversal can walk onto a predecessor that
        // was marked+unlinked *before* the traversal read its version; the
        // version then "validates" (nothing changed after the read), and
        // without the marked check the operation writes through a retired
        // node — lost updates and use-after-free. High-rate delete/insert
        // churn of neighbouring keys with towers overlapping reproduces
        // this within milliseconds.
        let s = Arc::new(HerlihyOptikSkipList::new());
        for k in (10..200u64).step_by(2) {
            assert!(s.insert(k, k));
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                let mut net = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = 10 + (x % 190);
                    if x & 1 == 0 {
                        if s.insert(k, k) {
                            net += 1;
                        }
                    } else if s.delete(k).is_some() {
                        net -= 1;
                    }
                }
                reclaim::offline();
                net
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
        let net: i64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        reclaim::online();
        // Lost updates would break this exact accounting; corruption
        // typically panics/crashes long before.
        assert_eq!(s.len() as i64, 95 + net);
        for k in 1..=250u64 {
            let _ = s.search(k); // traversals must terminate and not fault
        }
    }

    #[test]
    fn exactly_one_delete_wins() {
        let s = Arc::new(HerlihyOptikSkipList::new());
        for round in 1..=50u64 {
            assert!(s.insert(round, round));
            let mut handles = Vec::new();
            for _ in 0..6 {
                let s = Arc::clone(&s);
                handles.push(std::thread::spawn(move || s.delete(round).is_some()));
            }
            let winners: usize = handles
                .into_iter()
                .map(|h| usize::from(h.join().unwrap()))
                .sum();
            assert_eq!(winners, 1, "round {round}");
        }
        assert!(s.is_empty());
    }
}
