//! Fraser's lock-free skip list [15] (*fraser* in Figure 11).
//!
//! Per-level marked next-pointers (LSB), as in Harris's list generalized
//! to towers:
//!
//! - **insert** links level 0 with a CAS (the linearization point), then
//!   links upper levels with CAS loops, re-searching on failure;
//! - **delete** claims the victim by swapping `FROZEN` into its value
//!   cell — a single CAS that is the linearization point and doubles as
//!   the arbiter against the in-place value swaps of
//!   [`ConcurrentMap::put`] — then marks the victim's next pointers
//!   top-down (level 0 last) and physically snips the victim at every
//!   level;
//! - **searches** snip marked chains they encounter (helping) and treat a
//!   frozen value as absent.
//!
//! # Reclamation discipline
//!
//! A node may be *re-published* after it is logically deleted: insert
//! links levels bottom-up while delete marks them top-down, so a lagging
//! inserter's pred-link CAS can re-link its own just-deleted node at an
//! upper level **after** the deleter's cleanup pass completed. Retiring
//! the node at that point is fatal — QSBR only protects references
//! acquired *before* retirement, and a fresh traversal can reach the
//! re-published node afterwards. Therefore retirement is coordinated
//! between the two parties that can touch the node:
//!
//! - the **level-0 mark winner** unlinks the victim at every level
//!   ([`FraserSkipList::unlink_node`], an identity-based per-level sweep
//!   that is immune to equal-key ties), then tries to CAS the node's
//!   `state` from LINKING to RETIRE_HANDOFF: on success the node's own
//!   inserter is still running and inherits the retirement; otherwise
//!   (state == LINK_DONE) the deleter retires;
//! - the **inserter**, when it finishes (normally or by abandoning a
//!   deleted node), unlinks the node again if it was marked (covering any
//!   re-publication it performed), then CASes LINKING → LINK_DONE; if
//!   that fails it inherited the handoff and retires the node itself.
//!
//! Either way the handoff picks a *single* reclamation owner, after the
//! final unlink that owner performed. Even so, frozen successor pointers
//! allow **re-publication chains** (an unlink sweep re-installs a frozen
//! pointer whose target is itself long-deleted), so no fixed number of
//! grace periods bounds a dead node's reachability. Slots are therefore
//! **never re-circulated**: nodes come out of a type-stable [`NodePool`]
//! (magazine-cached allocation), but retired ones park on a deferred list
//! ([`FraserSkipList::retire_deferred`]) until the structure — and with it
//! the pool — drops. Correct by construction, at the cost of holding
//! deleted nodes' memory for the structure's lifetime. See
//! EXPERIMENTS.md, correctness note 3, for the full analysis.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use reclaim::NodePool;
use synchro::Backoff;

use crate::level::{random_level, MAX_LEVEL};
use crate::{
    assert_user_key, clamp_hi, ConcurrentMap, ConcurrentSet, Key, OrderedMap, Val, HEAD_KEY,
    TAIL_KEY,
};

const MARK: usize = 1;

/// Tombstone the deleter swaps into a node's value cell: the **single-CAS
/// linearization point of a removal**, value-wise. With in-place upserts
/// (`ConcurrentMap::put`) a lock-free node needs one cell that serializes
/// "replace the value" against "remove the binding"; the value cell itself
/// is that cell. Puts CAS the value and refuse the tombstone; reads treat
/// it as absent. Consequence: `u64::MAX` is reserved and cannot be stored
/// as a user value in this structure.
const FROZEN: Val = u64::MAX;

#[inline]
fn marked(w: usize) -> bool {
    w & MARK != 0
}

#[inline]
fn unmark(w: usize) -> usize {
    w & !MARK
}

/// Insert still linking upper levels (may yet re-publish the node).
const LINKING: usize = 0;
/// Insert finished; the node can be retired by its deleter.
const LINK_DONE: usize = 1;
/// Delete finished first; retirement is handed to the inserter.
const RETIRE_HANDOFF: usize = 2;

pub(crate) struct Node {
    key: Key,
    /// The binding, or `FROZEN` once removed (see the const docs).
    val: AtomicU64,
    top_level: usize,
    /// Insert/delete retirement coordination (see the reclamation notes
    /// in the module docs): LINKING → LINK_DONE (normal) or
    /// LINKING → RETIRE_HANDOFF (deleter finished while the inserter was
    /// still linking; the inserter unlinks its own re-publications and
    /// retires).
    state: AtomicUsize,
    /// Intrusive link for the structure's deferred-reclamation list.
    gc_next: AtomicUsize,
    /// Inline fixed-height tower of marked words (only `0..=top_level` is
    /// used): keeps the node free of drop glue so it can live in a
    /// type-stable pool slot.
    next: [AtomicUsize; MAX_LEVEL],
}

impl Node {
    fn make(key: Key, val: Val, top_level: usize) -> Self {
        Node {
            key,
            val: AtomicU64::new(val),
            top_level,
            state: AtomicUsize::new(LINKING),
            gc_next: AtomicUsize::new(0),
            next: std::array::from_fn(|_| AtomicUsize::new(0)),
        }
    }
}

/// Fraser's lock-free skip list.
pub struct FraserSkipList {
    head: *mut Node,
    /// Head of the deferred-reclamation list (see the module docs: slots
    /// on it are never handed back to the pool during the structure's
    /// lifetime).
    garbage: AtomicUsize,
    /// Type-stable node pool — allocation-only here: the magazine fast
    /// path serves inserts, but re-publication chains forbid recycling,
    /// so retired slots wait on `garbage` until the pool drops.
    pool: Arc<NodePool<Node>>,
}

// SAFETY: all mutation is CAS on next words; QSBR + the single-retirer
// discipline documented above handle reclamation.
unsafe impl Send for FraserSkipList {}
unsafe impl Sync for FraserSkipList {}

impl FraserSkipList {
    /// Creates an empty skip list.
    pub fn new() -> Self {
        Self::from_pool(NodePool::new())
    }

    /// Creates an empty skip list with an arena-backed node pool.
    pub fn new_arena() -> Self {
        Self::from_pool(NodePool::arena())
    }

    fn from_pool(pool: Arc<NodePool<Node>>) -> Self {
        let tail = pool.alloc_init(|| Node::make(TAIL_KEY, 0, MAX_LEVEL - 1));
        let head = pool.alloc_init(|| Node::make(HEAD_KEY, 0, MAX_LEVEL - 1));
        // SAFETY: fresh nodes.
        unsafe {
            for l in 0..MAX_LEVEL {
                (*head).next[l].store(tail as usize, Ordering::Relaxed);
            }
        }
        Self {
            head,
            garbage: AtomicUsize::new(0),
            pool,
        }
    }

    /// Fraser's search: fills per-level unmarked, adjacent `(pred, succ)`
    /// pairs, physically snipping marked chains along the way. Restarts
    /// from scratch whenever a snip CAS fails, so on return the traversed
    /// path was clean. Does **not** retire snipped nodes (the deleter
    /// does).
    ///
    /// # Safety
    ///
    /// QSBR grace period required.
    unsafe fn locate(
        &self,
        key: Key,
        preds: &mut [*mut Node; MAX_LEVEL],
        succs: &mut [*mut Node; MAX_LEVEL],
    ) {
        // SAFETY: per contract; every dereferenced node is grace-protected.
        unsafe {
            'retry: loop {
                let mut pred = self.head;
                for l in (0..MAX_LEVEL).rev() {
                    let mut pred_w = (*pred).next[l].load(Ordering::Acquire);
                    if marked(pred_w) {
                        // pred got deleted under us; restart.
                        continue 'retry;
                    }
                    let mut cur = unmark(pred_w) as *mut Node;
                    loop {
                        // Skip over a chain of marked nodes.
                        let mut cur_w = (*cur).next[l].load(Ordering::Acquire);
                        synchro::prefetch::read(unmark(cur_w) as *const Node);
                        while marked(cur_w) {
                            cur = unmark(cur_w) as *mut Node;
                            cur_w = (*cur).next[l].load(Ordering::Acquire);
                            synchro::prefetch::read(unmark(cur_w) as *const Node);
                        }
                        if (*cur).key < key {
                            pred = cur;
                            pred_w = cur_w;
                            cur = unmark(cur_w) as *mut Node;
                            continue;
                        }
                        // Settle: snip the marked chain (if any).
                        if unmark(pred_w) != cur as usize
                            && (*pred).next[l]
                                .compare_exchange(
                                    pred_w,
                                    cur as usize,
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                )
                                .is_err()
                        {
                            continue 'retry;
                        }
                        preds[l] = pred;
                        succs[l] = cur;
                        break;
                    }
                }
                return;
            }
        }
    }

    /// One cleanup pass (just a search whose results are discarded).
    ///
    /// # Safety
    ///
    /// QSBR grace period required.
    unsafe fn cleanup(&self, key: Key) {
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        // SAFETY: forwarded contract.
        unsafe { self.locate(key, &mut preds, &mut succs) };
    }

    /// Physically unlinks `node` (which must be marked at every level) by
    /// **identity**, level by level, walking each level from the head.
    ///
    /// Unlike a `locate`-based cleanup, this sweep cannot be defeated by
    /// equal-key ties (a search stops at the first key match and misses
    /// marked duplicates behind it) or by entering a level past the node:
    /// it compares pointers, not keys. Predecessors may themselves be
    /// marked; the snip CAS preserves their mark bit.
    ///
    /// # Safety
    ///
    /// QSBR grace period required; `node` must be level-0 marked (its next
    /// pointers are frozen).
    unsafe fn unlink_node(&self, node: *mut Node) {
        // SAFETY: per contract; every walked pointer is grace-protected.
        unsafe {
            let key = (*node).key;
            for l in (0..=(*node).top_level).rev() {
                'level: loop {
                    let mut pred = self.head;
                    loop {
                        let pred_w = (*pred).next[l].load(Ordering::Acquire);
                        let cur = unmark(pred_w) as *mut Node;
                        if cur == node {
                            let next = unmark((*node).next[l].load(Ordering::Acquire));
                            // Keep pred's own mark bit as-is: a marked
                            // pred's pointer may be rewritten (skipping
                            // `node`) but must stay marked.
                            let new_w = next | (pred_w & MARK);
                            if (*pred).next[l]
                                .compare_exchange(
                                    pred_w,
                                    new_w,
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                )
                                .is_ok()
                            {
                                break 'level;
                            }
                            continue 'level; // contention: restart level
                        }
                        if cur.is_null() || (*cur).key > key {
                            break 'level; // not linked at this level
                        }
                        pred = cur;
                    }
                }
            }
        }
    }

    /// Defers `node` to the structure's garbage list.
    ///
    /// Fraser towers admit *re-publication chains*: a lagging thread whose
    /// pre-deletion search returned the node can transiently re-link it,
    /// and an unlink sweep can re-install a frozen successor pointer whose
    /// target was itself deleted long ago. Under quiescent-state
    /// reclamation this means no single grace period bounds the node's
    /// reachability, so recycling a retired slot is unsound without extra
    /// validation machinery (stamp checks on every traversal step). Slots
    /// on this list are therefore never returned to the pool; their memory
    /// is reclaimed wholesale when the pool drops with the structure.
    ///
    /// # Safety
    ///
    /// `node` must be level-0 marked and pushed at most once (the
    /// `state` handshake guarantees a single owner).
    unsafe fn retire_deferred(&self, node: *mut Node) {
        // SAFETY: single pusher per node (handshake); gc_next is unused
        // until the node is pushed.
        unsafe {
            let mut head = self.garbage.load(Ordering::Relaxed);
            loop {
                (*node).gc_next.store(head, Ordering::Relaxed);
                match self.garbage.compare_exchange_weak(
                    head,
                    node as usize,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return,
                    Err(h) => head = h,
                }
            }
        }
    }

    /// Completes the physical phase of a removal whose value cell is
    /// already frozen: marks the tower top-down (level 0 last) and snips
    /// the node at every level. Safe to run from *any* thread — the mark
    /// CAS loops tolerate concurrent markers and `unlink_node` tolerates
    /// concurrent sweeps — so writers that find a frozen twin **help**
    /// instead of waiting on the remover's progress (the structure stays
    /// non-blocking). Retirement is NOT part of this: the handshake
    /// belongs exclusively to the freeze winner.
    ///
    /// # Safety
    ///
    /// QSBR grace period required; `victim`'s value cell must be frozen
    /// (its removal has linearized).
    unsafe fn help_physical_remove(&self, victim: *mut Node) {
        // SAFETY: per contract.
        unsafe {
            for l in (0..=(*victim).top_level).rev() {
                loop {
                    let w = (*victim).next[l].load(Ordering::Acquire);
                    if marked(w)
                        || (*victim).next[l]
                            .compare_exchange(w, w | MARK, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                    {
                        break;
                    }
                }
            }
            self.unlink_node(victim);
        }
    }

    /// Inserter-side half of the retirement handshake; must be the last
    /// action of every `insert` that published its node.
    ///
    /// # Safety
    ///
    /// QSBR grace period required; `node` published at level 0 by us.
    unsafe fn finish_insert(&self, node: *mut Node) {
        // SAFETY: per contract.
        unsafe {
            // If the node was deleted while we were linking, some of our
            // links may have re-published it after the deleter's unlink
            // sweep: sweep again before declaring ourselves done.
            if marked((*node).next[0].load(Ordering::Acquire)) {
                self.unlink_node(node);
            }
            if (*node)
                .state
                .compare_exchange(LINKING, LINK_DONE, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                // The deleter finished first and handed retirement to us;
                // our sweep above ran after our last publication.
                self.retire_deferred(node);
            }
        }
    }
}

impl Default for FraserSkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl FraserSkipList {
    /// Number of elements (O(n); exact only in quiescence). Inherent so
    /// callers with both [`ConcurrentSet`] and [`ConcurrentMap`] in scope
    /// need no disambiguation.
    pub fn len(&self) -> usize {
        ConcurrentSet::len(self)
    }

    /// Whether the structure is empty (see [`FraserSkipList::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read-only probe for a live-linked node with `key` (observed through
    /// an unmarked pointer), like the paper's wait-free searches.
    ///
    /// A returned node may still be value-frozen — the caller decides
    /// presence by loading `val` (see `FROZEN`). A frozen node stays
    /// visible to probes until it is marked and snipped, which is exactly
    /// what keeps a key unique: inserters refuse to link a second node
    /// while the frozen one is reachable.
    ///
    /// # Safety
    ///
    /// QSBR grace period required.
    unsafe fn find_live(&self, key: Key) -> Option<*mut Node> {
        // SAFETY: per contract.
        unsafe {
            let mut pred = self.head;
            for l in (0..MAX_LEVEL).rev() {
                let mut cur = unmark((*pred).next[l].load(Ordering::Acquire)) as *mut Node;
                synchro::prefetch::read(cur);
                loop {
                    let cur_w = (*cur).next[l].load(Ordering::Acquire);
                    synchro::prefetch::read(unmark(cur_w) as *const Node);
                    if marked(cur_w) {
                        cur = unmark(cur_w) as *mut Node;
                        continue;
                    }
                    if (*cur).key < key {
                        pred = cur;
                        cur = unmark(cur_w) as *mut Node;
                        continue;
                    }
                    break;
                }
                if (*cur).key == key {
                    return Some(cur);
                }
            }
            None
        }
    }
}

impl ConcurrentSet for FraserSkipList {
    fn search(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        // SAFETY: grace period.
        unsafe {
            let n = self.find_live(key)?;
            let v = (*n).val.load(Ordering::Acquire);
            (v != FROZEN).then_some(v)
        }
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        assert_user_key(key);
        // Hard assert (not debug): storing the tombstone would freeze the
        // node as if removed, silently bricking the key in release builds.
        assert!(val != FROZEN, "u64::MAX is the reserved tombstone value");
        reclaim::quiescent();
        let top_level = random_level(key) - 1;
        let node = self.pool.alloc_init(|| Node::make(key, val, top_level));
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        let mut bo = Backoff::adaptive();
        // Level-0 linking (linearization point).
        // SAFETY: grace period for the whole operation.
        unsafe {
            loop {
                self.locate(key, &mut preds, &mut succs);
                if (*succs[0]).key == key {
                    if (*succs[0]).val.load(Ordering::Acquire) == FROZEN {
                        // Value-frozen twin: its remove has linearized but
                        // the physical unlink is still in flight. Linking a
                        // second node now would leave two reachable nodes
                        // for one key — and waiting on the remover would
                        // block, so finish its physical phase ourselves and
                        // re-locate.
                        self.help_physical_remove(succs[0]);
                        continue;
                    }
                    // SAFETY: node never published.
                    self.pool.dealloc_unpublished(node);
                    return false;
                }
                (*node).next[0].store(succs[0] as usize, Ordering::Relaxed);
                if (*preds[0]).next[0]
                    .compare_exchange(
                        succs[0] as usize,
                        node as usize,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    // post-link mark check (level 0): if succ was marked
                    // between our search and the CAS, we re-published a
                    // path to a logically-deleted node whose deleter's
                    // cleanup may already have passed. Clean it ourselves
                    // before this operation ends; QSBR keeps the victim
                    // alive until we quiesce.
                    if marked((*succs[0]).next[0].load(Ordering::Acquire)) {
                        self.cleanup(key);
                    }
                    break;
                }
                bo.backoff();
            }
            // Upper-level linking.
            let mut l = 1;
            while l <= top_level {
                // Abandon if our node got deleted meanwhile (its level-l
                // pointer is marked).
                let w = (*node).next[l].load(Ordering::Acquire);
                if marked(w) {
                    self.finish_insert(node);
                    return true;
                }
                let succ = succs[l];
                // Install our forward pointer for this level; a concurrent
                // deleter may race to mark it, hence CAS.
                if (*node).next[l]
                    .compare_exchange(w, succ as usize, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    // Only a marker can beat us; abandon.
                    self.finish_insert(node);
                    return true;
                }
                if (*preds[l]).next[l]
                    .compare_exchange(
                        succ as usize,
                        node as usize,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    // post-link mark check (upper level): our own node may
                    // have been deleted while we linked it (late link of a
                    // dead node) — finish_insert sweeps it back out; a
                    // marked successor just gets a helping pass.
                    if marked((*node).next[l].load(Ordering::Acquire)) {
                        self.finish_insert(node);
                        return true;
                    }
                    if marked((*succ).next[l].load(Ordering::Acquire)) {
                        self.cleanup((*succ).key);
                    }
                    l += 1;
                    continue;
                }
                // Link failed: re-search and retry this level.
                bo.backoff();
                self.locate(key, &mut preds, &mut succs);
                if succs[0] != node {
                    // Our node vanished (deleted and snipped; identity
                    // check — an equal-key successor is NOT our node).
                    self.finish_insert(node);
                    return true;
                }
            }
            self.finish_insert(node);
            true
        }
    }

    fn delete(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        // SAFETY: grace period for the whole operation.
        unsafe {
            self.locate(key, &mut preds, &mut succs);
            if (*succs[0]).key != key {
                return None;
            }
            let victim = succs[0];
            // Claim the victim by freezing its value cell: the
            // linearization point, and the single CAS that arbitrates
            // between racing removers and in-place `put` swaps.
            let val = (*victim).val.swap(FROZEN, Ordering::AcqRel);
            if val == FROZEN {
                // Another remover owns this node (it linearized first).
                return None;
            }
            // Physical phase: mark the tower top-down (level 0 last,
            // preserving the invariant that a node observed through an
            // unmarked level-l pointer has not been unlinked below) and
            // snip every level. Writers that found the frozen cell may be
            // helping concurrently; the retirement handshake below stays
            // exclusively ours (we won the freeze).
            self.help_physical_remove(victim);
            if (*victim)
                .state
                .compare_exchange(LINKING, RETIRE_HANDOFF, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                // Inserter already done (LINK_DONE): we own reclamation.
                // SAFETY: single owner (handshake).
                self.retire_deferred(victim);
            }
            Some(val)
        }
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        // SAFETY: grace period; level-0 walk.
        unsafe {
            let mut n = 0;
            let mut cur = unmark((*self.head).next[0].load(Ordering::Acquire)) as *mut Node;
            while (*cur).key != TAIL_KEY {
                if !marked((*cur).next[0].load(Ordering::Acquire)) {
                    n += 1;
                }
                cur = unmark((*cur).next[0].load(Ordering::Acquire)) as *mut Node;
            }
            n
        }
    }
}

impl ConcurrentMap for FraserSkipList {
    fn get(&self, key: Key) -> Option<Val> {
        ConcurrentSet::search(self, key)
    }

    /// Lock-free in-place upsert: a present key's value is replaced with a
    /// CAS loop on the value cell, which refuses `FROZEN` — so an update
    /// can never race past a remove (both linearize on the same cell). An
    /// absent (or frozen, once unlinked) key goes through the ordinary
    /// lock-free insert.
    ///
    /// # Panics
    ///
    /// Panics on `val == u64::MAX` (reserved, see `FROZEN`) — in every
    /// build profile: storing the tombstone would act as a removal.
    fn put(&self, key: Key, val: Val) -> Option<Val> {
        assert_user_key(key);
        // Hard assert (not debug): storing the tombstone would act as a
        // removal reported as an update (see `FROZEN`).
        assert!(val != FROZEN, "u64::MAX is the reserved tombstone value");
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        loop {
            // SAFETY: grace period per attempt.
            unsafe {
                if let Some(n) = self.find_live(key) {
                    let mut cur = (*n).val.load(Ordering::Acquire);
                    loop {
                        if cur == FROZEN {
                            break;
                        }
                        match (*n).val.compare_exchange_weak(
                            cur,
                            val,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        ) {
                            Ok(prev) => return Some(prev),
                            Err(now) => cur = now,
                        }
                    }
                    // Frozen: the binding was removed but the node is not
                    // yet snipped. Help the remover's physical phase (never
                    // wait on its progress), then insert fresh.
                    self.help_physical_remove(n);
                    continue;
                }
            }
            if ConcurrentSet::insert(self, key, val) {
                return None;
            }
            bo.backoff();
        }
    }

    fn remove(&self, key: Key) -> Option<Val> {
        ConcurrentSet::delete(self, key)
    }

    fn len(&self) -> usize {
        ConcurrentSet::len(self)
    }

    fn for_each(&self, f: &mut dyn FnMut(Key, Val)) {
        self.range(HEAD_KEY + 1, TAIL_KEY - 1, f);
    }
}

impl OrderedMap for FraserSkipList {
    /// Lock-free level-0 walk in a single forward pass. Each node is
    /// decided from two atomic reads — its level-0 word (marked =
    /// unlinked) and its value cell (frozen = removed) — and a monotonic
    /// floor keeps the output sorted and duplicate-free even if a stale
    /// snipped detour briefly runs the walk through older-era nodes. No
    /// lock fallback exists or is needed: nothing here ever blocks, and
    /// under a writer-excluding lock (the kv store's shard fallback) the
    /// chain is clean and the pass is exact.
    fn range(&self, lo: Key, hi: Key, f: &mut dyn FnMut(Key, Val)) {
        let hi = clamp_hi(hi);
        reclaim::quiescent();
        let mut from = lo.max(HEAD_KEY + 1);
        if from > hi {
            return;
        }
        // SAFETY: grace period for the whole pass.
        unsafe {
            // Read-only descent (upper levels) to a predecessor of `from`.
            let mut pred = self.head;
            for l in (1..MAX_LEVEL).rev() {
                let mut cur = unmark((*pred).next[l].load(Ordering::Acquire)) as *mut Node;
                loop {
                    let cur_w = (*cur).next[l].load(Ordering::Acquire);
                    if marked(cur_w) {
                        cur = unmark(cur_w) as *mut Node;
                        continue;
                    }
                    if (*cur).key < from {
                        pred = cur;
                        cur = unmark(cur_w) as *mut Node;
                        continue;
                    }
                    break;
                }
            }
            // Level-0 walk.
            let mut cur = unmark((*pred).next[0].load(Ordering::Acquire)) as *mut Node;
            loop {
                let key = (*cur).key;
                if key > hi {
                    return;
                }
                let w = (*cur).next[0].load(Ordering::Acquire);
                if marked(w) {
                    // Unlinked (or mid-unlink): skip without deciding.
                    cur = unmark(w) as *mut Node;
                    continue;
                }
                if key >= from {
                    let v = (*cur).val.load(Ordering::Acquire);
                    if v != FROZEN {
                        f(key, v);
                    }
                    from = key + 1;
                }
                cur = unmark(w) as *mut Node;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_roundtrip() {
        let s = FraserSkipList::new();
        assert!(s.insert(10, 100));
        assert!(s.insert(5, 50));
        assert!(!s.insert(10, 999));
        assert_eq!(s.search(5), Some(50));
        assert_eq!(s.delete(10), Some(100));
        assert_eq!(s.delete(10), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn exactly_one_delete_wins() {
        let s = Arc::new(FraserSkipList::new());
        for round in 1..=50u64 {
            assert!(s.insert(round, round));
            let mut handles = Vec::new();
            for _ in 0..6 {
                let s = Arc::clone(&s);
                handles.push(std::thread::spawn(move || s.delete(round).is_some()));
            }
            let winners: usize = handles
                .into_iter()
                .map(|h| usize::from(h.join().unwrap()))
                .sum();
            assert_eq!(winners, 1, "round {round}");
        }
        assert!(s.is_empty());
    }

    #[test]
    fn insert_delete_hammer_on_few_keys() {
        let s = Arc::new(FraserSkipList::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut net = 0i64;
                let mut x = t.wrapping_mul(0x2545F4914F6CDD1D) | 1;
                for _ in 0..synchro::stress::ops(15_000) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % 8 + 1; // extremely hot
                    if x % 2 == 0 {
                        if s.insert(k, k) {
                            net += 1;
                        }
                    } else if s.delete(k).is_some() {
                        net -= 1;
                    }
                }
                net
            }));
        }
        let net: i64 =
            reclaim::offline_while(|| handles.into_iter().map(|h| h.join().unwrap()).sum());
        assert_eq!(s.len() as i64, net);
    }
}
