//! Tower-height generation shared by all skip lists.

use std::cell::Cell;

/// Number of levels in every skip list (towers use `1..=MAX_LEVEL`).
///
/// With p = 1/2 geometric heights, 24 levels comfortably cover the paper's
/// largest structure (65536 elements).
pub const MAX_LEVEL: usize = 24;

thread_local! {
    static LEVEL_RNG: Cell<u64> = const { Cell::new(0) };
}

/// Draws a tower height in `1..=MAX_LEVEL` with geometric distribution
/// (p = 1/2), using a per-thread xorshift generator.
pub fn random_level() -> usize {
    LEVEL_RNG.with(|cell| {
        let mut x = cell.get();
        if x == 0 {
            // Derive a distinct nonzero seed per thread.
            let addr = &x as *const _ as u64;
            x = addr
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(std::process::id() as u64)
                | 1;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        cell.set(x);
        // Count trailing ones of a random word = geometric(1/2).
        let h = (x.trailing_ones() as usize) + 1;
        h.min(MAX_LEVEL)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_in_range() {
        for _ in 0..100_000 {
            let l = random_level();
            assert!((1..=MAX_LEVEL).contains(&l));
        }
    }

    #[test]
    fn distribution_is_roughly_geometric() {
        let mut counts = [0usize; MAX_LEVEL + 1];
        const N: usize = 200_000;
        for _ in 0..N {
            counts[random_level()] += 1;
        }
        // Level 1 ≈ 50%, level 2 ≈ 25%.
        assert!(counts[1] as f64 > N as f64 * 0.45, "{}", counts[1]);
        assert!(counts[1] as f64 * 0.4 < counts[2] as f64);
        assert!(counts[2] as f64 * 0.4 < counts[3] as f64);
        // Tall towers are rare but exist.
        assert!(counts[8..].iter().sum::<usize>() > 0);
    }

    #[test]
    fn different_threads_draw_independently() {
        let a: Vec<usize> = (0..64).map(|_| random_level()).collect();
        let b = std::thread::spawn(|| (0..64).map(|_| random_level()).collect::<Vec<_>>())
            .join()
            .unwrap();
        assert_ne!(a, b, "astronomically unlikely to coincide");
    }
}
