//! Tower-height generation shared by all skip lists.

#[cfg(not(optik_explore))]
use std::cell::Cell;

/// Number of levels in every skip list (towers use `1..=MAX_LEVEL`).
///
/// With p = 1/2 geometric heights, 24 levels comfortably cover the paper's
/// largest structure (65536 elements).
pub const MAX_LEVEL: usize = 24;

#[cfg(not(optik_explore))]
thread_local! {
    static LEVEL_RNG: Cell<u64> = const { Cell::new(0) };
}

/// Draws a tower height in `1..=MAX_LEVEL` for `key`'s node, geometric
/// with p = 1/2.
///
/// Normal builds draw from a per-thread xorshift generator — heights are
/// independent of the key, as the classic algorithm prescribes. Under
/// `--cfg optik_explore` the height is a **pure hash of the key**: the
/// schedule explorer re-runs a model from scratch per schedule and
/// replays recorded decision prefixes, which requires the number of
/// per-level lock acquisitions (shim trap points) to be identical across
/// re-runs — any dependence on thread identity, allocation addresses, or
/// draw history would make the tree nondeterministic. Key-hashed heights
/// keep the same geometric distribution across distinct keys while being
/// a deterministic function of the inserted data.
#[cfg(optik_explore)]
pub fn random_level(key: u64) -> usize {
    // SplitMix64 finalizer: full-avalanche, so trailing-ones of the
    // mixed word is geometric(1/2) across keys.
    let mut x = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    ((x.trailing_ones() as usize) + 1).min(MAX_LEVEL)
}

/// Draws a tower height in `1..=MAX_LEVEL` for `key`'s node, geometric
/// with p = 1/2, using a per-thread xorshift generator (the key is
/// unused outside exploration builds).
#[cfg(not(optik_explore))]
pub fn random_level(_key: u64) -> usize {
    LEVEL_RNG.with(|cell| {
        let mut x = cell.get();
        if x == 0 {
            // Derive a distinct nonzero seed per thread.
            let addr = &x as *const _ as u64;
            x = addr
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(std::process::id() as u64)
                | 1;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        cell.set(x);
        // Count trailing ones of a random word = geometric(1/2).
        let h = (x.trailing_ones() as usize) + 1;
        h.min(MAX_LEVEL)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_in_range() {
        for key in 0..100_000 {
            let l = random_level(key);
            assert!((1..=MAX_LEVEL).contains(&l));
        }
    }

    #[test]
    fn distribution_is_roughly_geometric() {
        let mut counts = [0usize; MAX_LEVEL + 1];
        const N: u64 = 200_000;
        for key in 0..N {
            counts[random_level(key)] += 1;
        }
        // Level 1 ≈ 50%, level 2 ≈ 25%.
        assert!(counts[1] as f64 > N as f64 * 0.45, "{}", counts[1]);
        assert!(counts[1] as f64 * 0.4 < counts[2] as f64);
        assert!(counts[2] as f64 * 0.4 < counts[3] as f64);
        // Tall towers are rare but exist.
        assert!(counts[8..].iter().sum::<usize>() > 0);
    }

    #[cfg(optik_explore)]
    #[test]
    fn exploration_heights_are_pure_in_the_key() {
        let a: Vec<usize> = (0..64).map(random_level).collect();
        let b = std::thread::spawn(|| (0..64).map(random_level).collect::<Vec<_>>())
            .join()
            .unwrap();
        assert_eq!(a, b, "explore heights must not depend on the thread");
    }

    #[cfg(not(optik_explore))]
    #[test]
    fn different_threads_draw_independently() {
        let a: Vec<usize> = (0..64).map(random_level).collect();
        let b = std::thread::spawn(|| (0..64).map(random_level).collect::<Vec<_>>())
            .join()
            .unwrap();
        assert_ne!(a, b, "astronomically unlikely to coincide");
    }
}
