//! The optimistic skip list of Herlihy, Lev, Luchangco & Shavit [29]
//! (*herlihy* in Figure 11).
//!
//! Updates traverse without locks, then lock the predecessor at every
//! level and *validate* (predecessor unmarked, successor unmarked, link
//! unchanged) — the classic lock-then-validate structure. A `fully_linked`
//! flag makes multi-level insertion appear atomic; a `marked` flag makes
//! deletion logical before physical.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use reclaim::NodePool;
use synchro::{Backoff, RawLock, TtasLock};

use crate::level::{random_level, MAX_LEVEL};
use crate::{
    assert_user_key, clamp_hi, ConcurrentMap, ConcurrentSet, Key, OrderedMap, Val, HEAD_KEY,
    RANGE_OPTIMISTIC_ATTEMPTS, TAIL_KEY,
};

pub(crate) struct Node {
    key: Key,
    /// In-place-updatable binding (the `ConcurrentMap` upsert contract):
    /// swapped under this node's lock, read lock-free.
    val: AtomicU64,
    /// Highest valid index into `next` (tower height − 1).
    top_level: usize,
    lock: TtasLock,
    marked: AtomicBool,
    fully_linked: AtomicBool,
    /// Inline fixed-height tower (only `0..=top_level` is used): keeps the
    /// node free of drop glue so it can live in a type-stable pool slot.
    next: [AtomicPtr<Node>; MAX_LEVEL],
}

impl Node {
    fn make(key: Key, val: Val, top_level: usize, linked: bool) -> Self {
        Node {
            key,
            val: AtomicU64::new(val),
            top_level,
            lock: TtasLock::new(),
            marked: AtomicBool::new(false),
            fully_linked: AtomicBool::new(linked),
            next: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
        }
    }
}

/// The Herlihy et al. optimistic skip list.
pub struct HerlihySkipList {
    head: *mut Node,
    /// Type-stable node pool. No pointer survives across operations, so
    /// recycled slots are plainly re-initialized after their grace period.
    pool: Arc<NodePool<Node>>,
}

// SAFETY: per-node locks + validation serialize updates; searches read
// atomic fields of QSBR-protected nodes.
unsafe impl Send for HerlihySkipList {}
unsafe impl Sync for HerlihySkipList {}

impl HerlihySkipList {
    /// Creates an empty skip list.
    pub fn new() -> Self {
        Self::from_pool(NodePool::new())
    }

    /// Creates an empty skip list with an arena-backed node pool.
    pub fn new_arena() -> Self {
        Self::from_pool(NodePool::arena())
    }

    fn from_pool(pool: Arc<NodePool<Node>>) -> Self {
        let tail = pool.alloc_init(|| Node::make(TAIL_KEY, 0, MAX_LEVEL - 1, true));
        let head = pool.alloc_init(|| Node::make(HEAD_KEY, 0, MAX_LEVEL - 1, true));
        // SAFETY: fresh nodes, no concurrency yet.
        unsafe {
            for l in 0..MAX_LEVEL {
                (*head).next[l].store(tail, Ordering::Relaxed);
            }
        }
        Self { head, pool }
    }

    /// Classic `find`: fills `preds`/`succs` per level; returns the highest
    /// level at which `key` was found, if any.
    ///
    /// # Safety
    ///
    /// QSBR grace period required.
    unsafe fn find(
        &self,
        key: Key,
        preds: &mut [*mut Node; MAX_LEVEL],
        succs: &mut [*mut Node; MAX_LEVEL],
    ) -> Option<usize> {
        // SAFETY: per contract.
        unsafe {
            let mut lfound = None;
            let mut pred = self.head;
            for l in (0..MAX_LEVEL).rev() {
                let mut cur = (*pred).next[l].load(Ordering::Acquire);
                synchro::prefetch::read(cur);
                while (*cur).key < key {
                    pred = cur;
                    cur = (*cur).next[l].load(Ordering::Acquire);
                    synchro::prefetch::read(cur);
                }
                if lfound.is_none() && (*cur).key == key {
                    lfound = Some(l);
                }
                preds[l] = pred;
                succs[l] = cur;
            }
            lfound
        }
    }

    /// Number of elements (O(n); exact only in quiescence). Inherent so
    /// callers with both [`ConcurrentSet`] and [`ConcurrentMap`] in scope
    /// need no disambiguation.
    pub fn len(&self) -> usize {
        ConcurrentSet::len(self)
    }

    /// Whether the structure is empty (see [`HerlihySkipList::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unlocks `preds[0..=highest]`, each distinct node once.
    ///
    /// # Safety
    ///
    /// The distinct nodes among `preds[0..=highest]` must be locked by the
    /// caller.
    unsafe fn unlock_preds(preds: &[*mut Node; MAX_LEVEL], highest: usize) {
        let mut prev: *mut Node = std::ptr::null_mut();
        for &p in preds.iter().take(highest + 1) {
            if p != prev {
                // SAFETY: locked by caller; nodes alive in grace period.
                unsafe { (*p).lock.unlock() };
                prev = p;
            }
        }
    }
}

impl Default for HerlihySkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentSet for HerlihySkipList {
    fn search(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        // SAFETY: grace period.
        unsafe {
            let mut pred = self.head;
            let mut found: *mut Node = std::ptr::null_mut();
            for l in (0..MAX_LEVEL).rev() {
                let mut cur = (*pred).next[l].load(Ordering::Acquire);
                synchro::prefetch::read(cur);
                while (*cur).key < key {
                    pred = cur;
                    cur = (*cur).next[l].load(Ordering::Acquire);
                    synchro::prefetch::read(cur);
                }
                if (*cur).key == key {
                    found = cur;
                    break;
                }
            }
            (!found.is_null()
                && (*found).fully_linked.load(Ordering::Acquire)
                && !(*found).marked.load(Ordering::Acquire))
            .then(|| (*found).val.load(Ordering::Acquire))
        }
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        assert_user_key(key);
        reclaim::quiescent();
        let top_level = random_level(key) - 1;
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        let mut bo = Backoff::adaptive();
        loop {
            // SAFETY: grace period per attempt.
            unsafe {
                if let Some(lf) = self.find(key, &mut preds, &mut succs) {
                    let found = succs[lf];
                    if !(*found).marked.load(Ordering::Acquire) {
                        // Wait for a partially-inserted twin to complete.
                        while !(*found).fully_linked.load(Ordering::Acquire) {
                            synchro::relax();
                        }
                        return false;
                    }
                    // Being deleted: retry until physically gone.
                    bo.backoff();
                    continue;
                }
                // Lock preds bottom-up, each distinct node once.
                let mut highest_locked: isize = -1;
                let mut prev_pred: *mut Node = std::ptr::null_mut();
                let mut valid = true;
                for l in 0..=top_level {
                    let pred = preds[l];
                    let succ = succs[l];
                    if pred != prev_pred {
                        (*pred).lock.lock();
                        highest_locked = l as isize;
                        prev_pred = pred;
                    }
                    valid = !(*pred).marked.load(Ordering::Acquire)
                        && !(*succ).marked.load(Ordering::Acquire)
                        && (*pred).next[l].load(Ordering::Acquire) == succ;
                    if !valid {
                        break;
                    }
                }
                if !valid {
                    if highest_locked >= 0 {
                        Self::unlock_preds(&preds, highest_locked as usize);
                    }
                    bo.backoff();
                    continue;
                }
                let newnode = self
                    .pool
                    .alloc_init(|| Node::make(key, val, top_level, false));
                for l in 0..=top_level {
                    (*newnode).next[l].store(succs[l], Ordering::Relaxed);
                }
                for l in 0..=top_level {
                    (*preds[l]).next[l].store(newnode, Ordering::Release);
                }
                (*newnode).fully_linked.store(true, Ordering::Release);
                Self::unlock_preds(&preds, top_level);
                return true;
            }
        }
    }

    fn delete(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        let mut victim: *mut Node = std::ptr::null_mut();
        let mut is_marked = false;
        let mut top_level = 0usize;
        let mut bo = Backoff::adaptive();
        loop {
            // SAFETY: grace period per attempt (the victim, once marked by
            // us, is pinned: it cannot be retired before we unlink it).
            unsafe {
                let lf = self.find(key, &mut preds, &mut succs);
                let ok = is_marked
                    || match lf {
                        Some(lf) => {
                            let c = succs[lf];
                            (*c).fully_linked.load(Ordering::Acquire)
                                && (*c).top_level == lf
                                && !(*c).marked.load(Ordering::Acquire)
                        }
                        None => false,
                    };
                if !ok {
                    return None;
                }
                if !is_marked {
                    victim = succs[lf.expect("ok && !is_marked implies found")];
                    top_level = (*victim).top_level;
                    (*victim).lock.lock();
                    if (*victim).marked.load(Ordering::Acquire) {
                        // Lost the race to another deleter.
                        (*victim).lock.unlock();
                        return None;
                    }
                    (*victim).marked.store(true, Ordering::Release);
                    is_marked = true;
                }
                // Lock preds and validate links to the victim.
                let mut highest_locked: isize = -1;
                let mut prev_pred: *mut Node = std::ptr::null_mut();
                let mut valid = true;
                for l in 0..=top_level {
                    let pred = preds[l];
                    if pred != prev_pred {
                        (*pred).lock.lock();
                        highest_locked = l as isize;
                        prev_pred = pred;
                    }
                    valid = !(*pred).marked.load(Ordering::Acquire)
                        && (*pred).next[l].load(Ordering::Acquire) == victim;
                    if !valid {
                        break;
                    }
                }
                if !valid {
                    if highest_locked >= 0 {
                        Self::unlock_preds(&preds, highest_locked as usize);
                    }
                    bo.backoff();
                    continue;
                }
                for l in (0..=top_level).rev() {
                    (*preds[l]).next[l]
                        .store((*victim).next[l].load(Ordering::Relaxed), Ordering::Release);
                }
                // Read under the victim's lock: serialized against the
                // in-place swaps of `ConcurrentMap::put`.
                let val = (*victim).val.load(Ordering::Relaxed);
                (*victim).lock.unlock();
                Self::unlock_preds(&preds, top_level);
                // SAFETY: fully unlinked; sole deleter (we won the marking).
                reclaim::with_local(|h| self.pool.retire(victim, h));
                return Some(val);
            }
        }
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        // SAFETY: grace period; walk level 0.
        unsafe {
            let mut n = 0;
            let mut cur = (*self.head).next[0].load(Ordering::Acquire);
            while (*cur).key != TAIL_KEY {
                if !(*cur).marked.load(Ordering::Relaxed)
                    && (*cur).fully_linked.load(Ordering::Relaxed)
                {
                    n += 1;
                }
                cur = (*cur).next[0].load(Ordering::Acquire);
            }
            n
        }
    }
}

impl ConcurrentMap for HerlihySkipList {
    fn get(&self, key: Key) -> Option<Val> {
        ConcurrentSet::search(self, key)
    }

    /// In-place upsert: a present key's value is swapped under the node's
    /// own lock — the same lock a deleter must hold to mark its victim, so
    /// the swap and the delete's value read are serialized and no
    /// absent-key window is ever observable. An absent key goes through
    /// the ordinary optimistic insert.
    fn put(&self, key: Key, val: Val) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        let mut bo = Backoff::adaptive();
        loop {
            // SAFETY: grace period per attempt.
            unsafe {
                if let Some(lf) = self.find(key, &mut preds, &mut succs) {
                    let n = succs[lf];
                    if (*n).marked.load(Ordering::Acquire) {
                        // Being deleted: wait for the unlink, then insert.
                        bo.backoff();
                        continue;
                    }
                    while !(*n).fully_linked.load(Ordering::Acquire) {
                        synchro::relax();
                    }
                    (*n).lock.lock();
                    if (*n).marked.load(Ordering::Acquire) {
                        // A deleter claimed the node before us.
                        (*n).lock.unlock();
                        bo.backoff();
                        continue;
                    }
                    let prev = (*n).val.swap(val, Ordering::AcqRel);
                    (*n).lock.unlock();
                    return Some(prev);
                }
            }
            if ConcurrentSet::insert(self, key, val) {
                return None;
            }
            // Lost an insert race; the key exists now — retry the update.
            bo.backoff();
        }
    }

    fn remove(&self, key: Key) -> Option<Val> {
        ConcurrentSet::delete(self, key)
    }

    fn len(&self) -> usize {
        ConcurrentSet::len(self)
    }

    fn for_each(&self, f: &mut dyn FnMut(Key, Val)) {
        self.range(HEAD_KEY + 1, TAIL_KEY - 1, f);
    }
}

impl OrderedMap for HerlihySkipList {
    /// Level-0 walk with Herlihy-style per-step validation: each emitted
    /// entry was read while its predecessor link was re-checked unchanged
    /// (`!pred.marked && pred.next[0] == cur`). On interference the
    /// traversal re-descends to just past the last emitted key, so output
    /// stays sorted and duplicate-free; after
    /// `RANGE_OPTIMISTIC_ATTEMPTS` consecutive failures one step is
    /// taken under the predecessor's lock (guaranteed progress).
    fn range(&self, lo: Key, hi: Key, f: &mut dyn FnMut(Key, Val)) {
        let hi = clamp_hi(hi);
        reclaim::quiescent();
        let mut from = lo.max(HEAD_KEY + 1);
        let mut fails = 0usize;
        let mut bo = Backoff::adaptive();
        'restart: loop {
            if from > hi {
                return;
            }
            // SAFETY: grace period; re-announced only between restarts
            // (no references are held across them).
            unsafe {
                // Descend to the predecessor of `from`.
                let mut pred = self.head;
                for l in (0..MAX_LEVEL).rev() {
                    let mut cur = (*pred).next[l].load(Ordering::Acquire);
                    synchro::prefetch::read(cur);
                    while (*cur).key < from {
                        pred = cur;
                        cur = (*cur).next[l].load(Ordering::Acquire);
                        synchro::prefetch::read(cur);
                    }
                }
                if fails >= RANGE_OPTIMISTIC_ATTEMPTS {
                    // Locked fallback: decide one node under pred's lock.
                    // The monotonic floor applies here exactly as on the
                    // optimistic path: a successor below `from` (a smaller
                    // key slid in under churn) is outside the remaining
                    // window and must be neither emitted nor allowed to
                    // move the floor backward.
                    (*pred).lock.lock();
                    if (*pred).marked.load(Ordering::Acquire) {
                        (*pred).lock.unlock();
                        bo.backoff();
                        continue 'restart;
                    }
                    let cur = (*pred).next[0].load(Ordering::Acquire);
                    let key = (*cur).key;
                    if key > hi {
                        (*pred).lock.unlock();
                        return;
                    }
                    if key >= from {
                        if (*cur).fully_linked.load(Ordering::Acquire)
                            && !(*cur).marked.load(Ordering::Acquire)
                        {
                            f(key, (*cur).val.load(Ordering::Acquire));
                        }
                        from = key + 1;
                        fails = 0;
                    }
                    (*pred).lock.unlock();
                    continue 'restart;
                }
                // Optimistic level-0 walk.
                loop {
                    let cur = (*pred).next[0].load(Ordering::Acquire);
                    let key = (*cur).key;
                    if key > hi {
                        return;
                    }
                    let live = (*cur).fully_linked.load(Ordering::Acquire)
                        && !(*cur).marked.load(Ordering::Acquire);
                    let val = (*cur).val.load(Ordering::Acquire);
                    // Validate the step: the link we read through must
                    // still be intact, or the fields above may belong to
                    // a node that was never `cur`'s successor state.
                    if (*pred).marked.load(Ordering::Acquire)
                        || (*pred).next[0].load(Ordering::Acquire) != cur
                    {
                        fails += 1;
                        bo.backoff();
                        continue 'restart;
                    }
                    if live && key >= from {
                        f(key, val);
                        from = key + 1;
                        fails = 0;
                    }
                    pred = cur;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_roundtrip() {
        let s = HerlihySkipList::new();
        assert!(s.insert(10, 100));
        assert!(s.insert(5, 50));
        assert!(!s.insert(10, 101));
        assert_eq!(s.search(5), Some(50));
        assert_eq!(s.delete(10), Some(100));
        assert_eq!(s.search(10), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn exactly_one_delete_wins() {
        let s = Arc::new(HerlihySkipList::new());
        for round in 1..=50u64 {
            assert!(s.insert(round, round));
            let mut handles = Vec::new();
            for _ in 0..6 {
                let s = Arc::clone(&s);
                handles.push(std::thread::spawn(move || s.delete(round).is_some()));
            }
            let winners: usize = handles
                .into_iter()
                .map(|h| usize::from(h.join().unwrap()))
                .sum();
            assert_eq!(winners, 1, "round {round}");
        }
        assert!(s.is_empty());
    }

    #[test]
    fn tall_and_short_towers_coexist() {
        let s = HerlihySkipList::new();
        for k in 1..=500u64 {
            assert!(s.insert(k, k));
        }
        // Level-0 walk sees everything in order.
        // SAFETY: single-threaded.
        unsafe {
            let mut cur = (*s.head).next[0].load(Ordering::Relaxed);
            let mut prev = 0u64;
            let mut count = 0;
            while (*cur).key != TAIL_KEY {
                assert!((*cur).key > prev);
                prev = (*cur).key;
                count += 1;
                cur = (*cur).next[0].load(Ordering::Relaxed);
            }
            assert_eq!(count, 500);
        }
    }
}
