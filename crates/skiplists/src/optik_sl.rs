//! The paper's novel OPTIK-based skip list (§5.3), in its two variants.
//!
//! Design (from the paper):
//!
//! - traversal tracks the predecessor **and its version** at every level;
//! - insertions are **eager**: "once the OPTIK lock for a skip-list level
//!   is acquired, the new node is linked to that level. If a subsequent
//!   trylock fails, the operation is restarted, but the locks for the
//!   already inserted levels are not reacquired" — insertion resumes from
//!   the level that failed;
//! - a `fully_linked`-style flag "ensures that a partially inserted node
//!   will not be concurrently deleted";
//! - a deletion claims its victim by locking the victim's OPTIK lock
//!   **forever** (so concurrent operations validating against the victim
//!   always fail) and sets its deleted flag, then acquires all predecessor
//!   locks and unlinks top-down.
//!
//! The two variants differ in how a failed `try_lock_version` is handled:
//!
//! - [`OptikSkipList1`] (*optik1*): falls back to a blocking
//!   `lock_version` plus the fine-grained Herlihy-style validation;
//! - [`OptikSkipList2`] (*optik2*): immediately restarts the operation —
//!   simpler, and the faster of the two under skew in the paper.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use optik::{OptikLock, OptikVersioned, Version};
use reclaim::NodePool;
use synchro::Backoff;

use crate::level::{random_level, MAX_LEVEL};
use crate::{
    assert_user_key, clamp_hi, ConcurrentMap, ConcurrentSet, Key, OrderedMap, Val, HEAD_KEY,
    RANGE_OPTIMISTIC_ATTEMPTS, TAIL_KEY,
};

pub(crate) struct Node {
    key: Key,
    /// In-place-updatable binding: swapped while holding this node's OPTIK
    /// lock, read lock-free.
    val: AtomicU64,
    top_level: usize,
    lock: OptikVersioned,
    marked: AtomicBool,
    fully_linked: AtomicBool,
    /// Inline fixed-height tower (only `0..=top_level` is used): keeps the
    /// node free of drop glue so it can live in a type-stable pool slot.
    next: [AtomicPtr<Node>; MAX_LEVEL],
}

impl Node {
    fn make(key: Key, val: Val, top_level: usize, linked: bool) -> Self {
        Node {
            key,
            val: AtomicU64::new(val),
            top_level,
            lock: OptikVersioned::new(),
            marked: AtomicBool::new(false),
            fully_linked: AtomicBool::new(linked),
            next: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
        }
    }
}

/// Shared implementation; `FINE` selects the optik1 (fine re-validation)
/// or optik2 (immediate restart) behaviour.
pub struct OptikSkipList<const FINE: bool> {
    head: *mut Node,
    /// Type-stable node pool. A deleted victim's lock is held *forever*,
    /// but no validation spans operations (versions are read on arrival
    /// within the op), so after a grace period nobody can still validate
    /// against it and the slot — fresh, unlocked lock included — is
    /// plainly re-initialized.
    pool: Arc<NodePool<Node>>,
}

/// The *optik1* variant: fine-grained re-validation on version failure.
pub type OptikSkipList1 = OptikSkipList<true>;
/// The *optik2* variant: immediate restart on version failure.
pub type OptikSkipList2 = OptikSkipList<false>;

// SAFETY: per-node OPTIK locks serialize updates; searches read atomic
// fields of QSBR-protected nodes.
unsafe impl<const FINE: bool> Send for OptikSkipList<FINE> {}
unsafe impl<const FINE: bool> Sync for OptikSkipList<FINE> {}

impl<const FINE: bool> OptikSkipList<FINE> {
    /// Creates an empty skip list.
    pub fn new() -> Self {
        Self::from_pool(NodePool::new())
    }

    /// Creates an empty skip list with an arena-backed node pool.
    pub fn new_arena() -> Self {
        Self::from_pool(NodePool::arena())
    }

    fn from_pool(pool: Arc<NodePool<Node>>) -> Self {
        let tail = pool.alloc_init(|| Node::make(TAIL_KEY, 0, MAX_LEVEL - 1, true));
        let head = pool.alloc_init(|| Node::make(HEAD_KEY, 0, MAX_LEVEL - 1, true));
        // SAFETY: fresh nodes.
        unsafe {
            for l in 0..MAX_LEVEL {
                (*head).next[l].store(tail, Ordering::Relaxed);
            }
        }
        Self { head, pool }
    }

    /// Number of elements (O(n); exact only in quiescence). Inherent so
    /// callers with both [`ConcurrentSet`] and [`ConcurrentMap`] in scope
    /// need no disambiguation.
    pub fn len(&self) -> usize {
        ConcurrentSet::len(self)
    }

    /// Whether the structure is empty (see [`OptikSkipList::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Traversal with per-level predecessor version tracking.
    ///
    /// # Safety
    ///
    /// QSBR grace period required.
    unsafe fn find_tracking(
        &self,
        key: Key,
        preds: &mut [*mut Node; MAX_LEVEL],
        predvs: &mut [Version; MAX_LEVEL],
        succs: &mut [*mut Node; MAX_LEVEL],
    ) -> Option<usize> {
        // SAFETY: per contract.
        unsafe {
            let mut lfound = None;
            let mut pred = self.head;
            let mut predv = (*pred).lock.get_version();
            for l in (0..MAX_LEVEL).rev() {
                let mut cur = (*pred).next[l].load(Ordering::Acquire);
                synchro::prefetch::read(cur);
                while (*cur).key < key {
                    pred = cur;
                    predv = (*pred).lock.get_version();
                    cur = (*pred).next[l].load(Ordering::Acquire);
                    synchro::prefetch::read(cur);
                }
                if lfound.is_none() && (*cur).key == key {
                    lfound = Some(l);
                }
                preds[l] = pred;
                predvs[l] = predv;
                succs[l] = cur;
            }
            lfound
        }
    }

    /// Tries to lock `pred` for one level: OPTIK trylock first; optik1
    /// falls back to blocking-lock + fine validation.
    ///
    /// Returns whether the lock was acquired with a valid view (caller must
    /// release with `unlock` after modifying, `revert` otherwise).
    ///
    /// # Safety
    ///
    /// Grace period; `succ` must be the expected successor at `level`.
    unsafe fn acquire_level(
        pred: *mut Node,
        predv: Version,
        succ: *mut Node,
        level: usize,
    ) -> bool {
        // SAFETY: per contract.
        unsafe {
            if (*pred).lock.try_lock_version(predv) {
                return true;
            }
            if !FINE {
                return false; // optik2: restart immediately
            }
            // optik1: blocking acquisition, then fine-grained validation
            // (the same checks the Herlihy list uses). The wait must be
            // bounded by the `marked` flag: a deleter claims its victim by
            // holding the victim's lock *forever*, so blocking on a marked
            // predecessor would never return. `marked` is set right after
            // the claim, so spinning "while locked and not marked" always
            // terminates.
            let matched = loop {
                let v = (*pred).lock.get_version();
                if !OptikVersioned::is_locked_version(v) {
                    if (*pred).lock.try_lock_version(v) {
                        break OptikVersioned::is_same_version(v, predv);
                    }
                    continue;
                }
                if (*pred).marked.load(Ordering::Acquire) {
                    return false; // claimed victim: its lock never frees
                }
                synchro::relax();
            };
            if matched {
                return true;
            }
            let ok = !(*pred).marked.load(Ordering::Acquire)
                && !(*succ).marked.load(Ordering::Acquire)
                && (*pred).next[level].load(Ordering::Acquire) == succ;
            if ok {
                return true;
            }
            (*pred).lock.revert();
            false
        }
    }
}

impl<const FINE: bool> Default for OptikSkipList<FINE> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const FINE: bool> ConcurrentSet for OptikSkipList<FINE> {
    fn search(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        // SAFETY: grace period.
        unsafe {
            let mut pred = self.head;
            let mut found: *mut Node = std::ptr::null_mut();
            for l in (0..MAX_LEVEL).rev() {
                let mut cur = (*pred).next[l].load(Ordering::Acquire);
                synchro::prefetch::read(cur);
                while (*cur).key < key {
                    pred = cur;
                    cur = (*cur).next[l].load(Ordering::Acquire);
                    synchro::prefetch::read(cur);
                }
                if (*cur).key == key {
                    found = cur;
                    break;
                }
            }
            (!found.is_null()
                && (*found).fully_linked.load(Ordering::Acquire)
                && !(*found).marked.load(Ordering::Acquire))
            .then(|| (*found).val.load(Ordering::Acquire))
        }
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        assert_user_key(key);
        reclaim::quiescent();
        let top_level = random_level(key) - 1;
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut predvs = [0; MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        let mut node: *mut Node = std::ptr::null_mut();
        // Levels `0..start_level` are already linked (eager insertion).
        let mut start_level = 0usize;
        let mut bo = Backoff::adaptive();
        loop {
            // SAFETY: grace period per attempt; our partially-linked node
            // cannot be deleted (not fully linked).
            unsafe {
                let lf = self.find_tracking(key, &mut preds, &mut predvs, &mut succs);
                if start_level == 0 {
                    if let Some(lf) = lf {
                        let found = succs[lf];
                        if !(*found).marked.load(Ordering::Acquire) {
                            while !(*found).fully_linked.load(Ordering::Acquire) {
                                synchro::relax();
                            }
                            if !node.is_null() {
                                // Allocated on an earlier attempt but never
                                // linked (start_level is still 0).
                                self.pool.dealloc_unpublished(node);
                            }
                            return false;
                        }
                        // Key is being deleted: wait for the unlink.
                        bo.backoff();
                        continue;
                    }
                    if node.is_null() {
                        node = self
                            .pool
                            .alloc_init(|| Node::make(key, val, top_level, false));
                    }
                }
                // Link level by level, eagerly.
                let mut l = start_level;
                let mut progressed = true;
                while l <= top_level {
                    let pred = preds[l];
                    let succ = succs[l];
                    // Prepare the node's own pointer first; level `l` is
                    // not yet reachable, so a plain store is fine.
                    (*node).next[l].store(succ, Ordering::Relaxed);
                    if !Self::acquire_level(pred, predvs[l], succ, l) {
                        progressed = false;
                        break;
                    }
                    (*pred).next[l].store(node, Ordering::Release);
                    (*pred).lock.unlock();
                    l += 1;
                    start_level = l;
                }
                if l > top_level {
                    (*node).fully_linked.store(true, Ordering::Release);
                    return true;
                }
                if !progressed {
                    bo.backoff();
                }
                // Restart: re-parse, continue from the level that failed
                // ("the locks for the already inserted levels are not
                // reacquired").
            }
        }
    }

    fn delete(&self, key: Key) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut predvs = [0; MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        let mut victim: *mut Node = std::ptr::null_mut();
        let mut claimed = false;
        let mut top_level = 0usize;
        let mut bo = Backoff::adaptive();
        loop {
            // SAFETY: grace period per attempt; a claimed victim is pinned
            // (its lock is held forever by us until unlinked + retired).
            unsafe {
                let lf = self.find_tracking(key, &mut preds, &mut predvs, &mut succs);
                if !claimed {
                    let lf = lf?;
                    let cand = succs[lf];
                    // Read the candidate's version *before* the eligibility
                    // checks, so claiming validates them.
                    let candv = (*cand).lock.get_version();
                    if !(*cand).fully_linked.load(Ordering::Acquire)
                        || (*cand).top_level != lf
                        || (*cand).marked.load(Ordering::Acquire)
                    {
                        return None;
                    }
                    // Claim: lock the victim FOREVER (its version can never
                    // validate again) and flag it deleted.
                    if !(*cand).lock.try_lock_version(candv) {
                        bo.backoff();
                        continue;
                    }
                    (*cand).marked.store(true, Ordering::Release);
                    victim = cand;
                    top_level = (*victim).top_level;
                    claimed = true;
                    // Re-parse so preds reflect the claimed victim.
                    continue;
                }
                // Acquire every distinct predecessor (bottom-up), each with
                // the version of its *highest* (earliest-read) level.
                let mut acquired: Vec<*mut Node> = Vec::with_capacity(top_level + 1);
                let mut valid = true;
                for l in 0..=top_level {
                    let pred = preds[l];
                    if acquired.contains(&pred) {
                        // Same pred covers this level; version validated at
                        // its first-seen (higher) level... levels are
                        // scanned bottom-up here, so validate equality.
                        if succs[l] != victim {
                            valid = false;
                            break;
                        }
                        continue;
                    }
                    if succs[l] != victim {
                        // Traversal no longer reaches the victim at this
                        // level (e.g. a new node slid in between).
                        valid = false;
                        break;
                    }
                    if !Self::acquire_level(pred, predvs[l], victim, l) {
                        valid = false;
                        break;
                    }
                    acquired.push(pred);
                }
                if !valid {
                    for p in acquired {
                        (*p).lock.revert();
                    }
                    bo.backoff();
                    continue;
                }
                // Unlink top-down under all pred locks; the victim's own
                // next pointers are frozen (its lock is held by us).
                for l in (0..=top_level).rev() {
                    (*preds[l]).next[l]
                        .store((*victim).next[l].load(Ordering::Relaxed), Ordering::Release);
                }
                for p in acquired {
                    (*p).lock.unlock();
                }
                // Read while holding the victim's lock (claimed forever):
                // serialized against `ConcurrentMap::put`'s in-place swaps,
                // which require acquiring that same lock.
                let val = (*victim).val.load(Ordering::Relaxed);
                // The victim's lock is never released ("locked forever").
                // SAFETY: fully unlinked; sole claimer retires.
                reclaim::with_local(|h| self.pool.retire(victim, h));
                return Some(val);
            }
        }
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        // SAFETY: grace period.
        unsafe {
            let mut n = 0;
            let mut cur = (*self.head).next[0].load(Ordering::Acquire);
            while (*cur).key != TAIL_KEY {
                if !(*cur).marked.load(Ordering::Relaxed)
                    && (*cur).fully_linked.load(Ordering::Relaxed)
                {
                    n += 1;
                }
                cur = (*cur).next[0].load(Ordering::Acquire);
            }
            n
        }
    }
}

impl<const FINE: bool> ConcurrentMap for OptikSkipList<FINE> {
    fn get(&self, key: Key) -> Option<Val> {
        ConcurrentSet::search(self, key)
    }

    /// In-place upsert, OPTIK style: the node's version is read before the
    /// liveness checks and the swap happens only after a successful
    /// `try_lock_version` against it — acquisition *is* revalidation. A
    /// deleter claims its victim by locking it forever, so holding the
    /// lock proves the node was never claimed; the release is a `revert`
    /// because a value swap modifies no `next` pointer.
    fn put(&self, key: Key, val: Val) -> Option<Val> {
        assert_user_key(key);
        reclaim::quiescent();
        let mut preds = [std::ptr::null_mut(); MAX_LEVEL];
        let mut predvs = [0; MAX_LEVEL];
        let mut succs = [std::ptr::null_mut(); MAX_LEVEL];
        let mut bo = Backoff::adaptive();
        loop {
            // SAFETY: grace period per attempt.
            unsafe {
                if let Some(lf) = self.find_tracking(key, &mut preds, &mut predvs, &mut succs) {
                    let n = succs[lf];
                    // Version first, checks after: a successful
                    // try_lock_version then validates them.
                    let nv = (*n).lock.get_version();
                    if (*n).marked.load(Ordering::Acquire) {
                        // Claimed victim: wait out the unlink.
                        bo.backoff();
                        continue;
                    }
                    while !(*n).fully_linked.load(Ordering::Acquire) {
                        synchro::relax();
                    }
                    if !(*n).lock.try_lock_version(nv) {
                        bo.backoff();
                        continue;
                    }
                    let prev = (*n).val.swap(val, Ordering::AcqRel);
                    (*n).lock.revert();
                    return Some(prev);
                }
            }
            if ConcurrentSet::insert(self, key, val) {
                return None;
            }
            bo.backoff();
        }
    }

    fn remove(&self, key: Key) -> Option<Val> {
        ConcurrentSet::delete(self, key)
    }

    fn len(&self) -> usize {
        ConcurrentSet::len(self)
    }

    fn for_each(&self, f: &mut dyn FnMut(Key, Val)) {
        self.range(HEAD_KEY + 1, TAIL_KEY - 1, f);
    }
}

impl<const FINE: bool> OrderedMap for OptikSkipList<FINE> {
    /// OPTIK-validated level-0 walk (see
    /// [`HerlihyOptikSkipList`](crate::HerlihyOptikSkipList)'s range docs
    /// for the scheme). The fallback must respect this design's claimed
    /// victims — their locks are held forever — so the locked step uses
    /// the same marked-bounded acquisition as
    /// [`OptikSkipList::acquire_level`]: spin only while the predecessor
    /// is locked *and unmarked*, re-descend when it turns out to be a
    /// victim.
    fn range(&self, lo: Key, hi: Key, f: &mut dyn FnMut(Key, Val)) {
        let hi = clamp_hi(hi);
        reclaim::quiescent();
        let mut from = lo.max(HEAD_KEY + 1);
        let mut fails = 0usize;
        let mut bo = Backoff::adaptive();
        'restart: loop {
            if from > hi {
                return;
            }
            // SAFETY: grace period.
            unsafe {
                let mut pred = self.head;
                let mut predv = (*pred).lock.get_version();
                for l in (0..MAX_LEVEL).rev() {
                    let mut cur = (*pred).next[l].load(Ordering::Acquire);
                    synchro::prefetch::read(cur);
                    while (*cur).key < from {
                        pred = cur;
                        predv = (*pred).lock.get_version();
                        cur = (*pred).next[l].load(Ordering::Acquire);
                        synchro::prefetch::read(cur);
                    }
                }
                if fails >= RANGE_OPTIMISTIC_ATTEMPTS {
                    // Marked-bounded blocking acquisition of pred.
                    let acquired = loop {
                        let v = (*pred).lock.get_version();
                        if !OptikVersioned::is_locked_version(v) {
                            if (*pred).lock.try_lock_version(v) {
                                break true;
                            }
                            continue;
                        }
                        if (*pred).marked.load(Ordering::Acquire) {
                            break false; // claimed victim: never unlocks
                        }
                        synchro::relax();
                    };
                    if !acquired {
                        bo.backoff();
                        continue 'restart;
                    }
                    let cur = (*pred).next[0].load(Ordering::Acquire);
                    let key = (*cur).key;
                    if key > hi {
                        (*pred).lock.revert();
                        return;
                    }
                    // Monotonic floor, as on the optimistic path: a
                    // successor below `from` is neither emitted nor
                    // allowed to move the floor backward.
                    if key >= from {
                        if (*cur).fully_linked.load(Ordering::Acquire)
                            && !(*cur).marked.load(Ordering::Acquire)
                        {
                            f(key, (*cur).val.load(Ordering::Acquire));
                        }
                        from = key + 1;
                        fails = 0;
                    }
                    (*pred).lock.revert();
                    continue 'restart;
                }
                loop {
                    let cur = (*pred).next[0].load(Ordering::Acquire);
                    let key = (*cur).key;
                    if key > hi {
                        return;
                    }
                    let live = (*cur).fully_linked.load(Ordering::Acquire)
                        && !(*cur).marked.load(Ordering::Acquire);
                    let val = (*cur).val.load(Ordering::Acquire);
                    let nextv = (*cur).lock.get_version();
                    if !(*pred).lock.validate(predv) {
                        fails += 1;
                        bo.backoff();
                        continue 'restart;
                    }
                    if live && key >= from {
                        f(key, val);
                        from = key + 1;
                        fails = 0;
                    }
                    pred = cur;
                    predv = nextv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn roundtrip<const FINE: bool>() {
        let s: OptikSkipList<FINE> = OptikSkipList::new();
        assert!(s.insert(10, 100));
        assert!(s.insert(5, 50));
        assert!(!s.insert(10, 999));
        assert_eq!(s.search(5), Some(50));
        assert_eq!(s.delete(10), Some(100));
        assert_eq!(s.delete(10), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn roundtrip_optik1() {
        roundtrip::<true>();
    }

    #[test]
    fn roundtrip_optik2() {
        roundtrip::<false>();
    }

    #[test]
    fn victim_lock_stays_locked() {
        let s = OptikSkipList2::new();
        assert!(s.insert(7, 70));
        // Grab the node before deletion.
        let node = unsafe { (*s.head).next[0].load(Ordering::Relaxed) };
        assert_eq!(s.delete(7), Some(70));
        // SAFETY: we have not quiesced since the retire.
        let v = unsafe { (*node).lock.get_version() };
        assert!(OptikVersioned::is_locked_version(v));
    }

    fn one_delete_wins<const FINE: bool>() {
        let s: Arc<OptikSkipList<FINE>> = Arc::new(OptikSkipList::new());
        for round in 1..=50u64 {
            assert!(s.insert(round, round));
            let mut handles = Vec::new();
            for _ in 0..6 {
                let s = Arc::clone(&s);
                handles.push(std::thread::spawn(move || s.delete(round).is_some()));
            }
            let winners: usize = handles
                .into_iter()
                .map(|h| usize::from(h.join().unwrap()))
                .sum();
            assert_eq!(winners, 1, "round {round}");
        }
        assert!(s.is_empty());
    }

    #[test]
    fn one_delete_wins_optik1() {
        one_delete_wins::<true>();
    }

    #[test]
    fn one_delete_wins_optik2() {
        one_delete_wins::<false>();
    }

    #[test]
    fn eager_insertion_survives_interleaved_deletes() {
        // Concurrent inserts and deletes of overlapping tall towers.
        let s = Arc::new(OptikSkipList2::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut net = 0i64;
                let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                for _ in 0..synchro::stress::ops(10_000) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % 16 + 1; // very hot keys
                    if x % 2 == 0 {
                        if s.insert(k, k) {
                            net += 1;
                        }
                    } else if s.delete(k).is_some() {
                        net -= 1;
                    }
                }
                net
            }));
        }
        let net: i64 =
            reclaim::offline_while(|| handles.into_iter().map(|h| h.join().unwrap()).sum());
        assert_eq!(s.len() as i64, net);
    }
}
