//! Pessimistic lock-based array map (the paper's *mcs* baseline, Fig. 7).
//!
//! "All three operations grab the lock and then traverse the array" (§4.1).
//! The global lock is an MCS queue lock, the strongest-scaling classic
//! choice for a heavily contended single lock.

use std::cell::UnsafeCell;

use synchro::McsLock;

use crate::{ArrayMap, Key, Val, EMPTY_KEY};

/// A fixed-capacity array map where every operation holds a global MCS lock.
pub struct LockArrayMap {
    lock: McsLock,
    slots: Box<[UnsafeCell<(Key, Val)>]>,
}

// SAFETY: every slot access happens inside the MCS critical section.
unsafe impl Send for LockArrayMap {}
unsafe impl Sync for LockArrayMap {}

impl LockArrayMap {
    /// Creates a map with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            lock: McsLock::new(),
            slots: (0..capacity)
                .map(|_| UnsafeCell::new((EMPTY_KEY, 0)))
                .collect(),
        }
    }
}

impl ArrayMap for LockArrayMap {
    fn search(&self, key: Key) -> Option<Val> {
        debug_assert_ne!(key, EMPTY_KEY);
        self.lock.with(|| {
            for slot in self.slots.iter() {
                // SAFETY: inside the critical section.
                let (k, v) = unsafe { *slot.get() };
                if k == key {
                    return Some(v);
                }
            }
            None
        })
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        debug_assert_ne!(key, EMPTY_KEY);
        self.lock.with(|| {
            let mut free = None;
            for (i, slot) in self.slots.iter().enumerate() {
                // SAFETY: inside the critical section.
                let (k, _) = unsafe { *slot.get() };
                if k == key {
                    return false;
                }
                if k == EMPTY_KEY && free.is_none() {
                    free = Some(i);
                }
            }
            match free {
                Some(i) => {
                    // SAFETY: inside the critical section.
                    unsafe { *self.slots[i].get() = (key, val) };
                    true
                }
                None => false,
            }
        })
    }

    fn put(&self, key: Key, val: Val) -> Option<Val> {
        debug_assert_ne!(key, EMPTY_KEY);
        self.lock.with(|| {
            let mut free = None;
            for (i, slot) in self.slots.iter().enumerate() {
                // SAFETY: inside the critical section.
                let (k, v) = unsafe { *slot.get() };
                if k == key {
                    // SAFETY: inside the critical section.
                    unsafe { (*slot.get()).1 = val };
                    return Some(v);
                }
                if k == EMPTY_KEY && free.is_none() {
                    free = Some(i);
                }
            }
            let i = free.expect("put on a full LockArrayMap: size the capacity for the workload");
            // SAFETY: inside the critical section.
            unsafe { *self.slots[i].get() = (key, val) };
            None
        })
    }

    fn delete(&self, key: Key) -> Option<Val> {
        debug_assert_ne!(key, EMPTY_KEY);
        self.lock.with(|| {
            for slot in self.slots.iter() {
                // SAFETY: inside the critical section.
                let (k, v) = unsafe { *slot.get() };
                if k == key {
                    // SAFETY: inside the critical section.
                    unsafe { (*slot.get()).0 = EMPTY_KEY };
                    return Some(v);
                }
            }
            None
        })
    }

    fn len(&self) -> usize {
        self.lock.with(|| {
            self.slots
                .iter()
                // SAFETY: inside the critical section.
                .filter(|s| unsafe { (*s.get()).0 } != EMPTY_KEY)
                .count()
        })
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn for_each(&self, f: &mut dyn FnMut(Key, Val)) {
        self.lock.with(|| {
            for slot in self.slots.iter() {
                // SAFETY: inside the critical section.
                let (k, v) = unsafe { *slot.get() };
                if k != EMPTY_KEY {
                    f(k, v);
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_threaded_semantics() {
        let m = LockArrayMap::new(3);
        assert!(m.insert(7, 70));
        assert!(!m.insert(7, 71));
        assert_eq!(m.search(7), Some(70));
        assert_eq!(m.delete(7), Some(70));
        assert_eq!(m.search(7), None);
    }

    #[test]
    fn concurrent_unique_inserts_all_land() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 8;
        let m = Arc::new(LockArrayMap::new((THREADS * PER_THREAD) as usize));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let k = t * PER_THREAD + i + 1;
                    assert!(m.insert(k, k * 2));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), (THREADS * PER_THREAD) as usize);
        for k in 1..=THREADS * PER_THREAD {
            assert_eq!(m.search(k), Some(k * 2));
        }
    }

    #[test]
    fn concurrent_insert_delete_count_is_consistent() {
        use std::sync::atomic::{AtomicI64, Ordering};
        let m = Arc::new(LockArrayMap::new(32));
        let net = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let m = Arc::clone(&m);
            let net = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    let k = (t * 5_000 + i) % 40 + 1;
                    if i % 2 == 0 {
                        if m.insert(k, k) {
                            net.fetch_add(1, Ordering::Relaxed);
                        }
                    } else if m.delete(k).is_some() {
                        net.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len() as i64, net.load(Ordering::Relaxed));
    }
}
