//! The OPTIK-based concurrent array map (Figure 6 of the paper).
//!
//! The pessimistic map's operations are split into the three OPTIK phases:
//! (i) optimistic read-only traversal, (ii) single-CAS lock-and-validate,
//! (iii) synchronized write. The payoffs (Figure 7):
//!
//! - searches never lock: they take a key–value snapshot and validate it
//!   against the version number;
//! - infeasible updates (insert of a present key, delete of an absent key)
//!   return without ever synchronizing;
//! - feasible updates that lose the validation race restart *without having
//!   waited behind the lock*.

use std::sync::atomic::{AtomicU64, Ordering};

use optik::{OptikLock, OptikVersioned};
use synchro::Backoff;

use crate::{ArrayMap, Key, Val, EMPTY_KEY};

struct Slot {
    key: AtomicU64,
    val: AtomicU64,
}

/// The OPTIK-based fixed-capacity array map, generic over the OPTIK lock
/// implementation (versioned by default, as in the paper's evaluation).
pub struct OptikArrayMap<L: OptikLock = OptikVersioned> {
    lock: L,
    slots: Box<[Slot]>,
}

impl<L: OptikLock> OptikArrayMap<L> {
    /// Creates a map with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            lock: L::default(),
            slots: (0..capacity)
                .map(|_| Slot {
                    key: AtomicU64::new(EMPTY_KEY),
                    val: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Reads the current OPTIK version — exposed for ablation benches.
    pub fn version(&self) -> optik::Version {
        self.lock.get_version()
    }
}

impl<L: OptikLock> ArrayMap for OptikArrayMap<L> {
    fn search(&self, key: Key) -> Option<Val> {
        debug_assert_ne!(key, EMPTY_KEY);
        'restart: loop {
            // An *unlocked* version baseline: guarantees the upcoming
            // key/value snapshot was not concurrent with any update that
            // completed mid-traversal (Fig. 6(c) line 3 discussion).
            let vn = self.lock.get_version_wait();
            for slot in self.slots.iter() {
                if slot.key.load(Ordering::Acquire) == key {
                    let val = slot.val.load(Ordering::Relaxed);
                    if self.lock.validate(vn) {
                        return Some(val);
                    }
                    continue 'restart;
                }
            }
            // Not found: linearizable without validation — either the key
            // was absent throughout, or we linearize before a concurrent
            // insert / after a concurrent delete (§4.1 correctness).
            return None;
        }
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        debug_assert_ne!(key, EMPTY_KEY);
        let mut bo = Backoff::adaptive();
        loop {
            let vn = self.lock.get_version();
            if L::is_locked_version(vn) {
                // try_lock_version can never succeed on a locked baseline.
                synchro::relax();
                continue;
            }
            let mut free = None;
            let mut found = false;
            for (i, slot) in self.slots.iter().enumerate() {
                let k = slot.key.load(Ordering::Acquire);
                if k == key {
                    found = true;
                    break;
                }
                if k == EMPTY_KEY && free.is_none() {
                    free = Some(i);
                }
            }
            if found {
                // Infeasible: return false without ever locking. The key was
                // present at some instant during the operation.
                return false;
            }
            if !self.lock.try_lock_version(vn) {
                bo.backoff();
                continue;
            }
            // Critical section: the version validated, so the traversal's
            // conclusions (key absent, `free` still empty) still hold.
            let res = match free {
                Some(i) => {
                    let slot = &self.slots[i];
                    // Value first, then key: a concurrent search matches on
                    // the key, so the value must already be in place (its
                    // snapshot is additionally version-validated).
                    slot.val.store(val, Ordering::Relaxed);
                    slot.key.store(key, Ordering::Release);
                    true
                }
                None => false,
            };
            self.lock.unlock();
            return res;
        }
    }

    fn put(&self, key: Key, val: Val) -> Option<Val> {
        debug_assert_ne!(key, EMPTY_KEY);
        let mut bo = Backoff::adaptive();
        loop {
            let vn = self.lock.get_version();
            if L::is_locked_version(vn) {
                synchro::relax();
                continue;
            }
            // Optimistic traversal: find the key, or the first free slot.
            let mut free = None;
            let mut found = None;
            for (i, slot) in self.slots.iter().enumerate() {
                let k = slot.key.load(Ordering::Acquire);
                if k == key {
                    found = Some(i);
                    break;
                }
                if k == EMPTY_KEY && free.is_none() {
                    free = Some(i);
                }
            }
            // Both outcomes of an upsert are feasible writes, so (unlike
            // insert/delete) put always locks; the validation guarantees
            // the traversal's conclusion (slot index) still holds.
            if !self.lock.try_lock_version(vn) {
                bo.backoff();
                continue;
            }
            let prev = match found {
                Some(i) => {
                    // In-place value replacement: concurrent searches that
                    // overlapped this critical section fail validation and
                    // restart, so no torn (key, value) snapshot escapes.
                    let slot = &self.slots[i];
                    let old = slot.val.load(Ordering::Relaxed);
                    slot.val.store(val, Ordering::Relaxed);
                    Some(old)
                }
                None => {
                    let i = free
                        .expect("put on a full OptikArrayMap: size the capacity for the workload");
                    let slot = &self.slots[i];
                    // Value first, then key (see `insert`).
                    slot.val.store(val, Ordering::Relaxed);
                    slot.key.store(key, Ordering::Release);
                    None
                }
            };
            self.lock.unlock();
            return prev;
        }
    }

    fn delete(&self, key: Key) -> Option<Val> {
        debug_assert_ne!(key, EMPTY_KEY);
        let mut bo = Backoff::adaptive();
        'restart: loop {
            let vn = self.lock.get_version();
            if L::is_locked_version(vn) {
                synchro::relax();
                continue;
            }
            for slot in self.slots.iter() {
                if slot.key.load(Ordering::Acquire) == key {
                    if !self.lock.try_lock_version(vn) {
                        bo.backoff();
                        continue 'restart;
                    }
                    // Validated: the slot still holds `key`.
                    slot.key.store(EMPTY_KEY, Ordering::Relaxed);
                    let val = slot.val.load(Ordering::Relaxed);
                    self.lock.unlock();
                    return Some(val);
                }
            }
            // Not found: no synchronization needed (Fig. 6(a) line 20).
            return None;
        }
    }

    fn len(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.key.load(Ordering::Relaxed) != EMPTY_KEY)
            .count()
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn for_each(&self, f: &mut dyn FnMut(Key, Val)) {
        // Raw slot sweep with no version validation — per the trait
        // contract, entry-level consistency is the caller's problem (the kv
        // store scans under its shard lock or validates afterwards).
        for slot in self.slots.iter() {
            let k = slot.key.load(Ordering::Acquire);
            if k != EMPTY_KEY {
                f(k, slot.val.load(Ordering::Relaxed));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optik::OptikTicket;
    use std::sync::Arc;

    #[test]
    fn single_threaded_semantics() {
        let m: OptikArrayMap = OptikArrayMap::new(4);
        assert!(m.insert(9, 90));
        assert!(!m.insert(9, 91));
        assert_eq!(m.search(9), Some(90));
        assert_eq!(m.delete(9), Some(90));
        assert_eq!(m.delete(9), None);
        assert!(m.is_empty());
    }

    #[test]
    fn works_with_ticket_locks_too() {
        let m: OptikArrayMap<OptikTicket> = OptikArrayMap::new(4);
        assert!(m.insert(1, 10));
        assert_eq!(m.search(1), Some(10));
        assert_eq!(m.delete(1), Some(10));
    }

    #[test]
    fn infeasible_updates_do_not_bump_version() {
        let m: OptikArrayMap = OptikArrayMap::new(4);
        assert!(m.insert(1, 10));
        let v = m.version();
        assert!(!m.insert(1, 11), "present key");
        assert_eq!(m.delete(2), None, "absent key");
        assert_eq!(m.search(1), Some(10));
        assert_eq!(m.version(), v, "read-only paths must not synchronize");
    }

    #[test]
    fn full_map_insert_bumps_version_but_fails() {
        // The paper notes this case: a full map forces insert to lock before
        // discovering there is no free slot.
        let m: OptikArrayMap = OptikArrayMap::new(1);
        assert!(m.insert(1, 10));
        let v = m.version();
        assert!(!m.insert(2, 20));
        assert_ne!(m.version(), v, "locked, found no slot, unlocked");
    }

    #[test]
    fn put_upserts_in_place() {
        let m: OptikArrayMap = OptikArrayMap::new(2);
        assert_eq!(m.put(1, 10), None);
        assert_eq!(m.put(1, 11), Some(10));
        assert_eq!(m.search(1), Some(11));
        assert_eq!(m.put(2, 20), None);
        assert_eq!(m.len(), 2);
        // An in-place update must not consume a slot.
        assert_eq!(m.put(2, 21), Some(20));
        assert_eq!(m.delete(1), Some(11));
        assert_eq!(m.put(3, 30), None);
        assert_eq!(m.search(3), Some(30));
    }

    #[test]
    fn concurrent_puts_never_leak_torn_values() {
        // One writer upserts key 1 with even-step values; readers must only
        // ever observe values the writer actually bound.
        let m: Arc<OptikArrayMap> = Arc::new(OptikArrayMap::new(2));
        assert_eq!(m.put(1, 0), None);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for i in 1..=synchro::stress::ops(50_000) {
                    assert_eq!(m.put(1, i * 2), Some((i - 1) * 2), "lost update");
                }
            }));
        }
        for _ in 0..3 {
            let m = Arc::clone(&m);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let v = m.search(1).expect("key 1 is never removed");
                    assert_eq!(v % 2, 0, "torn value {v}");
                }
            }));
        }
        handles.remove(0).join().unwrap();
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_disjoint_keys_all_operations_exact() {
        const THREADS: u64 = 8;
        const OPS: u64 = 10_000;
        let m: Arc<OptikArrayMap> = Arc::new(OptikArrayMap::new(THREADS as usize));
        let mut handles = Vec::new();
        for t in 1..=THREADS {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for i in 0..OPS {
                    assert!(m.insert(t, t * 1000 + i), "thread {t} owns key {t}");
                    assert_eq!(m.search(t), Some(t * 1000 + i));
                    assert_eq!(m.delete(t), Some(t * 1000 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(m.is_empty());
    }

    #[test]
    fn searches_never_observe_foreign_values() {
        // Writers cycle key k with values that are multiples of k; readers
        // must never snapshot a (key, value) pair from two different writes.
        const WRITERS: u64 = 4;
        const READERS: usize = 4;
        const OPS: u64 = 20_000;
        let m: Arc<OptikArrayMap> = Arc::new(OptikArrayMap::new(WRITERS as usize));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let mut handles = Vec::new();
        for t in 1..=WRITERS {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for i in 1..=OPS {
                    assert!(m.insert(t, t * i));
                    assert_eq!(m.delete(t), Some(t * i));
                }
            }));
        }
        for _ in 0..READERS {
            let m = Arc::clone(&m);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut hits = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for t in 1..=WRITERS {
                        if let Some(v) = m.search(t) {
                            assert_eq!(v % t, 0, "validated snapshot mixed key {t} with value {v}");
                            hits += 1;
                        }
                    }
                }
                std::hint::black_box(hits);
            }));
        }
        // Join writers (first WRITERS handles), then stop readers.
        for h in handles.drain(..WRITERS as usize) {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_contended_slots_maintain_net_count() {
        use std::sync::atomic::AtomicI64;
        let m: Arc<OptikArrayMap> = Arc::new(OptikArrayMap::new(16));
        let net = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let m = Arc::clone(&m);
            let net = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                for i in 0..synchro::stress::ops(10_000) {
                    let k = (t * 31 + i * 7) % 24 + 1;
                    if (t + i) % 2 == 0 {
                        if m.insert(k, k) {
                            net.fetch_add(1, Ordering::Relaxed);
                        }
                    } else if m.delete(k).is_some() {
                        net.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len() as i64, net.load(Ordering::Relaxed));
    }
}
