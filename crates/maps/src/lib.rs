//! Array maps (§4.1 of the OPTIK paper).
//!
//! A *map* here is a fixed-capacity array of key–value pairs with the three
//! search-data-structure operations: `search`, `insert`, `delete`. There is
//! no resizing (matching the paper: "insertions that do not find an empty
//! spot return false").
//!
//! Three implementations:
//!
//! - [`SeqArrayMap`] — plain sequential baseline (and test oracle).
//! - [`LockArrayMap`] — the paper's pessimistic baseline: every operation
//!   runs under a global MCS lock (*mcs* in Figure 7).
//! - [`OptikArrayMap`] — the OPTIK-based map of Figure 6: searches and
//!   infeasible updates complete without ever locking; feasible updates
//!   lock-and-validate with a single CAS (*optik* in Figure 7).
//!
//! Keys and values are `u64`; key `0` is reserved as the empty-slot marker
//! (the paper uses `NULL`).

#![warn(missing_docs)]

mod lock_map;
mod optik_map;
mod seq_map;

pub use lock_map::LockArrayMap;
pub use optik_map::OptikArrayMap;
pub use seq_map::SeqArrayMap;

/// Key type. `0` is reserved (empty-slot marker) and must not be inserted.
pub type Key = u64;
/// Value type.
pub type Val = u64;

/// Reserved key marking an empty slot.
pub const EMPTY_KEY: Key = 0;

/// Common interface of the array maps, used by the benchmarks and the
/// cross-implementation tests.
pub trait ArrayMap: Send + Sync {
    /// Searches for `key`, returning its value if present.
    fn search(&self, key: Key) -> Option<Val>;
    /// Inserts `key → val` if `key` is absent and a slot is free.
    /// Returns whether the insertion happened.
    fn insert(&self, key: Key, val: Val) -> bool;
    /// Inserts or atomically updates `key → val`, returning the previous
    /// value (`None` = fresh insert). Unlike [`ArrayMap::insert`], a
    /// present key is *feasible*: its value is replaced in place, with no
    /// window in which the key is absent.
    ///
    /// # Panics
    ///
    /// Panics if `key` is absent and the map is full — fixed-capacity maps
    /// have no resize path (§4.1), so overflow is a sizing bug at the
    /// caller, not an outcome.
    fn put(&self, key: Key, val: Val) -> Option<Val>;
    /// Removes `key`, returning its value if it was present.
    fn delete(&self, key: Key) -> Option<Val>;
    /// Number of occupied slots (O(capacity); linearizes only when quiesced).
    fn len(&self) -> usize;
    /// Whether the map is empty (see [`ArrayMap::len`]).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Slot capacity.
    fn capacity(&self) -> usize;
    /// Visits every occupied slot once. Consistent only in quiescence (or
    /// under whatever external lock excludes writers); see
    /// [`optik_harness::api::ConcurrentMap::for_each`].
    fn for_each(&self, f: &mut dyn FnMut(Key, Val));
}

// The array maps expose the harness's three-operation set interface
// directly (an insert on a full map fails, like any other infeasible
// insert), so the scenario registry and the correctness tiers can drive
// them without per-call-site adapters.
macro_rules! impl_concurrent_set {
    ($ty:ty) => {
        impl optik_harness::api::ConcurrentSet for $ty {
            fn search(&self, key: Key) -> Option<Val> {
                ArrayMap::search(self, key)
            }
            fn insert(&self, key: Key, val: Val) -> bool {
                ArrayMap::insert(self, key, val)
            }
            fn delete(&self, key: Key) -> Option<Val> {
                ArrayMap::delete(self, key)
            }
            fn len(&self) -> usize {
                ArrayMap::len(self)
            }
        }
    };
}

impl_concurrent_set!(SeqArrayMap);
impl_concurrent_set!(LockArrayMap);
impl_concurrent_set!(OptikArrayMap<optik::OptikVersioned>);
impl_concurrent_set!(OptikArrayMap<optik::OptikTicket>);

// The same maps under the kv subsystem's upsert interface: `put` replaces
// in place where `insert` would have failed.
macro_rules! impl_concurrent_map {
    ($ty:ty) => {
        impl optik_harness::api::ConcurrentMap for $ty {
            fn get(&self, key: Key) -> Option<Val> {
                ArrayMap::search(self, key)
            }
            fn put(&self, key: Key, val: Val) -> Option<Val> {
                ArrayMap::put(self, key, val)
            }
            fn remove(&self, key: Key) -> Option<Val> {
                ArrayMap::delete(self, key)
            }
            fn len(&self) -> usize {
                ArrayMap::len(self)
            }
            fn for_each(&self, f: &mut dyn FnMut(Key, Val)) {
                ArrayMap::for_each(self, f)
            }
        }
    };
}

impl_concurrent_map!(SeqArrayMap);
impl_concurrent_map!(LockArrayMap);
impl_concurrent_map!(OptikArrayMap<optik::OptikVersioned>);
impl_concurrent_map!(OptikArrayMap<optik::OptikTicket>);

#[cfg(test)]
mod cross_tests {
    //! Behavioural equivalence of all three maps, single-threaded.

    use super::*;

    fn implementations(cap: usize) -> Vec<(&'static str, Box<dyn ArrayMap>)> {
        vec![
            ("seq", Box::new(SeqArrayMap::new(cap))),
            ("mcs", Box::new(LockArrayMap::new(cap))),
            (
                "optik",
                Box::new(OptikArrayMap::<optik::OptikVersioned>::new(cap)),
            ),
        ]
    }

    #[test]
    fn insert_search_delete_roundtrip() {
        for (name, m) in implementations(8) {
            assert!(m.insert(5, 50), "{name}");
            assert!(!m.insert(5, 51), "{name}: duplicate insert must fail");
            assert_eq!(m.search(5), Some(50), "{name}");
            assert_eq!(m.delete(5), Some(50), "{name}");
            assert_eq!(m.delete(5), None, "{name}");
            assert_eq!(m.search(5), None, "{name}");
            assert!(m.is_empty(), "{name}");
        }
    }

    #[test]
    fn capacity_limit_rejects_insert() {
        for (name, m) in implementations(2) {
            assert!(m.insert(1, 10), "{name}");
            assert!(m.insert(2, 20), "{name}");
            assert!(!m.insert(3, 30), "{name}: map is full");
            assert_eq!(m.len(), 2, "{name}");
            // Freeing a slot admits a new key.
            assert_eq!(m.delete(1), Some(10), "{name}");
            assert!(m.insert(3, 30), "{name}");
            assert_eq!(m.search(3), Some(30), "{name}");
        }
    }

    #[test]
    fn slots_are_reused_after_delete() {
        for (name, m) in implementations(4) {
            for round in 0..50u64 {
                let k = round + 1;
                assert!(m.insert(k, k * 10), "{name}");
                assert_eq!(m.delete(k), Some(k * 10), "{name}");
            }
            assert!(m.is_empty(), "{name}");
            assert_eq!(m.capacity(), 4, "{name}");
        }
    }

    #[test]
    fn random_ops_match_oracle() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let oracle = SeqArrayMap::new(16);
        let subjects: Vec<(&str, Box<dyn ArrayMap>)> = vec![
            ("mcs", Box::new(LockArrayMap::new(16))),
            (
                "optik",
                Box::new(OptikArrayMap::<optik::OptikVersioned>::new(16)),
            ),
        ];
        for _ in 0..20_000 {
            let key = rng.gen_range(1..=24u64);
            match rng.gen_range(0..3) {
                0 => {
                    let expect = oracle.insert(key, key * 7);
                    for (name, s) in &subjects {
                        assert_eq!(s.insert(key, key * 7), expect, "{name} insert({key})");
                    }
                }
                1 => {
                    let expect = oracle.delete(key);
                    for (name, s) in &subjects {
                        assert_eq!(s.delete(key), expect, "{name} delete({key})");
                    }
                }
                _ => {
                    let expect = oracle.search(key);
                    for (name, s) in &subjects {
                        assert_eq!(s.search(key), expect, "{name} search({key})");
                    }
                }
            }
        }
    }
}
