//! Sequential array map: the single-threaded baseline and test oracle.

use std::cell::UnsafeCell;

use crate::{ArrayMap, Key, Val, EMPTY_KEY};

/// A fixed-capacity sequential array map.
///
/// Not thread-safe for concurrent use — it exists as the algorithmic
/// baseline the concurrent maps are transformed from (§4.1) and as the
/// oracle for the cross-implementation tests. It still implements
/// [`ArrayMap`] (which requires `Send + Sync`) so it can stand in wherever
/// external synchronization is guaranteed; all interior access is unsafe
/// only in the presence of actual races, which its users must exclude.
pub struct SeqArrayMap {
    slots: Box<[UnsafeCell<(Key, Val)>]>,
}

// SAFETY: users must serialize access (documented above); the test oracle
// and the single-threaded benches do.
unsafe impl Send for SeqArrayMap {}
unsafe impl Sync for SeqArrayMap {}

impl SeqArrayMap {
    /// Creates a map with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new((EMPTY_KEY, 0)))
                .collect(),
        }
    }

    // Interior mutability through UnsafeCell: sound only under the struct's
    // external-serialization contract, like `SeqList`.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    fn slot(&self, i: usize) -> &mut (Key, Val) {
        // SAFETY: callers are externally serialized (struct contract).
        unsafe { &mut *self.slots[i].get() }
    }
}

impl ArrayMap for SeqArrayMap {
    fn search(&self, key: Key) -> Option<Val> {
        debug_assert_ne!(key, EMPTY_KEY);
        for i in 0..self.slots.len() {
            let (k, v) = *self.slot(i);
            if k == key {
                return Some(v);
            }
        }
        None
    }

    fn insert(&self, key: Key, val: Val) -> bool {
        debug_assert_ne!(key, EMPTY_KEY);
        let mut free = None;
        for i in 0..self.slots.len() {
            let (k, _) = *self.slot(i);
            if k == key {
                return false;
            }
            if k == EMPTY_KEY && free.is_none() {
                free = Some(i);
            }
        }
        match free {
            Some(i) => {
                *self.slot(i) = (key, val);
                true
            }
            None => false,
        }
    }

    fn put(&self, key: Key, val: Val) -> Option<Val> {
        debug_assert_ne!(key, EMPTY_KEY);
        let mut free = None;
        for i in 0..self.slots.len() {
            let (k, v) = *self.slot(i);
            if k == key {
                self.slot(i).1 = val;
                return Some(v);
            }
            if k == EMPTY_KEY && free.is_none() {
                free = Some(i);
            }
        }
        let i = free.expect("put on a full SeqArrayMap: size the capacity for the workload");
        *self.slot(i) = (key, val);
        None
    }

    fn delete(&self, key: Key) -> Option<Val> {
        debug_assert_ne!(key, EMPTY_KEY);
        for i in 0..self.slots.len() {
            let (k, v) = *self.slot(i);
            if k == key {
                self.slot(i).0 = EMPTY_KEY;
                return Some(v);
            }
        }
        None
    }

    fn len(&self) -> usize {
        (0..self.slots.len())
            .filter(|&i| self.slot(i).0 != EMPTY_KEY)
            .count()
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn for_each(&self, f: &mut dyn FnMut(Key, Val)) {
        for i in 0..self.slots.len() {
            let (k, v) = *self.slot(i);
            if k != EMPTY_KEY {
                f(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn basic_semantics() {
        let m = SeqArrayMap::new(4);
        assert_eq!(m.capacity(), 4);
        assert!(m.insert(1, 10));
        assert!(m.insert(2, 20));
        assert_eq!(m.search(1), Some(10));
        assert_eq!(m.search(3), None);
        assert_eq!(m.delete(2), Some(20));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn put_upserts_and_for_each_visits() {
        let m = SeqArrayMap::new(4);
        assert_eq!(m.put(1, 10), None);
        assert_eq!(m.put(1, 11), Some(10));
        assert_eq!(m.put(2, 20), None);
        assert_eq!(m.search(1), Some(11));
        let mut seen = Vec::new();
        ArrayMap::for_each(&m, &mut |k, v| seen.push((k, v)));
        seen.sort_unstable();
        assert_eq!(seen, vec![(1, 11), (2, 20)]);
    }

    #[test]
    #[should_panic(expected = "full SeqArrayMap")]
    fn put_on_full_map_panics() {
        let m = SeqArrayMap::new(1);
        assert_eq!(m.put(1, 10), None);
        let _ = m.put(2, 20);
    }

    proptest! {
        /// Sequential semantics match a HashMap capped at `capacity`.
        #[test]
        fn matches_hashmap_model(ops in proptest::collection::vec(
            (0u8..3, 1u64..20, 0u64..1000), 1..200))
        {
            let m = SeqArrayMap::new(8);
            let mut model: HashMap<u64, u64> = HashMap::new();
            for (op, key, val) in ops {
                match op {
                    0 => {
                        let expect = !model.contains_key(&key) && model.len() < 8;
                        prop_assert_eq!(m.insert(key, val), expect);
                        if expect { model.insert(key, val); }
                    }
                    1 => {
                        let expect = model.remove(&key);
                        prop_assert_eq!(m.delete(key), expect);
                    }
                    _ => {
                        prop_assert_eq!(m.search(key), model.get(&key).copied());
                    }
                }
                prop_assert_eq!(m.len(), model.len());
            }
        }
    }
}
