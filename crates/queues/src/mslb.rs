//! The Michael-Scott two-lock queue [39] with MCS locks (*ms-lb*).
//!
//! One lock for the head (dequeues), one for the tail (enqueues); an
//! enqueue and a dequeue can run concurrently. The paper uses MCS locks
//! here ("for highly-contented locks, such as the locks in concurrent
//! queues, we use MCS locks"), which is what gives ms-lb its flat, stable
//! throughput curve in Figure 12 — until multiprogramming, where fair
//! spinning collapses.

use std::sync::atomic::{AtomicPtr, Ordering};

use synchro::{CachePadded, McsLock};

use crate::node::{queue_pool, Node, QueuePool};
use crate::{ConcurrentQueue, Val};

/// The two-lock MS queue. Nodes come from a per-queue type-stable pool.
pub struct MsLbQueue {
    head_lock: CachePadded<McsLock>,
    tail_lock: CachePadded<McsLock>,
    head: CachePadded<AtomicPtr<Node>>,
    tail: CachePadded<AtomicPtr<Node>>,
    pool: QueuePool,
}

// SAFETY: head/tail pointer mutation is serialized by the respective MCS
// locks; the midpoint node (dummy) transfers cleanly because dequeue stops
// at `next == null`.
unsafe impl Send for MsLbQueue {}
unsafe impl Sync for MsLbQueue {}

impl MsLbQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let pool = queue_pool();
        let dummy = pool.alloc_init(|| Node::make(0));
        Self {
            head_lock: CachePadded::new(McsLock::new()),
            tail_lock: CachePadded::new(McsLock::new()),
            head: CachePadded::new(AtomicPtr::new(dummy)),
            tail: CachePadded::new(AtomicPtr::new(dummy)),
            pool,
        }
    }
}

impl Default for MsLbQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentQueue for MsLbQueue {
    fn enqueue(&self, val: Val) {
        reclaim::quiescent();
        let node = self.pool.alloc_init(|| Node::make(val));
        self.tail_lock.with(|| {
            // SAFETY: tail mutation serialized by tail_lock; the tail node
            // is never freed while reachable (dequeue frees only strictly
            // older dummies).
            unsafe {
                let tail = self.tail.load(Ordering::Relaxed);
                (*tail).next.store(node, Ordering::Release);
                self.tail.store(node, Ordering::Release);
            }
        });
    }

    fn dequeue(&self) -> Option<Val> {
        reclaim::quiescent();
        self.head_lock.with(|| {
            // SAFETY: head mutation serialized by head_lock.
            unsafe {
                let dummy = self.head.load(Ordering::Relaxed);
                let next = (*dummy).next.load(Ordering::Acquire);
                if next.is_null() {
                    return None;
                }
                let val = (*next).val;
                self.head.store(next, Ordering::Release);
                // The old dummy is unreachable; retire via QSBR (len() and
                // the OPTIK-variant preparation patterns read head chains
                // without the head lock).
                reclaim::with_local(|h| self.pool.retire(dummy, h));
                Some(val)
            }
        })
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        // SAFETY: grace-period traversal.
        unsafe {
            let mut n = 0;
            let mut cur = (*self.head.load(Ordering::Acquire))
                .next
                .load(Ordering::Acquire);
            while !cur.is_null() {
                n += 1;
                cur = (*cur).next.load(Ordering::Acquire);
            }
            n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_basics() {
        let q = MsLbQueue::new();
        assert_eq!(q.dequeue(), None);
        for i in 0..10u64 {
            q.enqueue(i);
        }
        for i in 0..10u64 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_enqueue_dequeue_disjoint_locks() {
        let q = Arc::new(MsLbQueue::new());
        let count = synchro::stress::ops(100_000);
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..count {
                    q.enqueue(i);
                }
            })
        };
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut expected = 0u64;
                while expected < count {
                    if let Some(v) = q.dequeue() {
                        assert_eq!(v, expected, "single consumer sees FIFO");
                        expected += 1;
                    }
                }
            })
        };
        reclaim::offline_while(|| {
            producer.join().unwrap();
            consumer.join().unwrap();
        });
        assert!(q.is_empty());
    }
}
