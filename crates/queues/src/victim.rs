//! The victim-queue design (*optik3*, §5.4).
//!
//! "The enqueue implementation utilizes the `optik_num_queued` function of
//! OPTIK locks (on top of ticket locks). If the number of waiting nodes is
//! large (e.g., more than two in our implementation), then the thread
//! performs the insertion in a secondary *victim queue*, instead of
//! waiting behind the lock. The first thread to put a node in the empty
//! victim queue is responsible for linking the victim queue to the main
//! one. ... Operations that utilize the victim queue have to wait until
//! the victim queue has been emptied, thus their elements are visible in
//! the main queue. This waiting ensures that they can be linearized
//! properly."
//!
//! Concretely:
//!
//! - `vq_tail` is an atomic pointer; appenders `swap` themselves in and
//!   link `prev.next = self`. An appender whose swap returned null opened
//!   a fresh batch and becomes that batch's **linker**.
//! - The linker acquires the main tail lock (an [`OptikTicket`], whose
//!   queue length drives the victim decision), closes the batch
//!   (`vq_tail.swap(null)` — later appenders start a new batch), waits for
//!   all intra-batch links, splices the batch onto the main queue, then
//!   flips each batch node's `visible` flag.
//! - Non-linker appenders spin on their own node's `visible` flag before
//!   returning, preserving per-producer FIFO order.
//!
//! The dequeue side is optik2's `try_lock_version` dequeue.

use std::sync::atomic::{AtomicPtr, Ordering};

use optik::{OptikLock, OptikTicket, OptikVersioned};
use synchro::{Backoff, CachePadded};

use crate::node::{queue_pool, Node, QueuePool};
use crate::{ConcurrentQueue, Val};

/// Queue-length threshold beyond which enqueues divert to the victim queue
/// ("more than two in our implementation").
pub const VICTIM_THRESHOLD: u32 = 2;

/// The victim-queue MS variant (*optik3*).
pub struct VictimQueue {
    head_lock: CachePadded<OptikVersioned>,
    tail_lock: CachePadded<OptikTicket>,
    head: CachePadded<AtomicPtr<Node>>,
    tail: CachePadded<AtomicPtr<Node>>,
    vq_tail: CachePadded<AtomicPtr<Node>>,
    threshold: u32,
    pool: QueuePool,
}

// SAFETY: head updates via the OPTIK lock; tail updates under the ticket
// lock (incl. batch splicing); victim-batch membership via atomic swaps.
unsafe impl Send for VictimQueue {}
unsafe impl Sync for VictimQueue {}

impl VictimQueue {
    /// Creates an empty queue with the paper's threshold.
    pub fn new() -> Self {
        Self::with_threshold(VICTIM_THRESHOLD)
    }

    /// Creates an empty queue diverting to the victim queue once more than
    /// `threshold` threads hold or wait for the tail lock (ablation knob).
    pub fn with_threshold(threshold: u32) -> Self {
        let pool = queue_pool();
        let dummy = pool.alloc_init(|| Node::make(0));
        Self {
            head_lock: CachePadded::new(OptikVersioned::new()),
            tail_lock: CachePadded::new(OptikTicket::new()),
            head: CachePadded::new(AtomicPtr::new(dummy)),
            tail: CachePadded::new(AtomicPtr::new(dummy)),
            vq_tail: CachePadded::new(AtomicPtr::new(std::ptr::null_mut())),
            threshold,
            pool,
        }
    }

    /// Appends `first..=last` (a fully linked chain) to the main queue.
    /// Caller holds the tail lock.
    ///
    /// # Safety
    ///
    /// Chain nodes are exclusively owned by the splice (unreachable
    /// elsewhere); tail lock held.
    unsafe fn splice_locked(&self, first: *mut Node, last: *mut Node) {
        // SAFETY: per contract.
        unsafe {
            let tail = self.tail.load(Ordering::Relaxed);
            (*tail).next.store(first, Ordering::Release);
            self.tail.store(last, Ordering::Release);
        }
    }
}

impl Default for VictimQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentQueue for VictimQueue {
    fn enqueue(&self, val: Val) {
        reclaim::quiescent();
        let node = self.pool.alloc_init(|| Node::make(val));
        // Fast path: low contention — plain lock-based enqueue.
        if self.tail_lock.num_queued() <= self.threshold {
            let _v = self.tail_lock.lock();
            // SAFETY: tail lock held.
            unsafe { self.splice_locked(node, node) };
            self.tail_lock.unlock();
            return;
        }
        // Victim path: join the current batch.
        let prev = self.vq_tail.swap(node, Ordering::AcqRel);
        if !prev.is_null() {
            // SAFETY: `prev` is the batch predecessor; it stays alive at
            // least until its own visible flag is set (its owner spins).
            unsafe { (*prev).next.store(node, Ordering::Release) };
            // Wait until the batch linker made us visible in the main
            // queue (preserves per-producer FIFO).
            // SAFETY: node stays alive while we hold a reference (QSBR).
            unsafe {
                while !(*node).visible.load(Ordering::Acquire) {
                    synchro::relax();
                }
            }
            return;
        }
        // We opened the batch: we are the linker.
        let _v = self.tail_lock.lock();
        // Close the batch: subsequent appenders start a new one.
        let last = self.vq_tail.swap(std::ptr::null_mut(), Ordering::AcqRel);
        debug_assert!(!last.is_null(), "we put at least one node in");
        // Wait for intra-batch links to materialize, counting nodes.
        // SAFETY: batch nodes are alive (their owners spin on `visible`).
        unsafe {
            let mut cur = node;
            while cur != last {
                let mut next = (*cur).next.load(Ordering::Acquire);
                while next.is_null() {
                    synchro::relax();
                    next = (*cur).next.load(Ordering::Acquire);
                }
                cur = next;
            }
            // Splice [node..=last] into the main queue.
            self.splice_locked(node, last);
            self.tail_lock.unlock();
            // Publish visibility to the waiting appenders (ours included;
            // nobody waits on it, but keep the invariant uniform).
            let mut cur = node;
            loop {
                let next = (*cur).next.load(Ordering::Acquire);
                (*cur).visible.store(true, Ordering::Release);
                if cur == last {
                    break;
                }
                cur = next;
            }
        }
    }

    fn dequeue(&self) -> Option<Val> {
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        loop {
            let v = self.head_lock.get_version();
            if OptikVersioned::is_locked_version(v) {
                synchro::relax();
                continue;
            }
            // SAFETY: grace period.
            unsafe {
                let dummy = self.head.load(Ordering::Acquire);
                let next = (*dummy).next.load(Ordering::Acquire);
                if next.is_null() {
                    return None;
                }
                let val = (*next).val;
                if self.head_lock.try_lock_version(v) {
                    self.head.store(next, Ordering::Release);
                    self.head_lock.unlock();
                    // SAFETY: dummy unreachable; retired once.
                    reclaim::with_local(|h| self.pool.retire(dummy, h));
                    return Some(val);
                }
                bo.backoff();
            }
        }
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        // SAFETY: grace-period traversal (victim batches not counted until
        // spliced — they are not yet linearized).
        unsafe {
            let mut n = 0;
            let mut cur = (*self.head.load(Ordering::Acquire))
                .next
                .load(Ordering::Acquire);
            while !cur.is_null() {
                n += 1;
                cur = (*cur).next.load(Ordering::Acquire);
            }
            n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_basics_via_fast_path() {
        let q = VictimQueue::new();
        for i in 1..=20u64 {
            q.enqueue(i);
        }
        for i in 1..=20u64 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn victim_path_under_heavy_enqueue_contention() {
        // Many enqueuers force num_queued over the threshold so the victim
        // path gets exercised; the final drain must see every element.
        let q = Arc::new(VictimQueue::new());
        const THREADS: u64 = 12;
        const PER: u64 = 20_000;
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER {
                    q.enqueue((t << 32) | i);
                }
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(q.len() as u64, THREADS * PER);
        // Single-threaded drain: per-producer order must hold.
        let mut last = [-1i64; THREADS as usize];
        while let Some(v) = q.dequeue() {
            let p = (v >> 32) as usize;
            let i = (v & 0xFFFF_FFFF) as i64;
            assert!(
                i > last[p],
                "producer {p} out of order: {i} after {}",
                last[p]
            );
            last[p] = i;
        }
        assert!(last.iter().all(|&l| l == PER as i64 - 1));
    }

    #[test]
    fn mixed_enqueue_dequeue_with_victims() {
        let q = Arc::new(VictimQueue::new());
        for i in 0..500u64 {
            q.enqueue(i);
        }
        let mut handles = Vec::new();
        for t in 0..10u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut net = 0i64;
                let mut x = t.wrapping_mul(0xD1342543DE82EF95) | 1;
                for _ in 0..15_000u64 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    if x % 5 < 3 {
                        q.enqueue(x);
                        net += 1;
                    } else if q.dequeue().is_some() {
                        net -= 1;
                    }
                }
                net
            }));
        }
        let net: i64 =
            reclaim::offline_while(|| handles.into_iter().map(|h| h.join().unwrap()).sum());
        assert_eq!(q.len() as i64, 500 + net);
    }
}
