//! The three OPTIK-optimized Michael-Scott queue variants (§5.4).
//!
//! All three share the same idea on the dequeue side: the dequeue is
//! *prepared optimistically* — read the dummy, its successor, and the
//! value with no lock held — and the OPTIK lock is then acquired with
//! validation, so "if the validation succeeds, only a single store is
//! performed in the critical section":
//!
//! - [`OptikQueue0`]: blocking `lock_version`; on validation failure the
//!   dequeue is re-prepared inside the critical section (classic fallback).
//! - [`OptikQueue1`]: non-blocking `try_lock_version`; on failure the whole
//!   operation restarts — never waits behind the lock just to fail.
//! - [`OptikQueue2`]: same dequeue as optik1, but the enqueue side is the
//!   *lock-free* MS enqueue, "because the enqueue operations do not offer
//!   any opportunities for optimism".
//!
//! Empty dequeues return without any synchronization. Dequeued dummies are
//! retired via QSBR because concurrent preparations read them unlocked.

use std::sync::atomic::{AtomicPtr, Ordering};

use optik::{OptikLock, OptikVersioned};
use synchro::{Backoff, CachePadded, McsLock};

use crate::node::{queue_pool, Node, QueuePool};
use crate::{ConcurrentQueue, Val};

/// Common state: MS list + OPTIK head lock + (optionally used) tail lock.
struct Core {
    head_lock: CachePadded<OptikVersioned>,
    tail_lock: CachePadded<McsLock>,
    head: CachePadded<AtomicPtr<Node>>,
    tail: CachePadded<AtomicPtr<Node>>,
    pool: QueuePool,
}

// SAFETY: head updates go through the OPTIK lock, tail updates through the
// MCS lock or MS CAS protocol; QSBR protects unlocked reads.
unsafe impl Send for Core {}
unsafe impl Sync for Core {}

impl Core {
    fn new() -> Self {
        let pool = queue_pool();
        let dummy = pool.alloc_init(|| Node::make(0));
        Self {
            head_lock: CachePadded::new(OptikVersioned::new()),
            tail_lock: CachePadded::new(McsLock::new()),
            head: CachePadded::new(AtomicPtr::new(dummy)),
            tail: CachePadded::new(AtomicPtr::new(dummy)),
            pool,
        }
    }

    /// Lock-based enqueue (the ms-lb side).
    fn enqueue_locked(&self, val: Val) {
        let node = self.pool.alloc_init(|| Node::make(val));
        self.tail_lock.with(|| {
            // SAFETY: tail serialized by tail_lock; see mslb.rs.
            unsafe {
                let tail = self.tail.load(Ordering::Relaxed);
                (*tail).next.store(node, Ordering::Release);
                self.tail.store(node, Ordering::Release);
            }
        });
    }

    /// Lock-free MS enqueue (the ms-lf side).
    fn enqueue_lockfree(&self, val: Val) {
        let node = self.pool.alloc_init(|| Node::make(val));
        let mut bo = Backoff::adaptive();
        // SAFETY: QSBR grace period.
        unsafe {
            loop {
                let tail = self.tail.load(Ordering::Acquire);
                let next = (*tail).next.load(Ordering::Acquire);
                if tail != self.tail.load(Ordering::Acquire) {
                    continue;
                }
                if next.is_null() {
                    if (*tail)
                        .next
                        .compare_exchange(
                            std::ptr::null_mut(),
                            node,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        let _ = self.tail.compare_exchange(
                            tail,
                            node,
                            Ordering::AcqRel,
                            Ordering::Relaxed,
                        );
                        return;
                    }
                    bo.backoff();
                } else {
                    let _ =
                        self.tail
                            .compare_exchange(tail, next, Ordering::AcqRel, Ordering::Relaxed);
                }
            }
        }
    }

    /// Optimistic dequeue preparation: `(version, dummy, next, val)`, or
    /// `None` when the queue is observed empty (no synchronization).
    ///
    /// `help_tail` must be true when enqueues are lock-free (the tail may
    /// lag onto the dummy we are about to retire).
    ///
    /// # Safety
    ///
    /// QSBR grace period.
    unsafe fn prepare(
        &self,
        help_tail: bool,
    ) -> Result<(optik::Version, *mut Node, *mut Node, Val), Option<Val>> {
        // SAFETY: per contract.
        unsafe {
            let v = self.head_lock.get_version();
            if OptikVersioned::is_locked_version(v) {
                synchro::relax();
                return Err(Some(0)); // sentinel: retry
            }
            let dummy = self.head.load(Ordering::Acquire);
            let next = (*dummy).next.load(Ordering::Acquire);
            if next.is_null() {
                return Err(None); // observed empty
            }
            if help_tail && dummy == self.tail.load(Ordering::Acquire) {
                // The lock-free enqueue's tail swing is pending; help it
                // past the dummy before we retire the dummy.
                let _ =
                    self.tail
                        .compare_exchange(dummy, next, Ordering::AcqRel, Ordering::Relaxed);
            }
            let val = (*next).val;
            Ok((v, dummy, next, val))
        }
    }

    /// Commits a validated dequeue: the "single store" of the paper.
    ///
    /// # Safety
    ///
    /// Caller holds the head OPTIK lock with a validated version.
    unsafe fn commit(&self, dummy: *mut Node, next: *mut Node) {
        self.head.store(next, Ordering::Release);
        self.head_lock.unlock();
        // SAFETY: dummy unreachable from the queue; retired once by the
        // committing dequeuer.
        unsafe { reclaim::with_local(|h| self.pool.retire(dummy, h)) };
    }

    fn len(&self) -> usize {
        // SAFETY: grace-period traversal.
        unsafe {
            let mut n = 0;
            let mut cur = (*self.head.load(Ordering::Acquire))
                .next
                .load(Ordering::Acquire);
            while !cur.is_null() {
                n += 1;
                cur = (*cur).next.load(Ordering::Acquire);
            }
            n
        }
    }
}

macro_rules! queue_wrapper {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        pub struct $name {
            core: Core,
        }

        impl $name {
            /// Creates an empty queue.
            pub fn new() -> Self {
                Self { core: Core::new() }
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new()
            }
        }
    };
}

queue_wrapper!(
    /// *optik0*: blocking `lock_version` dequeue with in-critical-section
    /// fallback; lock-based enqueue.
    OptikQueue0
);

queue_wrapper!(
    /// *optik1*: `try_lock_version` dequeue (restart on failure);
    /// lock-based enqueue.
    OptikQueue1
);

queue_wrapper!(
    /// *optik2*: `try_lock_version` dequeue + lock-free MS enqueue — the
    /// variant that "behaves practically the same as ms-lf, showing that
    /// the simple CAS validation of OPTIK locks does resemble
    /// lock-freedom".
    OptikQueue2
);

impl ConcurrentQueue for OptikQueue0 {
    fn enqueue(&self, val: Val) {
        reclaim::quiescent();
        self.core.enqueue_locked(val);
    }

    fn dequeue(&self) -> Option<Val> {
        reclaim::quiescent();
        loop {
            // SAFETY: grace period.
            unsafe {
                match self.core.prepare(false) {
                    Err(None) => return None,
                    Err(Some(_)) => continue, // lock observed held
                    Ok((v, dummy, next, val)) => {
                        if self.core.head_lock.lock_version(v) {
                            // Validated: single-store critical section.
                            self.core.commit(dummy, next);
                            return Some(val);
                        }
                        // Validation failed: full dequeue inside the CS.
                        let dummy = self.core.head.load(Ordering::Relaxed);
                        let next = (*dummy).next.load(Ordering::Acquire);
                        if next.is_null() {
                            self.core.head_lock.revert();
                            return None;
                        }
                        let val = (*next).val;
                        self.core.commit(dummy, next);
                        return Some(val);
                    }
                }
            }
        }
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        self.core.len()
    }
}

impl ConcurrentQueue for OptikQueue1 {
    fn enqueue(&self, val: Val) {
        reclaim::quiescent();
        self.core.enqueue_locked(val);
    }

    fn dequeue(&self) -> Option<Val> {
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        loop {
            // SAFETY: grace period.
            unsafe {
                match self.core.prepare(false) {
                    Err(None) => return None,
                    Err(Some(_)) => continue,
                    Ok((v, dummy, next, val)) => {
                        if self.core.head_lock.try_lock_version(v) {
                            self.core.commit(dummy, next);
                            return Some(val);
                        }
                        bo.backoff();
                    }
                }
            }
        }
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        self.core.len()
    }
}

impl ConcurrentQueue for OptikQueue2 {
    fn enqueue(&self, val: Val) {
        reclaim::quiescent();
        self.core.enqueue_lockfree(val);
    }

    fn dequeue(&self) -> Option<Val> {
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        loop {
            // SAFETY: grace period.
            unsafe {
                match self.core.prepare(true) {
                    Err(None) => return None,
                    Err(Some(_)) => continue,
                    Ok((v, dummy, next, val)) => {
                        if self.core.head_lock.try_lock_version(v) {
                            self.core.commit(dummy, next);
                            return Some(val);
                        }
                        bo.backoff();
                    }
                }
            }
        }
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        self.core.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn fifo_smoke<Q: ConcurrentQueue>(q: &Q) {
        assert_eq!(q.dequeue(), None);
        for i in 1..=50u64 {
            q.enqueue(i);
        }
        assert_eq!(q.len(), 50);
        for i in 1..=50u64 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn optik0_fifo() {
        fifo_smoke(&OptikQueue0::new());
    }

    #[test]
    fn optik1_fifo() {
        fifo_smoke(&OptikQueue1::new());
    }

    #[test]
    fn optik2_fifo() {
        fifo_smoke(&OptikQueue2::new());
    }

    #[test]
    fn optik2_tail_help_under_race() {
        // Tail lag: lock-free enqueue + immediate dequeue from many
        // threads; tail must never be left on a retired dummy.
        let q = Arc::new(OptikQueue2::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut balance = 0i64;
                for i in 0..synchro::stress::ops(30_000) {
                    q.enqueue(t * 1_000_000 + i);
                    balance += 1;
                    if q.dequeue().is_some() {
                        balance -= 1;
                    }
                }
                balance
            }));
        }
        let balance: i64 =
            reclaim::offline_while(|| handles.into_iter().map(|h| h.join().unwrap()).sum());
        assert_eq!(q.len() as i64, balance);
        // Drain and verify emptiness behaves.
        while q.dequeue().is_some() {}
        assert!(q.is_empty());
    }

    #[test]
    fn optik0_fallback_path_is_exercised() {
        // Heavy dequeue contention forces failed validations (and hence the
        // in-critical-section fallback).
        let q = Arc::new(OptikQueue0::new());
        let count = synchro::stress::ops(100_000);
        for i in 0..count {
            q.enqueue(i);
        }
        let mut handles = Vec::new();
        for _ in 0..8 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut got = 0u64;
                while q.dequeue().is_some() {
                    got += 1;
                }
                got
            }));
        }
        let total: u64 =
            reclaim::offline_while(|| handles.into_iter().map(|h| h.join().unwrap()).sum());
        assert_eq!(total, count);
    }
}
