//! Shared queue node.

use std::sync::atomic::AtomicPtr;

use optik_harness::api::Val;

pub(crate) struct Node {
    pub(crate) val: Val,
    pub(crate) next: AtomicPtr<Node>,
    /// Victim-queue visibility flag: set once the node has been spliced
    /// into the main queue (see `victim.rs`). Unused by the other queues.
    pub(crate) visible: std::sync::atomic::AtomicBool,
}

impl Node {
    pub(crate) fn boxed(val: Val) -> *mut Node {
        Box::into_raw(Box::new(Node {
            val,
            next: AtomicPtr::new(std::ptr::null_mut()),
            visible: std::sync::atomic::AtomicBool::new(false),
        }))
    }
}

/// Frees an entire dummy-headed chain; for `Drop` impls (exclusive access).
///
/// # Safety
///
/// `head` must be the start of an exclusively-owned chain of Box nodes.
pub(crate) unsafe fn drop_chain(head: *mut Node) {
    let mut cur = head;
    while !cur.is_null() {
        // SAFETY: exclusive ownership per contract.
        let next = unsafe { (*cur).next.load(std::sync::atomic::Ordering::Relaxed) };
        // SAFETY: as above.
        unsafe { drop(Box::from_raw(cur)) };
        cur = next;
    }
}
