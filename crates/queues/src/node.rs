//! Shared queue node.

use std::sync::atomic::AtomicPtr;
use std::sync::Arc;

use optik_harness::api::Val;
use reclaim::NodePool;

pub(crate) struct Node {
    pub(crate) val: Val,
    pub(crate) next: AtomicPtr<Node>,
    /// Victim-queue visibility flag: set once the node has been spliced
    /// into the main queue (see `victim.rs`). Unused by the other queues.
    pub(crate) visible: std::sync::atomic::AtomicBool,
}

impl Node {
    pub(crate) fn make(val: Val) -> Self {
        Node {
            val,
            next: AtomicPtr::new(std::ptr::null_mut()),
            visible: std::sync::atomic::AtomicBool::new(false),
        }
    }
}

/// One type-stable node pool per queue. Queue operations never cache node
/// pointers across operations (dummies are retired before the operation
/// that unlinked them returns), so recycled slots are plainly
/// re-initialized (`alloc_init`) after their grace period.
pub(crate) type QueuePool = Arc<NodePool<Node>>;

pub(crate) fn queue_pool() -> QueuePool {
    NodePool::new()
}
