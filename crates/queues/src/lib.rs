//! Concurrent FIFO queues (§5.4 of the OPTIK paper).
//!
//! Figure 12 compares six queues, all implemented here:
//!
//! | paper name | type            | design |
//! |------------|-----------------|--------|
//! | `ms-lf`    | [`MsLfQueue`]   | Michael-Scott lock-free queue \[39\] |
//! | `ms-lb`    | [`MsLbQueue`]   | Michael-Scott two-lock queue, MCS locks |
//! | `optik0`   | [`OptikQueue0`] | `lock_version`-prepared dequeue: validated critical section does one store |
//! | `optik1`   | [`OptikQueue1`] | `try_lock_version` dequeue (restart on failure), ms-lb enqueue |
//! | `optik2`   | [`OptikQueue2`] | lock-free MS enqueue + OPTIK trylock dequeue |
//! | `optik3`   | [`VictimQueue`] | optik2 dequeue + victim-queue enqueue driven by `optik_num_queued` |
//!
//! All queues share the Michael-Scott representation: a singly-linked list
//! with a dummy head node; `head` points at the dummy, `tail` at the last
//! node (it may lag in the lock-free variants). Dequeued dummies are
//! retired through QSBR because the OPTIK variants' *optimistic* dequeue
//! preparation reads `head`/`head.next` without holding any lock.

#![warn(missing_docs)]

mod mslb;
mod mslf;
mod node;
mod optik_q;
mod victim;

pub use mslb::MsLbQueue;
pub use mslf::MsLfQueue;
pub use optik_q::{OptikQueue0, OptikQueue1, OptikQueue2};
pub use victim::VictimQueue;

pub use optik_harness::api::{ConcurrentQueue, Val};

#[cfg(test)]
mod cross_tests {
    use super::*;
    use std::sync::Arc;

    fn implementations() -> Vec<(&'static str, Arc<dyn ConcurrentQueue>)> {
        vec![
            ("ms-lf", Arc::new(MsLfQueue::new())),
            ("ms-lb", Arc::new(MsLbQueue::new())),
            ("optik0", Arc::new(OptikQueue0::new())),
            ("optik1", Arc::new(OptikQueue1::new())),
            ("optik2", Arc::new(OptikQueue2::new())),
            ("optik3", Arc::new(VictimQueue::new())),
        ]
    }

    #[test]
    fn fifo_single_threaded() {
        for (name, q) in implementations() {
            assert!(q.is_empty(), "{name}");
            assert_eq!(q.dequeue(), None, "{name}");
            for i in 1..=100u64 {
                q.enqueue(i);
            }
            assert_eq!(q.len(), 100, "{name}");
            for i in 1..=100u64 {
                assert_eq!(q.dequeue(), Some(i), "{name}");
            }
            assert_eq!(q.dequeue(), None, "{name}");
            assert!(q.is_empty(), "{name}");
        }
    }

    #[test]
    fn interleaved_enqueue_dequeue() {
        for (name, q) in implementations() {
            for round in 0..50u64 {
                q.enqueue(round * 2);
                q.enqueue(round * 2 + 1);
                assert_eq!(q.dequeue(), Some(round * 2), "{name}");
                assert_eq!(q.dequeue(), Some(round * 2 + 1), "{name}");
            }
            assert!(q.is_empty(), "{name}");
        }
    }

    /// Per-producer FIFO: each producer's elements must be dequeued in
    /// their enqueue order (the fundamental queue guarantee that survives
    /// interleaving).
    #[test]
    fn per_producer_order_is_preserved() {
        const PRODUCERS: u64 = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: u64 = 20_000;
        for (name, q) in implementations() {
            let mut handles = Vec::new();
            for p in 0..PRODUCERS {
                let q = Arc::clone(&q);
                handles.push(std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        // Encode producer in the high bits, sequence in low.
                        q.enqueue((p << 32) | i);
                    }
                }));
            }
            let consumed = Arc::new(std::sync::Mutex::new(Vec::new()));
            let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let mut consumers = Vec::new();
            for _ in 0..CONSUMERS {
                let q = Arc::clone(&q);
                let consumed = Arc::clone(&consumed);
                let done = Arc::clone(&done);
                consumers.push(std::thread::spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        match q.dequeue() {
                            Some(v) => local.push(v),
                            None => {
                                if done.load(std::sync::atomic::Ordering::Acquire)
                                    && q.dequeue().is_none()
                                {
                                    break;
                                }
                                synchro::relax();
                            }
                        }
                    }
                    consumed.lock().unwrap().extend(local);
                }));
            }
            reclaim::offline_while(|| {
                for h in handles {
                    h.join().unwrap();
                }
                done.store(true, std::sync::atomic::Ordering::Release);
                for c in consumers {
                    c.join().unwrap();
                }
            });
            let consumed = consumed.lock().unwrap();
            assert_eq!(
                consumed.len() as u64,
                PRODUCERS * PER_PRODUCER,
                "{name}: all elements consumed exactly once"
            );
            // Per-producer monotonicity across the union of consumers is
            // not checkable directly (consumers interleave), but per
            // consumer, each producer's subsequence must be increasing.
            // Instead verify global multiset correctness:
            let mut sorted: Vec<u64> = consumed.clone();
            sorted.sort_unstable();
            let mut expect = Vec::new();
            for p in 0..PRODUCERS {
                for i in 0..PER_PRODUCER {
                    expect.push((p << 32) | i);
                }
            }
            expect.sort_unstable();
            assert_eq!(sorted, expect, "{name}: multiset mismatch");
        }
    }

    /// With one consumer, per-producer order IS directly checkable.
    #[test]
    fn single_consumer_sees_producer_order() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 10_000;
        for (name, q) in implementations() {
            let mut handles = Vec::new();
            for p in 0..PRODUCERS {
                let q = Arc::clone(&q);
                handles.push(std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        q.enqueue((p << 32) | i);
                    }
                }));
            }
            let consumer = {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut last = [-1i64; PRODUCERS as usize];
                    let mut n = 0u64;
                    while n < PRODUCERS * PER_PRODUCER {
                        if let Some(v) = q.dequeue() {
                            let p = (v >> 32) as usize;
                            let i = (v & 0xFFFF_FFFF) as i64;
                            assert!(i > last[p], "producer {p}: saw {i} after {}", last[p]);
                            last[p] = i;
                            n += 1;
                        } else {
                            synchro::relax();
                        }
                    }
                })
            };
            reclaim::offline_while(|| {
                for h in handles {
                    h.join().unwrap();
                }
                consumer.join().unwrap();
            });
            assert!(q.is_empty(), "{name}");
        }
    }

    #[test]
    fn concurrent_mixed_net_count() {
        for (name, q) in implementations() {
            for i in 0..1000u64 {
                q.enqueue(i);
            }
            let mut handles = Vec::new();
            for t in 0..8u64 {
                let q = Arc::clone(&q);
                handles.push(std::thread::spawn(move || {
                    let mut net = 0i64;
                    let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                    for _ in 0..synchro::stress::ops(20_000) {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        if x % 2 == 0 {
                            q.enqueue(x);
                            net += 1;
                        } else if q.dequeue().is_some() {
                            net -= 1;
                        }
                    }
                    net
                }));
            }
            let net: i64 =
                reclaim::offline_while(|| handles.into_iter().map(|h| h.join().unwrap()).sum());
            assert_eq!(q.len() as i64, 1000 + net, "{name}");
        }
    }
}
