//! The Michael-Scott lock-free queue [39] (*ms-lf* in Figure 12).

use std::sync::atomic::Ordering;

use synchro::{Backoff, CachePadded};

use crate::node::{queue_pool, Node, QueuePool};
use crate::{ConcurrentQueue, Val};

use std::sync::atomic::AtomicPtr;

/// The classic lock-free MS queue. Nodes come from a per-queue type-stable
/// pool.
pub struct MsLfQueue {
    head: CachePadded<AtomicPtr<Node>>,
    tail: CachePadded<AtomicPtr<Node>>,
    pool: QueuePool,
}

// SAFETY: all mutation is CAS; dummies are retired through QSBR.
unsafe impl Send for MsLfQueue {}
unsafe impl Sync for MsLfQueue {}

impl MsLfQueue {
    /// Creates an empty queue (a single dummy node).
    pub fn new() -> Self {
        let pool = queue_pool();
        let dummy = pool.alloc_init(|| Node::make(0));
        Self {
            head: CachePadded::new(AtomicPtr::new(dummy)),
            tail: CachePadded::new(AtomicPtr::new(dummy)),
            pool,
        }
    }
}

impl Default for MsLfQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentQueue for MsLfQueue {
    fn enqueue(&self, val: Val) {
        reclaim::quiescent();
        let node = self.pool.alloc_init(|| Node::make(val));
        let mut bo = Backoff::adaptive();
        // SAFETY: QSBR grace period; nodes reached via head/tail/next are
        // alive until our next quiescent point.
        unsafe {
            loop {
                let tail = self.tail.load(Ordering::Acquire);
                let next = (*tail).next.load(Ordering::Acquire);
                if tail != self.tail.load(Ordering::Acquire) {
                    continue; // inconsistent snapshot
                }
                if next.is_null() {
                    if (*tail)
                        .next
                        .compare_exchange(
                            std::ptr::null_mut(),
                            node,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        // Swing tail (failure is fine: someone helped).
                        let _ = self.tail.compare_exchange(
                            tail,
                            node,
                            Ordering::AcqRel,
                            Ordering::Relaxed,
                        );
                        return;
                    }
                    bo.backoff();
                } else {
                    // Help a lagging tail forward.
                    let _ =
                        self.tail
                            .compare_exchange(tail, next, Ordering::AcqRel, Ordering::Relaxed);
                }
            }
        }
    }

    fn dequeue(&self) -> Option<Val> {
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        // SAFETY: QSBR grace period.
        unsafe {
            loop {
                let head = self.head.load(Ordering::Acquire);
                let tail = self.tail.load(Ordering::Acquire);
                let next = (*head).next.load(Ordering::Acquire);
                if head != self.head.load(Ordering::Acquire) {
                    continue;
                }
                if head == tail {
                    if next.is_null() {
                        return None;
                    }
                    // Tail lagging; help.
                    let _ =
                        self.tail
                            .compare_exchange(tail, next, Ordering::AcqRel, Ordering::Relaxed);
                    continue;
                }
                // Read value before the CAS (the paper's original order:
                // after winning, `next` becomes the new dummy).
                let val = (*next).val;
                if self
                    .head
                    .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // SAFETY: the old dummy is now unreachable from the
                    // queue; concurrent snapshots retain it via QSBR.
                    reclaim::with_local(|h| self.pool.retire(head, h));
                    return Some(val);
                }
                bo.backoff();
            }
        }
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        // SAFETY: grace period traversal.
        unsafe {
            let mut n = 0;
            let mut cur = (*self.head.load(Ordering::Acquire))
                .next
                .load(Ordering::Acquire);
            while !cur.is_null() {
                n += 1;
                cur = (*cur).next.load(Ordering::Acquire);
            }
            n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_basics() {
        let q = MsLfQueue::new();
        assert_eq!(q.dequeue(), None);
        q.enqueue(1);
        q.enqueue(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn mpmc_drains_exactly() {
        let q = Arc::new(MsLfQueue::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..25_000u64 {
                    q.enqueue(t * 100_000 + i);
                }
            }));
        }
        let drained = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut consumers = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&q);
            let drained = Arc::clone(&drained);
            let done = Arc::clone(&done);
            consumers.push(std::thread::spawn(move || loop {
                if q.dequeue().is_some() {
                    drained.fetch_add(1, Ordering::Relaxed);
                } else if done.load(Ordering::Acquire) {
                    // Re-check once after `done`: a dequeue may still succeed
                    // and must be counted, not dropped.
                    if q.dequeue().is_some() {
                        drained.fetch_add(1, Ordering::Relaxed);
                    } else {
                        break;
                    }
                }
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
            done.store(true, Ordering::Release);
            for c in consumers {
                c.join().unwrap();
            }
        });
        assert_eq!(drained.load(Ordering::Relaxed), 100_000);
        assert!(q.is_empty());
    }
}
