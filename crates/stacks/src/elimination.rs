//! Elimination-backoff stack (Hendler, Shavit & Yerushalmi [24]).
//!
//! §5.5 of the paper names elimination as the known remedy for stack
//! contention ("there are ways to alleviate this problem, such as
//! aggressive backoff mechanisms, or elimination"). This implements that
//! future-work pointer: a [`crate::TreiberStack`] core plus an exchanger
//! array where a concurrent push and pop *eliminate* each other without
//! ever touching the stack top.
//!
//! Each exchanger slot runs a stamped three-state protocol
//! (`EMPTY → WAITING → DONE → EMPTY`, sequence number in the upper bits so
//! transitions never ABA):
//!
//! - a pusher that lost the top CAS publishes its value in a random slot
//!   and waits briefly for a popper; on timeout it withdraws;
//! - a popper that lost the top CAS scans a random slot; if it finds a
//!   waiting pusher it claims the value with one CAS.

use std::sync::atomic::{AtomicU64, Ordering};

use synchro::{Backoff, CachePadded};

use crate::{ConcurrentStack, TreiberStack, Val};

const TAG_EMPTY: u64 = 0;
const TAG_WAITING: u64 = 1;
const TAG_DONE: u64 = 2;
/// Slot claimed by a pusher that has not yet published its value. The
/// claim phase is what prevents two racing pushers from overwriting each
/// other's `val` before either wins the state CAS.
const TAG_CLAIM: u64 = 3;
const TAG_MASK: u64 = 0b11;

#[inline]
fn tag(word: u64) -> u64 {
    word & TAG_MASK
}

#[inline]
fn bump(word: u64, new_tag: u64) -> u64 {
    ((word >> 2) + 1) << 2 | new_tag
}

struct Slot {
    state: AtomicU64,
    val: AtomicU64,
}

/// How long a pusher camps on an exchanger slot before withdrawing.
const EXCHANGE_SPINS: u32 = 256;

/// A Treiber stack with an elimination layer.
pub struct EliminationStack {
    stack: TreiberStack,
    slots: Box<[CachePadded<Slot>]>,
    /// Cheap per-call slot randomization.
    ticket: AtomicU64,
}

impl EliminationStack {
    /// Default number of exchanger slots.
    pub const DEFAULT_SLOTS: usize = 8;

    /// Creates an empty stack with the default exchanger width.
    pub fn new() -> Self {
        Self::with_slots(Self::DEFAULT_SLOTS)
    }

    /// Creates an empty stack with `slots` exchanger slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn with_slots(slots: usize) -> Self {
        assert!(slots > 0, "need at least one exchanger slot");
        Self {
            stack: TreiberStack::new(),
            slots: (0..slots)
                .map(|_| {
                    CachePadded::new(Slot {
                        state: AtomicU64::new(TAG_EMPTY),
                        val: AtomicU64::new(0),
                    })
                })
                .collect(),
            ticket: AtomicU64::new(0),
        }
    }

    #[inline]
    fn pick_slot(&self) -> &Slot {
        let t = self.ticket.fetch_add(1, Ordering::Relaxed);
        // Golden-ratio scramble to decorrelate adjacent tickets.
        let i = (t.wrapping_mul(0x9E3779B97F4A7C15) >> 32) as usize % self.slots.len();
        &self.slots[i]
    }

    /// Offers `val` on the elimination array; `true` if a popper took it.
    fn try_eliminate_push(&self, val: Val) -> bool {
        let slot = self.pick_slot();
        let w = slot.state.load(Ordering::Acquire);
        if tag(w) != TAG_EMPTY {
            return false; // slot busy; fall back to the stack
        }
        // Claim first (CAS), publish the value second (store), open for
        // poppers third (store). Writing `val` before winning the claim
        // would let a racing pusher clobber the winner's value.
        let claim = bump(w, TAG_CLAIM);
        if slot
            .state
            .compare_exchange(w, claim, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        slot.val.store(val, Ordering::Relaxed);
        let waiting = bump(claim, TAG_WAITING);
        slot.state.store(waiting, Ordering::Release);
        // Camp briefly for a partner.
        for _ in 0..EXCHANGE_SPINS {
            let now = slot.state.load(Ordering::Acquire);
            if now != waiting {
                debug_assert_eq!(tag(now), TAG_DONE);
                // Partner took the value; recycle the slot.
                slot.state.store(bump(now, TAG_EMPTY), Ordering::Release);
                return true;
            }
            synchro::relax();
        }
        // Withdraw; a concurrent popper may beat us to it.
        match slot.state.compare_exchange(
            waiting,
            bump(waiting, TAG_EMPTY),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => false,
            Err(now) => {
                // Lost the withdrawal: the popper committed.
                debug_assert_eq!(tag(now), TAG_DONE);
                slot.state.store(bump(now, TAG_EMPTY), Ordering::Release);
                true
            }
        }
    }

    /// Tries to take a waiting pusher's value from the elimination array.
    fn try_eliminate_pop(&self) -> Option<Val> {
        let slot = self.pick_slot();
        let w = slot.state.load(Ordering::Acquire);
        if tag(w) != TAG_WAITING {
            return None;
        }
        // Read the value under the observed stamp; the stamped CAS below
        // guarantees it still belongs to that pusher.
        let val = slot.val.load(Ordering::Relaxed);
        if slot
            .state
            .compare_exchange(w, bump(w, TAG_DONE), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            Some(val)
        } else {
            None
        }
    }
}

impl Default for EliminationStack {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentStack for EliminationStack {
    fn push(&self, val: Val) {
        // Fast path: one attempt on the stack top.
        // (TreiberStack::push loops internally, so inline the attempt here
        // via pop/push of the elimination layer instead: try the stack
        // first with bounded retries, interleaving elimination attempts.)
        let mut bo = Backoff::adaptive();
        loop {
            // One optimistic stack attempt == full Treiber push when
            // uncontended; under contention it spins, so bound it by trying
            // elimination between backoffs.
            if self.try_eliminate_push_or_stack(val, &mut bo) {
                return;
            }
        }
    }

    fn pop(&self) -> Option<Val> {
        let mut bo = Backoff::adaptive();
        loop {
            match self.stack.try_pop_once() {
                Ok(v) => return v,
                Err(()) => {
                    if let Some(v) = self.try_eliminate_pop() {
                        return Some(v);
                    }
                    bo.backoff();
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.stack.len()
    }
}

impl EliminationStack {
    fn try_eliminate_push_or_stack(&self, val: Val, bo: &mut Backoff) -> bool {
        match self.stack.try_push_once(val) {
            Ok(()) => true,
            Err(()) => {
                if self.try_eliminate_push(val) {
                    return true;
                }
                bo.backoff();
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lifo_when_uncontended() {
        let s = EliminationStack::new();
        assert_eq!(s.pop(), None);
        s.push(1);
        s.push(2);
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert!(s.is_empty());
    }

    #[test]
    fn elimination_slot_protocol_roundtrip() {
        let s = EliminationStack::with_slots(1);
        // Stage a pusher manually: publish on the single slot.
        let slot = &s.slots[0];
        let w = slot.state.load(Ordering::Relaxed);
        slot.val.store(77, Ordering::Relaxed);
        // Two bumps: claim then waiting, as the real pusher does.
        slot.state
            .store(bump(bump(w, TAG_CLAIM), TAG_WAITING), Ordering::Release);
        // A popper must claim it.
        assert_eq!(s.try_eliminate_pop(), Some(77));
        assert_eq!(tag(slot.state.load(Ordering::Relaxed)), TAG_DONE);
    }

    #[test]
    fn conserves_elements_under_heavy_contention() {
        let s = Arc::new(EliminationStack::new());
        let mut handles = Vec::new();
        for t in 0..12u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut net = 0i64;
                let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                for _ in 0..30_000u64 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    if x % 2 == 0 {
                        s.push(x);
                        net += 1;
                    } else if s.pop().is_some() {
                        net -= 1;
                    }
                }
                net
            }));
        }
        let net: i64 =
            reclaim::offline_while(|| handles.into_iter().map(|h| h.join().unwrap()).sum());
        assert_eq!(s.len() as i64, net);
    }

    #[test]
    fn no_value_is_duplicated_or_lost() {
        let s = Arc::new(EliminationStack::new());
        const PUSHERS: u64 = 6;
        const PER: u64 = 20_000;
        let mut handles = Vec::new();
        for p in 0..PUSHERS {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER {
                    s.push(p * PER + i + 1);
                }
            }));
        }
        let popped = Arc::new(std::sync::Mutex::new(Vec::new()));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut poppers = Vec::new();
        for _ in 0..6 {
            let s = Arc::clone(&s);
            let popped = Arc::clone(&popped);
            let done = Arc::clone(&done);
            poppers.push(std::thread::spawn(move || {
                let mut local = Vec::new();
                loop {
                    match s.pop() {
                        Some(v) => local.push(v),
                        None => {
                            if done.load(Ordering::Acquire) {
                                // Re-check once after `done`: a pop may still
                                // succeed (values parked in elimination slots)
                                // and its value must not be dropped.
                                match s.pop() {
                                    Some(v) => local.push(v),
                                    None => break,
                                }
                            }
                        }
                    }
                }
                popped.lock().unwrap().extend(local);
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
            done.store(true, Ordering::Release);
            for p in poppers {
                p.join().unwrap();
            }
        });
        let mut got = popped.lock().unwrap().clone();
        got.sort_unstable();
        let expect: Vec<u64> = (1..=PUSHERS * PER).collect();
        assert_eq!(got, expect);
    }
}
