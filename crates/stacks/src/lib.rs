//! Stacks (§5.5 of the OPTIK paper — the honest negative result).
//!
//! "The most prominent example of such a case is stack data structures. We
//! redesign the classic lock-free stack by Treiber using OPTIK. The
//! original and the OPTIK-based variants behave similarly" — a single
//! point of contention (the top) offers no optimistic read-only prefix to
//! exploit, so OPTIK buys nothing. Both variants are implemented here so
//! the `stack_compare` bench can reproduce that observation.

#![warn(missing_docs)]

mod elimination;

pub use elimination::EliminationStack;

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

use optik::{OptikLock, OptikVersioned};
use reclaim::NodePool;
use synchro::{Backoff, CachePadded};

pub use optik_harness::api::Val;
// The stack interface lives in the harness (next to `ConcurrentSet` and
// `ConcurrentQueue`) so the scenario registry and the correctness tiers
// can drive stacks like every other structure; re-exported here for the
// crate's own users.
pub use optik_harness::api::ConcurrentStack;

struct Node {
    val: Val,
    next: *mut Node,
}

// SAFETY: nodes are plain data; the `next` pointer is immutable after
// publication and only dereferenced under QSBR protection. `Send` is
// needed so retired nodes can be recycled by whichever thread collects
// them; `Sync` because shared access is read-only (QSBR-protected).
unsafe impl Send for Node {}
unsafe impl Sync for Node {}

/// Treiber's lock-free stack \[48\].
///
/// Nodes come from a type-stable [`NodePool`]. No pointer survives across
/// operations, so recycled slots are plainly re-initialized after their
/// grace period (same argument as the list structures).
pub struct TreiberStack {
    top: CachePadded<AtomicPtr<Node>>,
    pool: Arc<NodePool<Node>>,
}

// SAFETY: top mutation is CAS-only; popped nodes are retired via QSBR
// (competing poppers may still dereference them).
unsafe impl Send for TreiberStack {}
unsafe impl Sync for TreiberStack {}

impl TreiberStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self {
            top: CachePadded::new(AtomicPtr::new(std::ptr::null_mut())),
            pool: NodePool::new(),
        }
    }
}

impl TreiberStack {
    /// One push attempt (single CAS); `Err(())` on contention. Used by the
    /// elimination layer to interleave stack attempts with exchanges.
    // `Err(())` = "lost the CAS race", mirroring the paper's single-
    // attempt semantics; no further failure information exists.
    #[allow(clippy::result_unit_err)]
    pub fn try_push_once(&self, val: Val) -> Result<(), ()> {
        reclaim::quiescent();
        let node = self.pool.alloc_init(|| Node {
            val,
            next: std::ptr::null_mut(),
        });
        let top = self.top.load(Ordering::Acquire);
        // SAFETY: node is ours until published.
        unsafe { (*node).next = top };
        if self
            .top
            .compare_exchange(top, node, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            Ok(())
        } else {
            // SAFETY: never published.
            unsafe { self.pool.dealloc_unpublished(node) };
            Err(())
        }
    }

    /// One pop attempt; `Ok(None)` = observed empty, `Err(())` = contention.
    // `Err(())` = "lost the CAS race", mirroring the paper's single-
    // attempt semantics; no further failure information exists.
    #[allow(clippy::result_unit_err)]
    pub fn try_pop_once(&self) -> Result<Option<Val>, ()> {
        reclaim::quiescent();
        let top = self.top.load(Ordering::Acquire);
        if top.is_null() {
            return Ok(None);
        }
        // SAFETY: grace period; next immutable after publication.
        let (val, next) = unsafe { ((*top).val, (*top).next) };
        if self
            .top
            .compare_exchange(top, next, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            // SAFETY: unlinked by the winning CAS; retired once.
            unsafe { reclaim::with_local(|h| self.pool.retire(top, h)) };
            Ok(Some(val))
        } else {
            Err(())
        }
    }
}

impl Default for TreiberStack {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentStack for TreiberStack {
    fn push(&self, val: Val) {
        reclaim::quiescent();
        let node = self.pool.alloc_init(|| Node {
            val,
            next: std::ptr::null_mut(),
        });
        let mut bo = Backoff::adaptive();
        loop {
            let top = self.top.load(Ordering::Acquire);
            // SAFETY: node is ours until published.
            unsafe { (*node).next = top };
            if self
                .top
                .compare_exchange(top, node, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
            bo.backoff();
        }
    }

    fn pop(&self) -> Option<Val> {
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        loop {
            let top = self.top.load(Ordering::Acquire);
            if top.is_null() {
                return None;
            }
            // SAFETY: grace period — `top` cannot be freed while we hold it,
            // and `next` is immutable after publication.
            let (val, next) = unsafe { ((*top).val, (*top).next) };
            if self
                .top
                .compare_exchange(top, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // SAFETY: unlinked by the winning CAS; retired once.
                unsafe { reclaim::with_local(|h| self.pool.retire(top, h)) };
                return Some(val);
            }
            bo.backoff();
        }
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        // SAFETY: grace-period traversal.
        unsafe {
            let mut n = 0;
            let mut cur = self.top.load(Ordering::Acquire);
            while !cur.is_null() {
                n += 1;
                cur = (*cur).next;
            }
            n
        }
    }
}

/// The OPTIK-based stack: top pointer guarded by one OPTIK lock.
///
/// Push and pop read the top optimistically, then lock-and-validate. As
/// the paper observes, this behaves like the Treiber stack — there is no
/// read-only prefix worth anything, so OPTIK's advantage disappears.
pub struct OptikStack {
    lock: CachePadded<OptikVersioned>,
    top: CachePadded<AtomicPtr<Node>>,
    pool: Arc<NodePool<Node>>,
}

// SAFETY: top mutation is lock-protected; reads are optimistic + QSBR.
unsafe impl Send for OptikStack {}
unsafe impl Sync for OptikStack {}

impl OptikStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self {
            lock: CachePadded::new(OptikVersioned::new()),
            top: CachePadded::new(AtomicPtr::new(std::ptr::null_mut())),
            pool: NodePool::new(),
        }
    }
}

impl Default for OptikStack {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentStack for OptikStack {
    fn push(&self, val: Val) {
        reclaim::quiescent();
        let node = self.pool.alloc_init(|| Node {
            val,
            next: std::ptr::null_mut(),
        });
        let mut bo = Backoff::adaptive();
        loop {
            let v = self.lock.get_version();
            if OptikVersioned::is_locked_version(v) {
                synchro::relax();
                continue;
            }
            let top = self.top.load(Ordering::Acquire);
            // SAFETY: ours until published.
            unsafe { (*node).next = top };
            if self.lock.try_lock_version(v) {
                self.top.store(node, Ordering::Release);
                self.lock.unlock();
                return;
            }
            bo.backoff();
        }
    }

    fn pop(&self) -> Option<Val> {
        reclaim::quiescent();
        let mut bo = Backoff::adaptive();
        loop {
            let v = self.lock.get_version();
            if OptikVersioned::is_locked_version(v) {
                synchro::relax();
                continue;
            }
            let top = self.top.load(Ordering::Acquire);
            if top.is_null() {
                // Empty observed under a free version: no synchronization.
                return None;
            }
            // SAFETY: grace period.
            let (val, next) = unsafe { ((*top).val, (*top).next) };
            if self.lock.try_lock_version(v) {
                self.top.store(next, Ordering::Release);
                self.lock.unlock();
                // SAFETY: unlinked under the lock; retired once.
                unsafe { reclaim::with_local(|h| self.pool.retire(top, h)) };
                return Some(val);
            }
            bo.backoff();
        }
    }

    fn len(&self) -> usize {
        reclaim::quiescent();
        // SAFETY: grace-period traversal.
        unsafe {
            let mut n = 0;
            let mut cur = self.top.load(Ordering::Acquire);
            while !cur.is_null() {
                n += 1;
                cur = (*cur).next;
            }
            n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn implementations() -> Vec<(&'static str, Arc<dyn ConcurrentStack>)> {
        vec![
            ("treiber", Arc::new(TreiberStack::new())),
            ("optik", Arc::new(OptikStack::new())),
        ]
    }

    #[test]
    fn raw_try_api_roundtrips_uncontended() {
        let s = TreiberStack::new();
        assert_eq!(s.try_pop_once(), Ok(None), "empty pop observes empty");
        assert_eq!(s.try_push_once(9), Ok(()));
        assert_eq!(s.try_push_once(8), Ok(()));
        assert_eq!(s.try_pop_once(), Ok(Some(8)));
        assert_eq!(s.try_pop_once(), Ok(Some(9)));
        assert_eq!(s.try_pop_once(), Ok(None));
    }

    #[test]
    fn pop_burst_on_empty_stack_is_safe() {
        let iters = optik_harness::stress::ops(50_000);
        for (name, s) in implementations() {
            let mut handles = Vec::new();
            for _ in 0..8 {
                let s = Arc::clone(&s);
                handles.push(std::thread::spawn(move || {
                    for _ in 0..iters {
                        assert_eq!(s.pop(), None);
                    }
                }));
            }
            reclaim::offline_while(|| {
                for h in handles {
                    h.join().unwrap();
                }
            });
            assert!(s.is_empty(), "{name}");
        }
    }

    #[test]
    fn single_thread_matches_vec_model_all_impls() {
        let impls: Vec<(&str, Arc<dyn ConcurrentStack>)> = vec![
            ("treiber", Arc::new(TreiberStack::new())),
            ("optik", Arc::new(OptikStack::new())),
            ("elimination", Arc::new(crate::EliminationStack::new())),
        ];
        for (name, s) in impls {
            let mut model = Vec::new();
            let mut x = 0x2545F4914F6CDD1Du64;
            for _ in 0..10_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x % 3 != 0 {
                    s.push(x);
                    model.push(x);
                } else {
                    assert_eq!(s.pop(), model.pop(), "{name}");
                }
            }
            assert_eq!(s.len(), model.len(), "{name}");
        }
    }

    #[test]
    fn lifo_semantics() {
        for (name, s) in implementations() {
            assert_eq!(s.pop(), None, "{name}");
            s.push(1);
            s.push(2);
            s.push(3);
            assert_eq!(s.len(), 3, "{name}");
            assert_eq!(s.pop(), Some(3), "{name}");
            assert_eq!(s.pop(), Some(2), "{name}");
            s.push(4);
            assert_eq!(s.pop(), Some(4), "{name}");
            assert_eq!(s.pop(), Some(1), "{name}");
            assert!(s.is_empty(), "{name}");
        }
    }

    #[test]
    fn concurrent_push_pop_conserves_elements() {
        let iters = optik_harness::stress::ops(20_000);
        for (name, s) in implementations() {
            let mut handles = Vec::new();
            for t in 0..8u64 {
                let s = Arc::clone(&s);
                handles.push(std::thread::spawn(move || {
                    let mut net = 0i64;
                    let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                    for _ in 0..iters {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        if x % 2 == 0 {
                            s.push(x);
                            net += 1;
                        } else if s.pop().is_some() {
                            net -= 1;
                        }
                    }
                    net
                }));
            }
            let net: i64 =
                reclaim::offline_while(|| handles.into_iter().map(|h| h.join().unwrap()).sum());
            assert_eq!(s.len() as i64, net, "{name}");
        }
    }

    #[test]
    fn popped_values_are_never_duplicated() {
        let count = optik_harness::stress::ops(50_000);
        for (name, s) in implementations() {
            for i in 1..=count {
                s.push(i);
            }
            let seen = Arc::new(std::sync::Mutex::new(std::collections::HashSet::new()));
            let mut handles = Vec::new();
            for _ in 0..8 {
                let s = Arc::clone(&s);
                let seen = Arc::clone(&seen);
                handles.push(std::thread::spawn(move || {
                    let mut local = Vec::new();
                    while let Some(v) = s.pop() {
                        local.push(v);
                    }
                    let mut seen = seen.lock().unwrap();
                    for v in local {
                        assert!(seen.insert(v), "{v} popped twice");
                    }
                }));
            }
            reclaim::offline_while(|| {
                for h in handles {
                    h.join().unwrap();
                }
            });
            assert_eq!(seen.lock().unwrap().len(), count as usize, "{name}");
        }
    }
}
