//! Per-thread span timelines dumped as Chrome trace-event JSON.
//!
//! Spans ([`SpanKind`]) mark the coarse maintenance operations whose timing
//! shapes tail latency — shard migrations, TTL sweeps, QSBR grace periods —
//! and land in a bounded per-thread ring (oldest overwritten first, so a
//! long run keeps its most recent `RING_CAPACITY` (4096) spans per thread).
//! [`drain_json`] converts everything recorded so far into the Chrome
//! trace-event format (`{"traceEvents": [...]}` with `ph: "X"` complete
//! events), loadable in Perfetto or `about:tracing`.
//!
//! Timestamps are the probe's cycle counter; the dump calibrates
//! cycles-per-microsecond against a wall-clock anchor captured at the first
//! recorded span, so the timeline's µs axis is approximately real time.

/// The coarse maintenance operations worth a timeline entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One rebalance migration batch (copy + boundary flip).
    Migration,
    /// One TTL sweep pass over a shard window.
    TtlSweep,
    /// One QSBR grace period (limbo batch seal to free).
    Grace,
    /// One full rebalancer decision round.
    RebalanceRound,
}

impl SpanKind {
    /// Trace-event `name`.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Migration => "migration",
            SpanKind::TtlSweep => "ttl_sweep",
            SpanKind::Grace => "grace",
            SpanKind::RebalanceRound => "rebalance_round",
        }
    }

    /// Trace-event `cat` (Perfetto groups by category).
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Migration | SpanKind::RebalanceRound => "rebalance",
            SpanKind::TtlSweep => "ttl",
            SpanKind::Grace => "reclaim",
        }
    }
}

#[cfg(feature = "probe")]
mod active {
    use super::SpanKind;
    use crate::MAX_THREADS;
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    /// Per-thread ring capacity; at 24 bytes per span this bounds trace
    /// memory to ~100 KiB per recording thread.
    pub(super) const RING_CAPACITY: usize = 4096;

    #[derive(Clone, Copy)]
    pub(super) struct Span {
        pub(super) kind: SpanKind,
        pub(super) start: u64,
        pub(super) end: u64,
    }

    /// `(spans, overwrite cursor)`; the cursor is live once len hits
    /// capacity. One extra shared slot for teardown-phase spans.
    pub(super) static RINGS: [Mutex<(Vec<Span>, usize)>; MAX_THREADS + 1] = {
        #[allow(clippy::declare_interior_mutable_const)]
        const RING: Mutex<(Vec<Span>, usize)> = Mutex::new((Vec::new(), 0));
        [RING; MAX_THREADS + 1]
    };

    /// Wall-clock anchor for cycle→µs calibration, captured at first use.
    static ANCHOR: OnceLock<(Instant, u64)> = OnceLock::new();

    pub(super) fn anchor() -> (Instant, u64) {
        *ANCHOR.get_or_init(|| (Instant::now(), raw_now()))
    }

    /// Probe timestamp: TSC on x86_64, monotonic nanoseconds elsewhere —
    /// the same counter `synchro::cycles::now` reads, so values from either
    /// are comparable.
    #[inline]
    pub(crate) fn raw_now() -> u64 {
        #[cfg(target_arch = "x86_64")]
        {
            // SAFETY: rdtsc has no preconditions on x86_64.
            unsafe { core::arch::x86_64::_rdtsc() }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            static EPOCH: OnceLock<Instant> = OnceLock::new();
            EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
        }
    }

    pub(super) fn record_span(kind: SpanKind, start: u64, end: u64) {
        anchor(); // ensure calibration starts no later than the first span
        let idx = crate::thread_index().unwrap_or(MAX_THREADS);
        let mut ring = RINGS[idx].lock().unwrap_or_else(|e| e.into_inner());
        let (spans, cursor) = &mut *ring;
        let span = Span { kind, start, end };
        if spans.len() < RING_CAPACITY {
            spans.push(span);
        } else {
            spans[*cursor] = span;
            *cursor = (*cursor + 1) % RING_CAPACITY;
        }
    }

    /// Cycles per microsecond, measured between the anchor and now.
    /// Falls back to 1000 (a 1 GHz counter) for degenerate elapsed times.
    pub(super) fn cycles_per_us() -> f64 {
        let (wall, cyc) = anchor();
        let elapsed_us = wall.elapsed().as_secs_f64() * 1e6;
        let elapsed_cyc = raw_now().saturating_sub(cyc) as f64;
        if elapsed_us > 1.0 && elapsed_cyc > 0.0 {
            elapsed_cyc / elapsed_us
        } else {
            1000.0
        }
    }
}

#[cfg(feature = "probe")]
pub(crate) use active::raw_now;

/// RAII span recorder returned by [`span`]: drop ends the span and files
/// it in the calling thread's ring. A ZST no-op when the feature is off.
pub struct SpanGuard {
    #[cfg(feature = "probe")]
    kind: SpanKind,
    #[cfg(feature = "probe")]
    start: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        #[cfg(feature = "probe")]
        active::record_span(self.kind, self.start, raw_now());
    }
}

/// Opens a span of `kind` covering the guard's lifetime.
#[inline]
pub fn span(kind: SpanKind) -> SpanGuard {
    #[cfg(not(feature = "probe"))]
    let _ = kind;
    SpanGuard {
        #[cfg(feature = "probe")]
        kind,
        #[cfg(feature = "probe")]
        start: raw_now(),
    }
}

/// Records an already-timed span (for call sites that cannot hold a guard
/// across the region, e.g. when the endpoints live in different frames).
#[inline]
pub fn record_span(kind: SpanKind, start: u64, end: u64) {
    #[cfg(feature = "probe")]
    active::record_span(kind, start, end);
    #[cfg(not(feature = "probe"))]
    {
        let _ = (kind, start, end);
    }
}

/// Drains every thread's span ring into one Chrome trace-event JSON
/// document. Returns `None` when no spans were recorded (or the feature is
/// off), so callers skip writing empty trace files.
pub fn drain_json() -> Option<String> {
    #[cfg(feature = "probe")]
    {
        let scale = active::cycles_per_us();
        let (_, anchor_cycles) = {
            // Reuse the calibration anchor as t=0 of the timeline.
            active::anchor()
        };
        let mut events = Vec::new();
        for (tid, ring) in active::RINGS.iter().enumerate() {
            let mut ring = ring.lock().unwrap_or_else(|e| e.into_inner());
            let (spans, cursor) = &mut *ring;
            // Emit in recorded order: the ring is oldest-first from `cursor`.
            let n = spans.len();
            for i in 0..n {
                let s = spans[(*cursor + i) % n];
                let ts = s.start.saturating_sub(anchor_cycles) as f64 / scale;
                let dur = s.end.saturating_sub(s.start) as f64 / scale;
                events.push(format!(
                    concat!(
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",",
                        "\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}}}"
                    ),
                    s.kind.name(),
                    s.kind.category(),
                    ts,
                    dur,
                    tid
                ));
            }
            spans.clear();
            *cursor = 0;
        }
        if events.is_empty() {
            return None;
        }
        Some(format!("{{\"traceEvents\":[{}]}}", events.join(",")))
    }
    #[cfg(not(feature = "probe"))]
    {
        None
    }
}

#[cfg(all(test, feature = "probe"))]
mod tests {
    use super::*;

    #[test]
    fn spans_drain_as_trace_event_json() {
        {
            let _g = span(SpanKind::Migration);
            std::hint::black_box(0);
        }
        record_span(SpanKind::TtlSweep, raw_now(), raw_now() + 1000);
        let json = drain_json().expect("two spans were recorded");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"migration\""));
        assert!(json.contains("\"name\":\"ttl_sweep\""));
        assert!(json.contains("\"ph\":\"X\""));
        // Drained rings start over.
        assert!(drain_json().is_none());
    }

    #[test]
    fn ring_is_bounded() {
        let t = raw_now();
        for _ in 0..(super::active::RING_CAPACITY + 100) {
            record_span(SpanKind::Grace, t, t + 1);
        }
        let json = drain_json().expect("spans recorded");
        let n = json.matches("\"name\":\"grace\"").count();
        assert!(n <= super::active::RING_CAPACITY);
    }
}
