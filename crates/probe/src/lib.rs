//! Zero-cost-when-disabled instrumentation for the OPTIK workspace.
//!
//! The paper's whole argument (Guerraoui & Trigonakis, PPoPP '16) is that
//! validate-and-retry beats pessimistic locking *because* validation
//! failures are rare — a claim that is only honest when the failure rates
//! are measurable. This crate is the measuring instrument:
//!
//! - **Per-thread event counters** ([`Event`], [`count`]) keyed by the
//!   process-wide [`thread_index`] registry (shared with `reclaim`'s node
//!   pools): validation failures, lock acquisitions, backoff waits,
//!   QSBR epoch advances, magazine hits, TTL sweeps, migration batches.
//!   Counters are owner-written (plain load+store, no `lock`-prefixed RMW)
//!   exactly like the pool's magazine counters, so the enabled hooks add no
//!   coherence traffic to the loops they observe.
//! - **Log-bucketed cycle histograms** ([`HistKind`], [`record`]):
//!   power-of-two buckets, HDR-style, for retry-loop duration, lock hold
//!   time, per-range validation windows, and QSBR grace latency.
//! - **Trace-event timelines** ([`trace`]): a bounded per-thread span ring
//!   dumped as Chrome trace-event JSON (loadable in Perfetto / `about:tracing`).
//!
//! Everything above is compiled in only under the `probe` cargo feature.
//! Without it every hook body is empty and [`Snapshot::take`] returns all
//! zeros — the same gating pattern as `synchro::shim`, but driven by a
//! feature instead of `--cfg optik_explore`. The one unconditionally
//! compiled piece is the thread-index registry, which `reclaim` uses to key
//! its per-thread magazines.
//!
//! Aggregation mirrors `reclaim::PoolStats`: [`Snapshot::take`] sums the
//! per-thread slabs, [`Snapshot::delta_since`] isolates one measurement
//! window, [`Snapshot::conservation`] exposes the ledger equalities that
//! must hold at rest, and [`Snapshot::metrics`] derives the per-operation
//! rates the harness reports as a scenario's `internals`.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};

pub mod trace;

// ---------------------------------------------------------------------------
// Process-wide thread index registry (moved here from `reclaim::pool` so the
// probe's per-thread slabs and the pool's magazines share one keying).
// ---------------------------------------------------------------------------

/// Maximum number of concurrently live threads the registry (and everything
/// keyed by it: probe slabs, `reclaim` magazines and QSBR slots) supports.
pub const MAX_THREADS: usize = 256;

/// One claimable index per live OS thread. Indices are exclusive while
/// claimed and recycled on thread exit, so consumers can key per-thread
/// state by index with no per-structure registration.
static CLAIMED: [AtomicBool; MAX_THREADS] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const FREE: AtomicBool = AtomicBool::new(false);
    [FREE; MAX_THREADS]
};

struct ThreadIndexGuard(u32);

impl Drop for ThreadIndexGuard {
    fn drop(&mut self) {
        // Release pairs with the Acquire CAS of the next claimant, so
        // per-thread state written by this thread is visible to it.
        CLAIMED[self.0 as usize].store(false, Ordering::Release);
    }
}

fn claim_thread_index() -> ThreadIndexGuard {
    for (i, slot) in CLAIMED.iter().enumerate() {
        if !slot.load(Ordering::Relaxed)
            && slot
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            return ThreadIndexGuard(i as u32);
        }
    }
    panic!("thread registry exhausted: more than {MAX_THREADS} live threads");
}

std::thread_local! {
    static THREAD_INDEX: ThreadIndexGuard = claim_thread_index();
}

/// This thread's registry index (claimed on first use, released at thread
/// exit). Exclusive among live threads; exited threads' indices — and any
/// per-thread state filed under them — are inherited by later threads.
///
/// `None` during thread teardown: TLS destructors may run after this TLS is
/// already gone (destruction order is unspecified). Callers fall back to a
/// shared slow path.
#[inline]
pub fn thread_index() -> Option<usize> {
    THREAD_INDEX.try_with(|g| g.0 as usize).ok()
}

/// Whether the `probe` feature was compiled in (hooks are live).
#[inline(always)]
pub const fn enabled() -> bool {
    cfg!(feature = "probe")
}

// ---------------------------------------------------------------------------
// Events and histogram kinds (present in both builds — they are just names).
// ---------------------------------------------------------------------------

/// Counted events, one counter per kind per thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Event {
    /// OPTIK validation failure: `try_lock_version*` pre-check or CAS
    /// failure, or a `lock_version` that acquired a different version.
    ValidationFail = 0,
    /// Versioned-lock acquisition (successful CAS).
    LockAcquire = 1,
    /// Optimistic read round that failed revalidation and retried
    /// (kv `multi_get`/`get`/snapshot/range loops).
    ReadRetry = 2,
    /// `Backoff::backoff` invocation.
    BackoffWait = 3,
    /// Adaptive backoff soft-ceiling escalation.
    BackoffEscalate = 4,
    /// Classic spinlock (tas/ttas/ticket/mcs/clh) acquisition.
    SpinAcquire = 5,
    /// QSBR quiescent-point announcement.
    EpochAdvance = 6,
    /// QSBR limbo batch freed after its grace period.
    GraceBatchFree = 7,
    /// Node-pool allocation served from the per-thread magazine.
    MagazineHit = 8,
    /// Node-pool allocation that took the pool lock (depot/bump/direct).
    MagazineMiss = 9,
    /// TTL sweep invocation (`sweep_expired`).
    TtlSweep = 10,
    /// Entry physically dropped by a TTL sweep.
    TtlExpired = 11,
    /// Rebalance migration batch copied and flipped.
    MigrationBatch = 12,
    /// Key moved by a rebalance migration.
    MigrationMoved = 13,
    /// Write published into a flat-combining slot (contended writer
    /// handing its op to whichever thread wins the shard lock).
    CombinePublished = 14,
    /// Combiner drain that applied at least one published op.
    CombineBatch = 15,
    /// Published op applied by a combiner on behalf of *another* thread.
    CombineApplied = 16,
    /// Published op applied by its own publisher (the waiter won the
    /// shard lock itself and drained the list, its own slot included).
    CombineSelfServe = 17,
    /// Arena-backed pool mapped a fresh aligned slab.
    ArenaSlabAlloc = 18,
    /// Magazine refilled from the arena depot's address-ordered free
    /// store (as opposed to a bump-fresh or loose-magazine refill).
    ArenaRunRefill = 19,
    /// Software prefetch issued one hop ahead of a traversal.
    PrefetchIssued = 20,
}

/// Number of [`Event`] kinds.
pub const EVENT_COUNT: usize = 21;

impl Event {
    /// All events, in counter order.
    pub const ALL: [Event; EVENT_COUNT] = [
        Event::ValidationFail,
        Event::LockAcquire,
        Event::ReadRetry,
        Event::BackoffWait,
        Event::BackoffEscalate,
        Event::SpinAcquire,
        Event::EpochAdvance,
        Event::GraceBatchFree,
        Event::MagazineHit,
        Event::MagazineMiss,
        Event::TtlSweep,
        Event::TtlExpired,
        Event::MigrationBatch,
        Event::MigrationMoved,
        Event::CombinePublished,
        Event::CombineBatch,
        Event::CombineApplied,
        Event::CombineSelfServe,
        Event::ArenaSlabAlloc,
        Event::ArenaRunRefill,
        Event::PrefetchIssued,
    ];

    /// Stable snake_case key (report/JSON field name).
    pub fn key(self) -> &'static str {
        match self {
            Event::ValidationFail => "validation_fail",
            Event::LockAcquire => "lock_acquire",
            Event::ReadRetry => "read_retry",
            Event::BackoffWait => "backoff_wait",
            Event::BackoffEscalate => "backoff_escalate",
            Event::SpinAcquire => "spin_acquire",
            Event::EpochAdvance => "epoch_advance",
            Event::GraceBatchFree => "grace_batch_free",
            Event::MagazineHit => "magazine_hit",
            Event::MagazineMiss => "magazine_miss",
            Event::TtlSweep => "ttl_sweep",
            Event::TtlExpired => "ttl_expired",
            Event::MigrationBatch => "migration_batch",
            Event::MigrationMoved => "migration_moved",
            Event::CombinePublished => "combine_published",
            Event::CombineBatch => "combine_batches",
            Event::CombineApplied => "combine_ops_applied",
            Event::CombineSelfServe => "combine_self_served",
            Event::ArenaSlabAlloc => "arena_slab_allocs",
            Event::ArenaRunRefill => "arena_run_refills",
            Event::PrefetchIssued => "prefetch_issued",
        }
    }
}

/// Log-bucketed cycle histograms, one per kind per thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistKind {
    /// Duration of a retry-laden optimistic read loop (first attempt to
    /// final validation; recorded only when at least one round retried).
    RetryLoop = 0,
    /// Versioned-lock hold time (acquisition to unlock/revert).
    LockHold = 1,
    /// Duration of one successful per-shard `range` validation window.
    ValidationWindow = 2,
    /// QSBR grace latency: limbo batch seal to batch free.
    GraceLatency = 3,
    /// Published ops applied per combiner drain (a *size*, not cycles —
    /// the log-2 buckets read as batch-size classes 1, 2–3, 4–7, …).
    CombineBatch = 4,
    /// Length of each maximal address-contiguous run inside an arena
    /// magazine refill (a *size* in nodes, not cycles: buckets read as
    /// run-length classes 1, 2–3, 4–7, …). Longer runs mean recycled
    /// nodes handed out physically adjacent.
    ArenaRun = 5,
}

/// Number of [`HistKind`]s.
pub const HIST_COUNT: usize = 6;

/// Buckets per histogram: bucket `b` counts values in `[2^b, 2^(b+1))`
/// (bucket 0 additionally holds zero).
pub const HIST_BUCKETS: usize = 64;

impl HistKind {
    /// All kinds, in storage order.
    pub const ALL: [HistKind; HIST_COUNT] = [
        HistKind::RetryLoop,
        HistKind::LockHold,
        HistKind::ValidationWindow,
        HistKind::GraceLatency,
        HistKind::CombineBatch,
        HistKind::ArenaRun,
    ];

    /// Stable snake_case key.
    pub fn key(self) -> &'static str {
        match self {
            HistKind::RetryLoop => "retry",
            HistKind::LockHold => "hold",
            HistKind::ValidationWindow => "range_window",
            HistKind::GraceLatency => "grace",
            HistKind::CombineBatch => "combine_batch",
            HistKind::ArenaRun => "arena_run",
        }
    }
}

/// The log-2 bucket a value falls into.
#[cfg_attr(not(feature = "probe"), allow(dead_code))]
#[inline]
fn bucket_of(v: u64) -> usize {
    63 - (v | 1).leading_zeros() as usize
}

// ---------------------------------------------------------------------------
// Enabled storage and hooks.
// ---------------------------------------------------------------------------

#[cfg(feature = "probe")]
mod active {
    use super::{bucket_of, Event, HistKind, EVENT_COUNT, HIST_BUCKETS, HIST_COUNT, MAX_THREADS};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Slab slots: one per registry index plus one shared overflow slot for
    /// threads counting during TLS teardown (index [`MAX_THREADS`]).
    pub(super) const SLOTS: usize = MAX_THREADS + 1;

    pub(super) struct ThreadSlab {
        pub(super) counts: [AtomicU64; EVENT_COUNT],
        pub(super) sums: [AtomicU64; HIST_COUNT],
        pub(super) buckets: [[AtomicU64; HIST_BUCKETS]; HIST_COUNT],
    }

    /// Padded so one thread's hot counters never share a cache line with
    /// another's (the whole point of per-thread slabs).
    #[repr(align(128))]
    pub(super) struct Aligned(pub(super) ThreadSlab);

    pub(super) static SLABS: [Aligned; SLOTS] = {
        #[allow(clippy::declare_interior_mutable_const)]
        const Z: AtomicU64 = AtomicU64::new(0);
        #[allow(clippy::declare_interior_mutable_const)]
        const ROW: [AtomicU64; HIST_BUCKETS] = [Z; HIST_BUCKETS];
        #[allow(clippy::declare_interior_mutable_const)]
        const SLAB: Aligned = Aligned(ThreadSlab {
            counts: [Z; EVENT_COUNT],
            sums: [Z; HIST_COUNT],
            buckets: [ROW; HIST_COUNT],
        });
        [SLAB; SLOTS]
    };

    /// The calling thread's slab index; teardown falls back to the shared
    /// overflow slot so late events still land in the ledger.
    #[inline]
    pub(super) fn slot_index() -> usize {
        super::thread_index().unwrap_or(MAX_THREADS)
    }

    /// Owner-exclusive bump (plain load+store) for registry-owned slots;
    /// the shared overflow slot needs the real RMW.
    #[inline]
    pub(super) fn bump(idx: usize, counter: &AtomicU64, delta: u64) {
        if idx == MAX_THREADS {
            counter.fetch_add(delta, Ordering::Relaxed);
        } else {
            counter.store(
                counter.load(Ordering::Relaxed).wrapping_add(delta),
                Ordering::Relaxed,
            );
        }
    }

    #[inline]
    pub(super) fn count_n(e: Event, n: u64) {
        let idx = slot_index();
        bump(idx, &SLABS[idx].0.counts[e as usize], n);
    }

    #[inline]
    pub(super) fn record(kind: HistKind, value: u64) {
        let idx = slot_index();
        let slab = &SLABS[idx].0;
        bump(idx, &slab.buckets[kind as usize][bucket_of(value)], 1);
        bump(idx, &slab.sums[kind as usize], value);
    }

    std::thread_local! {
        /// Acquisition timestamps of versioned locks this thread currently
        /// holds. LIFO: the workspace's release order is reverse-acquisition
        /// (batch paths release in reverse), so pops pair with their pushes;
        /// a mismatch only swaps hold attributions, totals stay conserved.
        pub(super) static HOLDS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    }
}

/// Reads the probe timestamp: cycles on x86_64 (`rdtsc`), monotonic
/// nanoseconds elsewhere — the same counter as `synchro::cycles::now`, so
/// values are interchangeable. Compiles to a constant `0` when disabled.
#[inline]
pub fn now() -> u64 {
    #[cfg(feature = "probe")]
    {
        trace::raw_now()
    }
    #[cfg(not(feature = "probe"))]
    {
        0
    }
}

/// Elapsed ticks between two [`now`] readings (zero-saturating).
#[inline]
pub fn elapsed(start: u64, end: u64) -> u64 {
    end.saturating_sub(start)
}

/// Counts one occurrence of `e` against the calling thread.
#[inline]
pub fn count(e: Event) {
    count_n(e, 1);
}

/// Counts `n` occurrences of `e` against the calling thread.
#[inline]
pub fn count_n(e: Event, n: u64) {
    #[cfg(feature = "probe")]
    active::count_n(e, n);
    #[cfg(not(feature = "probe"))]
    {
        let _ = (e, n);
    }
}

/// Records `value` (cycles) into the calling thread's `kind` histogram.
#[inline]
pub fn record(kind: HistKind, value: u64) {
    #[cfg(feature = "probe")]
    active::record(kind, value);
    #[cfg(not(feature = "probe"))]
    {
        let _ = (kind, value);
    }
}

/// Hook for a successful versioned-lock acquisition: counts
/// [`Event::LockAcquire`] and pushes an acquisition timestamp so the
/// matching [`lock_released`] can record the hold time.
#[inline]
pub fn lock_acquired() {
    #[cfg(feature = "probe")]
    {
        active::count_n(Event::LockAcquire, 1);
        let t = now();
        let _ = active::HOLDS.try_with(|h| h.borrow_mut().push(t));
    }
}

/// Hook for a versioned-lock release (`unlock` or `revert`): records the
/// hold duration into [`HistKind::LockHold`].
#[inline]
pub fn lock_released() {
    #[cfg(feature = "probe")]
    {
        let start = active::HOLDS
            .try_with(|h| h.borrow_mut().pop())
            .ok()
            .flatten();
        if let Some(start) = start {
            active::record(HistKind::LockHold, elapsed(start, now()));
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshots.
// ---------------------------------------------------------------------------

/// A point-in-time summary of one histogram (log-2 buckets + value sum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Count per log-2 bucket (see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Sum of recorded values (for means).
    pub sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            sum: 0,
        }
    }
}

impl HistSnapshot {
    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Approximate `p`-quantile (`0.0..=1.0`): the upper bound of the
    /// bucket containing the target rank. `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let target = ((n as f64 * p.clamp(0.0, 1.0)).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if b >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (b + 1)) - 1
                });
            }
        }
        None
    }

    fn delta_since(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let mut out = *self;
        for (o, e) in out.buckets.iter_mut().zip(&earlier.buckets) {
            *o = o.wrapping_sub(*e);
        }
        out.sum = out.sum.wrapping_sub(earlier.sum);
        out
    }
}

/// A point-in-time aggregate of every thread's probe counters and
/// histograms (the probe-layer analogue of `reclaim::PoolStats`). Exact
/// whenever every instrumented thread is at rest; counter fields are
/// monotonic, so deltas between snapshots isolate one measurement window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// One total per [`Event`], indexed by discriminant.
    pub counts: [u64; EVENT_COUNT],
    /// One histogram per [`HistKind`], indexed by discriminant.
    pub hists: [HistSnapshot; HIST_COUNT],
}

impl Default for Snapshot {
    fn default() -> Self {
        Self {
            counts: [0; EVENT_COUNT],
            hists: [HistSnapshot::default(); HIST_COUNT],
        }
    }
}

impl Snapshot {
    /// Sums every thread slab. All zeros when the feature is disabled.
    pub fn take() -> Self {
        #[cfg(feature = "probe")]
        {
            use std::sync::atomic::Ordering;
            let mut snap = Self::default();
            for slab in active::SLABS.iter() {
                for (i, c) in slab.0.counts.iter().enumerate() {
                    snap.counts[i] = snap.counts[i].wrapping_add(c.load(Ordering::Relaxed));
                }
                for (k, s) in slab.0.sums.iter().enumerate() {
                    snap.hists[k].sum = snap.hists[k].sum.wrapping_add(s.load(Ordering::Relaxed));
                }
                for (k, row) in slab.0.buckets.iter().enumerate() {
                    for (b, c) in row.iter().enumerate() {
                        snap.hists[k].buckets[b] =
                            snap.hists[k].buckets[b].wrapping_add(c.load(Ordering::Relaxed));
                    }
                }
            }
            snap
        }
        #[cfg(not(feature = "probe"))]
        {
            Self::default()
        }
    }

    /// The counters/histograms accumulated since `earlier` (wrapping
    /// subtraction — counters are monotonic).
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = *self;
        for (o, e) in out.counts.iter_mut().zip(&earlier.counts) {
            *o = o.wrapping_sub(*e);
        }
        for (k, h) in out.hists.iter_mut().enumerate() {
            *h = h.delta_since(&earlier.hists[k]);
        }
        out
    }

    /// Count for one event.
    #[inline]
    pub fn get(&self, e: Event) -> u64 {
        self.counts[e as usize]
    }

    /// Histogram for one kind.
    #[inline]
    pub fn hist(&self, k: HistKind) -> &HistSnapshot {
        &self.hists[k as usize]
    }

    /// Whether nothing was recorded (always true with the feature off).
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0) && self.hists.iter().all(|h| h.count() == 0)
    }

    /// Fraction of pool allocations served without the pool lock
    /// (1.0 when no allocations were observed).
    pub fn magazine_hit_rate(&self) -> f64 {
        let hit = self.get(Event::MagazineHit);
        let total = hit + self.get(Event::MagazineMiss);
        if total == 0 {
            1.0
        } else {
            hit as f64 / total as f64
        }
    }

    /// The ledger equalities that must hold whenever every instrumented
    /// thread is at rest (all critical sections exited, all grace periods
    /// drained), as `(description, lhs, rhs)` — the probe analogue of the
    /// `PoolStats` capacity conservation check.
    pub fn conservation(&self) -> Vec<(&'static str, u64, u64)> {
        vec![
            (
                "every lock acquisition (versioned or spin) recorded a hold",
                self.get(Event::LockAcquire) + self.get(Event::SpinAcquire),
                self.hist(HistKind::LockHold).count(),
            ),
            (
                "every freed grace batch recorded a grace latency",
                self.get(Event::GraceBatchFree),
                self.hist(HistKind::GraceLatency).count(),
            ),
            (
                "every published combine op was applied or self-served",
                self.get(Event::CombinePublished),
                self.get(Event::CombineApplied) + self.get(Event::CombineSelfServe),
            ),
            (
                "combine batches drained exactly the published ops",
                self.hist(HistKind::CombineBatch).sum,
                self.get(Event::CombineApplied) + self.get(Event::CombineSelfServe),
            ),
        ]
    }

    /// Derives the `internals` metrics the harness attaches to a scenario
    /// point: per-op rates against `ops`, histogram percentiles, and the
    /// magazine hit rate. Empty when nothing was recorded (feature off or
    /// an uninstrumented workload), so reports stay clean.
    pub fn metrics(&self, ops: u64) -> Vec<(String, f64)> {
        if self.is_empty() {
            return Vec::new();
        }
        let per_op = |n: u64| {
            if ops == 0 {
                n as f64
            } else {
                n as f64 / ops as f64
            }
        };
        let mut out: Vec<(String, f64)> = vec![
            (
                "validation_fail_per_op".into(),
                per_op(self.get(Event::ValidationFail)),
            ),
            (
                "lock_acquires_per_op".into(),
                per_op(self.get(Event::LockAcquire)),
            ),
            (
                "read_retry_per_op".into(),
                per_op(self.get(Event::ReadRetry)),
            ),
            (
                "backoff_waits_per_op".into(),
                per_op(self.get(Event::BackoffWait)),
            ),
            (
                "epoch_advances_per_op".into(),
                per_op(self.get(Event::EpochAdvance)),
            ),
        ];
        let hit = self.get(Event::MagazineHit);
        if hit + self.get(Event::MagazineMiss) > 0 {
            out.push(("magazine_hit_rate".into(), self.magazine_hit_rate()));
        }
        for (kind, p, label) in [
            (HistKind::RetryLoop, 0.50, "retry_p50_cycles"),
            (HistKind::RetryLoop, 0.99, "retry_p99_cycles"),
            (HistKind::LockHold, 0.50, "hold_p50_cycles"),
            (HistKind::LockHold, 0.99, "hold_p99_cycles"),
            (HistKind::ValidationWindow, 0.99, "range_window_p99_cycles"),
            (HistKind::GraceLatency, 0.99, "grace_p99_cycles"),
        ] {
            if let Some(v) = self.hist(kind).percentile(p) {
                out.push((label.into(), v as f64));
            }
        }
        if self.hist(HistKind::CombineBatch).count() > 0 {
            out.push((
                "combine_batch_mean_ops".into(),
                self.hist(HistKind::CombineBatch).mean(),
            ));
        }
        if self.hist(HistKind::ArenaRun).count() > 0 {
            out.push((
                "arena_run_mean_len".into(),
                self.hist(HistKind::ArenaRun).mean(),
            ));
        }
        for (e, label) in [
            (Event::BackoffEscalate, "backoff_escalations"),
            (Event::SpinAcquire, "spin_acquires"),
            (Event::TtlSweep, "ttl_sweeps"),
            (Event::TtlExpired, "ttl_expired"),
            (Event::MigrationBatch, "migration_batches"),
            (Event::MigrationMoved, "migration_moved"),
            (Event::GraceBatchFree, "grace_batches"),
            (Event::CombinePublished, "combine_published"),
            (Event::CombineBatch, "combine_batches"),
            (Event::CombineApplied, "combine_ops_applied"),
            (Event::CombineSelfServe, "combine_self_served"),
            (Event::ArenaSlabAlloc, "arena_slab_allocs"),
            (Event::ArenaRunRefill, "arena_run_refills"),
            (Event::PrefetchIssued, "prefetch_issued"),
        ] {
            if self.get(e) > 0 {
                out.push((label.into(), self.get(e) as f64));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_indices_are_exclusive_and_recycled() {
        let mine = thread_index().expect("live thread has an index");
        let other = std::thread::spawn(thread_index).join().unwrap().unwrap();
        assert_ne!(mine, other, "live threads never share an index");
        // The exited thread's index is claimable again.
        let third = std::thread::spawn(thread_index).join().unwrap().unwrap();
        assert_ne!(mine, third);
    }

    #[test]
    fn bucket_of_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn hist_percentiles_from_known_buckets() {
        let mut h = HistSnapshot::default();
        // 90 values in [2,4), 10 values in [1024,2048).
        h.buckets[1] = 90;
        h.buckets[10] = 10;
        h.sum = 90 * 2 + 10 * 1024;
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(0.50), Some(3), "median in bucket 1");
        assert_eq!(h.percentile(0.99), Some(2047), "tail in bucket 10");
        assert_eq!(h.percentile(0.0), Some(3), "floor clamps to rank 1");
        assert!((h.mean() - (90.0 * 2.0 + 10.0 * 1024.0) / 100.0).abs() < 1e-9);
        assert_eq!(HistSnapshot::default().percentile(0.5), None);
    }

    #[test]
    fn metrics_of_empty_snapshot_is_empty() {
        assert!(Snapshot::default().metrics(1000).is_empty());
        assert!(Snapshot::default().is_empty());
    }

    #[test]
    fn metrics_derive_rates_and_percentiles() {
        let mut s = Snapshot::default();
        s.counts[Event::ValidationFail as usize] = 50;
        s.counts[Event::LockAcquire as usize] = 1000;
        s.counts[Event::MagazineHit as usize] = 99;
        s.counts[Event::MagazineMiss as usize] = 1;
        s.counts[Event::MigrationBatch as usize] = 3;
        s.hists[HistKind::RetryLoop as usize].buckets[5] = 10;
        let m = s.metrics(1000);
        let get = |k: &str| m.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("validation_fail_per_op"), Some(0.05));
        assert_eq!(get("lock_acquires_per_op"), Some(1.0));
        assert_eq!(get("magazine_hit_rate"), Some(0.99));
        assert_eq!(get("migration_batches"), Some(3.0));
        assert_eq!(get("retry_p99_cycles"), Some(63.0));
        assert_eq!(get("ttl_sweeps"), None, "zero counters stay out");
    }

    #[test]
    fn delta_isolates_a_window() {
        let mut a = Snapshot::default();
        let mut b = Snapshot::default();
        a.counts[0] = 5;
        b.counts[0] = 12;
        b.hists[0].buckets[3] = 7;
        b.hists[0].sum = 70;
        let d = b.delta_since(&a);
        assert_eq!(d.counts[0], 7);
        assert_eq!(d.hists[0].buckets[3], 7);
        assert_eq!(d.hists[0].sum, 70);
    }

    #[cfg(feature = "probe")]
    #[test]
    fn enabled_hooks_land_in_the_ledger() {
        // One sequential test for all global-state behavior (counters are
        // process-wide; deltas keep it robust against sibling tests).
        let before = Snapshot::take();
        count(Event::TtlSweep);
        count_n(Event::TtlExpired, 4);
        record(HistKind::ValidationWindow, 100);
        lock_acquired();
        lock_released();
        // Another thread's events aggregate into the same snapshot.
        std::thread::spawn(|| count(Event::TtlSweep))
            .join()
            .unwrap();
        let d = Snapshot::take().delta_since(&before);
        assert_eq!(d.get(Event::TtlSweep), 2);
        assert_eq!(d.get(Event::TtlExpired), 4);
        assert_eq!(d.get(Event::LockAcquire), 1);
        assert_eq!(d.hist(HistKind::ValidationWindow).count(), 1);
        assert_eq!(d.hist(HistKind::LockHold).count(), 1);
        for (what, lhs, rhs) in d.conservation() {
            assert_eq!(lhs, rhs, "conservation violated: {what}");
        }
        assert!(!d.metrics(10).is_empty());
    }

    #[cfg(not(feature = "probe"))]
    #[test]
    fn disabled_hooks_are_noops() {
        assert!(!enabled());
        let before = Snapshot::take();
        count(Event::ValidationFail);
        count_n(Event::MigrationMoved, 99);
        record(HistKind::RetryLoop, 12345);
        lock_acquired();
        lock_released();
        assert_eq!(now(), 0, "disabled timestamp is a constant");
        let after = Snapshot::take();
        assert_eq!(after, before);
        assert!(after.is_empty());
        assert!(after.metrics(1).is_empty());
    }
}
