//! Compile-and-run proof that the disabled probe build is a no-op layer:
//! hooks exist, cost nothing, and touch no probe state. Compiled away
//! entirely when the `probe` feature is on (the enabled behavior is
//! covered by the crate's feature-gated unit tests).

#![cfg(not(feature = "probe"))]

use optik_probe as probe;

#[test]
fn disabled_build_compiles_every_hook_to_nothing() {
    assert!(!probe::enabled());

    // Guards carry no state: the span guard is a ZST, so constructing and
    // dropping one cannot write anywhere.
    assert_eq!(std::mem::size_of::<probe::trace::SpanGuard>(), 0);

    // Timestamps are the literal constant 0 — no rdtsc, no clock.
    assert_eq!(probe::now(), 0);
    assert_eq!(probe::elapsed(probe::now(), probe::now()), 0);

    // Hammer every hook from several threads, then confirm the global
    // snapshot never left its all-zero state (the disabled slabs do not
    // even exist, so there is nothing for these calls to increment).
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(|| {
                for _ in 0..1000 {
                    probe::count(probe::Event::ValidationFail);
                    probe::count_n(probe::Event::MagazineHit, 7);
                    probe::record(probe::HistKind::LockHold, 42);
                    probe::lock_acquired();
                    probe::lock_released();
                    let _g = probe::trace::span(probe::trace::SpanKind::Grace);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let snap = probe::Snapshot::take();
    assert!(snap.is_empty());
    assert_eq!(snap, probe::Snapshot::default());
    assert!(snap.metrics(1_000_000).is_empty());
    assert!(probe::trace::drain_json().is_none());

    // The registry is the one unconditional piece — it must still work,
    // because `reclaim` keys its magazines by it in every build.
    assert!(probe::thread_index().is_some());
}
