//! Depth-first schedule enumeration with sleep-set and preemption-bound
//! pruning.
//!
//! Each iteration replays a prefix of decisions (the current DFS stack),
//! lets the default policy extend it to a complete schedule, then
//! backtracks to the deepest decision with an untried alternative. The
//! model body runs once per schedule, from scratch, so the code under
//! test needs no snapshot/rollback support — determinism of the model
//! plus the recorded prefix is enough to reconstruct any interior node.
//!
//! Pruning:
//!
//! - **Sleep sets** (classic Godefroid-style, the persistent-set family of
//!   "Parsimonious Optimal DPOR"): once the subtree that runs thread `t`
//!   first from node `n` is fully explored, `(t, access)` joins `n`'s
//!   sleep set; sibling subtrees skip `t` until some executed access is
//!   *dependent* with `t`'s pending one (same object and not both loads),
//!   because until then running `t` first commutes with everything tried
//!   and reaches only already-covered states. Sound: only commuting
//!   reorderings are skipped; every reachable program state is still
//!   visited.
//! - **Preemption bounding**: a switch away from a thread that is enabled
//!   with a non-Yield access costs one preemption; schedules that exceed
//!   `Config::preemptions` are skipped. This is the classic
//!   context-bounded under-approximation — most concurrency bugs manifest
//!   within two preemptions — and it is what keeps the kv-level families
//!   tractable. `None` explores the full bounded tree.
//!
//! The default extension policy never preempts and prefers non-Yield
//! steps, so with `preemptions: Some(0)` the tree collapses to the
//! round-robin-ish completions of each first-thread choice.

use std::panic::{self, AssertUnwindSafe};

use synchro::shim::AccessKind;

use crate::sched::{ObjAccess, RunOutcome, Trial};
use crate::token::Token;
use crate::{Config, Stats};

/// One decision point on the DFS stack.
struct Node {
    /// Choice taken in the currently-explored subtree.
    chosen: usize,
    /// `chosen`'s pending access at this node.
    access: ObjAccess,
    /// Eligible `(thread, pending access)` pairs, thread-id order.
    enabled: Vec<(usize, ObjAccess)>,
    /// Bitmask of thread ids already taken or permanently skipped here.
    tried: u16,
    /// Sleep set: running these first from here is redundant.
    sleep: Vec<(usize, ObjAccess)>,
    /// Preemptions spent on the prefix strictly before this node.
    preempt_before: u32,
    /// Thread granted the step before this node.
    prev: Option<usize>,
}

impl Node {
    /// Whether granting `t` here switches away from a previous thread
    /// that still had real (non-Yield) work — i.e. costs a preemption.
    fn is_preemptive(&self, t: usize) -> bool {
        self.prev.is_some_and(|p| {
            p != t
                && self
                    .enabled
                    .iter()
                    .any(|&(et, ea)| et == p && ea.kind != AccessKind::Yield)
        })
    }
}

/// Two accesses commute iff reordering them cannot change any thread's
/// observations: scheduler-only steps (Yield/Start), different objects,
/// or two loads of the same object.
fn independent(a: ObjAccess, b: ObjAccess) -> bool {
    matches!(a.kind, AccessKind::Yield | AccessKind::Start)
        || matches!(b.kind, AccessKind::Yield | AccessKind::Start)
        || a.obj != b.obj
        || (a.kind == AccessKind::Load && b.kind == AccessKind::Load)
}

fn run_one(body: &mut dyn FnMut(&Trial), trial: &Trial) {
    let result = panic::catch_unwind(AssertUnwindSafe(|| body(trial)));
    if let Err(p) = result {
        // Failures during Trial::run already embed the token; failures in
        // the caller's post-run checks may not — print it so the schedule
        // is always recoverable from the test log.
        if let Some(token) = trial.try_token() {
            eprintln!("explore: schedule check failed; replay with token {token}");
        }
        panic::resume_unwind(p);
    }
}

/// Appends the fresh (beyond-prefix) decisions of `out` to the stack,
/// threading sleep sets and preemption counts down the new chain.
fn extend(stack: &mut Vec<Node>, out: &RunOutcome) {
    debug_assert!(out.decisions.len() >= stack.len());
    for (i, d) in out.decisions.iter().enumerate() {
        if i < stack.len() {
            debug_assert_eq!(
                stack[i].chosen, d.chosen,
                "deterministic replay of the DFS prefix diverged"
            );
            continue;
        }
        let (sleep, preempt_before) = match stack.last() {
            None => (Vec::new(), 0),
            Some(p) => (
                p.sleep
                    .iter()
                    .filter(|&&(t, a)| t != p.chosen && independent(a, p.access))
                    .copied()
                    .collect(),
                p.preempt_before + u32::from(p.is_preemptive(p.chosen)),
            ),
        };
        stack.push(Node {
            chosen: d.chosen,
            access: d.access,
            enabled: d.enabled.clone(),
            tried: 1 << d.chosen,
            sleep,
            preempt_before,
            prev: d.prev,
        });
    }
}

/// Pops exhausted nodes and redirects the deepest node that still has a
/// viable untried alternative. Returns `false` when the tree is done.
fn backtrack(stack: &mut Vec<Node>, config: &Config, stats: &mut Stats) -> bool {
    loop {
        let Some(top) = stack.last_mut() else {
            return false;
        };
        let mut picked = None;
        for &(t, a) in &top.enabled {
            if top.tried & (1 << t) != 0 {
                continue;
            }
            if config.sleep_sets && top.sleep.iter().any(|&(st, _)| st == t) {
                top.tried |= 1 << t;
                stats.pruned_sleep += 1;
                continue;
            }
            if let Some(bound) = config.preemptions {
                if top.preempt_before + u32::from(top.is_preemptive(t)) > bound {
                    top.tried |= 1 << t;
                    stats.pruned_preempt += 1;
                    continue;
                }
            }
            picked = Some((t, a));
            break;
        }
        match picked {
            Some((t, a)) => {
                // The old choice's subtree is fully explored: from now on
                // running it first from this node is redundant.
                let exhausted = (top.chosen, top.access);
                top.sleep.push(exhausted);
                top.chosen = t;
                top.access = a;
                top.tried |= 1 << t;
                return true;
            }
            None => {
                stack.pop();
            }
        }
    }
}

/// Enumerates every schedule of `body`'s model threads within `config`'s
/// bounds, running `body` once per schedule. Returns pruning/coverage
/// stats; callers assert on their own per-schedule checks inside `body`
/// (quote [`Trial::token`] in the message) and typically log the stats.
pub fn explore<F: FnMut(&Trial)>(config: Config, mut body: F) -> Stats {
    config.validate();
    let mut stats = Stats::default();
    let mut stack: Vec<Node> = Vec::new();
    loop {
        let prefix: Vec<usize> = stack.iter().map(|n| n.chosen).collect();
        let trial = Trial::new(prefix, config.max_steps);
        run_one(&mut body, &trial);
        let out = trial.take_outcome();
        stats.schedules += 1;
        stats.decisions += out.decisions.len() as u64;
        stats.max_depth = stats.max_depth.max(out.decisions.len());
        extend(&mut stack, &out);
        if !backtrack(&mut stack, &config, &mut stats) {
            break;
        }
        if stats.schedules >= config.max_schedules {
            stats.truncated = true;
            eprintln!(
                "explore: stopped at max_schedules={} — coverage is TRUNCATED, \
                 raise the limit or tighten the model",
                config.max_schedules
            );
            break;
        }
    }
    stats
}

/// Re-runs one recorded schedule and proves it replayed byte-exactly:
/// same decision count and same `(chosen, object, kind)` digest as when
/// it was recorded. `body` is the same closure shape [`explore`] takes
/// and must rebuild the model identically.
pub fn replay<F: FnOnce(&Trial)>(config: Config, token: &Token, body: F) {
    config.validate();
    let trial = Trial::new(token.choices.clone(), config.max_steps);
    body(&trial);
    let out = trial.take_outcome();
    assert_eq!(
        out.nthreads, token.threads,
        "replay: model has {} threads but token {token} was recorded over {}",
        out.nthreads, token.threads
    );
    assert_eq!(
        out.decisions.len(),
        token.choices.len(),
        "replay: run made {} decisions but token {token} recorded {} — the \
         model diverged from the recording",
        out.decisions.len(),
        token.choices.len()
    );
    let got = out.hash;
    assert_eq!(
        got, token.hash,
        "replay: schedule digest {got:08x} != recorded {:08x} (token {token}) — \
         the interleaving did not replay byte-exactly; the model or the code \
         under test changed since the recording",
        token.hash
    );
}
