//! Deterministic bounded schedule exploration for the OPTIK validation
//! points.
//!
//! The stress tiers sample thread schedules at random; this crate
//! *enumerates* them. A cooperative scheduler runs 2–3 model threads over
//! a small bounded history, trapping at every `synchro::shim` access (the
//! shard version locks, routing bounds, TTL clock — the OPTIK validation
//! points), and a DFS driver explores every interleaving up to a
//! preemption/depth bound with sleep-set pruning. Each schedule gets a
//! compact [`Token`] that [`replay`] re-runs byte-exactly — a failing
//! interleaving is a unit test, not a flake.
//!
//! ```
//! use optik_explore::{explore, replay, traced::TracedU64, Config};
//!
//! // Two racing read-modify-write sequences: the classic lost update.
//! let model = |trial: &optik_explore::Trial| {
//!     let c = TracedU64::new(0);
//!     trial.run(&[
//!         &|| { let v = c.load(); c.store(v + 1) },
//!         &|| { let v = c.load(); c.store(v + 1) },
//!     ]);
//!     // Every schedule ends in 1 (both loaded 0) or 2 (sequential).
//!     assert!(c.load() >= 1, "schedule {}", trial.token());
//! };
//! let stats = explore(Config::default(), model);
//! assert!(stats.schedules > 1);
//! ```
//!
//! The production hot paths are schedulable only under
//! `--cfg optik_explore` (see `synchro::shim`); the kv-level suites in
//! `tests/explore_kv.rs` are gated on that cfg and run in CI's dedicated
//! `explore` job, while the model-program suites here run in tier-1.

#![warn(missing_docs)]

mod dfs;
pub mod hist;
mod sched;
pub mod token;
pub mod traced;

use std::fmt;

pub use dfs::{explore, replay};
pub use hist::Hist;
pub use sched::{Trial, MAX_THREADS};
pub use token::Token;

/// Bounds for one exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Per-schedule step budget; exceeding it aborts the run with a
    /// livelock diagnostic. Every shim access, yield, and thread start
    /// costs one step.
    pub max_steps: u64,
    /// Safety valve on the total number of schedules; hitting it marks
    /// [`Stats::truncated`] and logs loudly — an exploration that stops
    /// here did **not** cover the bounded tree.
    pub max_schedules: u64,
    /// Maximum preemptions per schedule (`None` = unbounded). A
    /// preemption is a switch away from a thread that still had a
    /// non-Yield access pending.
    pub preemptions: Option<u32>,
    /// Enable sleep-set pruning (sound; skips only commuting
    /// reorderings). Disable to count the raw tree in tests.
    pub sleep_sets: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_steps: 2_000,
            max_schedules: 1_000_000,
            preemptions: None,
            sleep_sets: true,
        }
    }
}

impl Config {
    pub(crate) fn validate(&self) {
        assert!(self.max_steps > 0, "Config::max_steps must be positive");
        assert!(
            self.max_schedules > 0,
            "Config::max_schedules must be positive"
        );
    }
}

/// Coverage and pruning counters from one [`explore`] call.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Complete schedules executed (each ran the model once).
    pub schedules: u64,
    /// Total scheduling decisions across all schedules.
    pub decisions: u64,
    /// Alternatives skipped by sleep-set pruning.
    pub pruned_sleep: u64,
    /// Alternatives skipped by the preemption bound.
    pub pruned_preempt: u64,
    /// Longest schedule, in decisions.
    pub max_depth: usize,
    /// True iff the run stopped at `max_schedules` before exhausting the
    /// bounded tree.
    pub truncated: bool,
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedules={} decisions={} pruned_sleep={} pruned_preempt={} max_depth={}{}",
            self.schedules,
            self.decisions,
            self.pruned_sleep,
            self.pruned_preempt,
            self.max_depth,
            if self.truncated { " TRUNCATED" } else { "" }
        )
    }
}
