//! The cooperative scheduler: one granted thread at a time, decisions
//! made at yield points.
//!
//! Model threads run as real OS threads, but every shim access parks in
//! [`RunCtl::trap`] until the scheduler grants it the next step, so at
//! most one model thread executes between two yield points and the
//! interleaving is exactly the recorded decision sequence.
//!
//! Scheduling is *decision-in-trap*: there is no separate scheduler
//! thread. When a thread traps and every other unfinished thread is
//! already parked with a pending access, the trapping thread itself picks
//! the next step (following the replay prefix, then the default policy)
//! and either continues — granting itself costs zero context switches —
//! or wakes the chosen thread and parks. The common schedule, one thread
//! running a stretch of consecutive steps, therefore runs at nearly
//! uninstrumented speed.
//!
//! Spin-waits: a thread that parks at a [`AccessKind::Yield`] point (from
//! `synchro::relax()` or a `Backoff`) is waiting for another thread's
//! write. It is kept *disabled* until the global write epoch advances
//! past the value captured when it parked. When *every* unfinished
//! thread is yield-parked with no intervening write, waking order cannot
//! be observed, so the step is forced — round-robin to the least
//! recently granted yielder, with no sibling branches for the DFS. (This
//! state is reachable and *cyclic*: one thread condition-spinning on a
//! lock while its holder sits in a pacing backoff re-enters it after
//! every futile re-check. Branching here once let the tree grow one
//! futile spin per schedule, without bound.) Bounded spin loops thus
//! never multiply the schedule tree, and unbounded ones terminate via
//! the step budget.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use synchro::shim::{self, Access, AccessKind, ExploreHook};

use crate::token::{fnv_step, Token, FNV_OFFSET};

/// Most threads a trial may run: one lowercase hex digit in the token.
pub const MAX_THREADS: usize = 15;

/// Object id used for accesses that touch no object (Yield/Start).
pub(crate) const NO_OBJ: u32 = u32::MAX;

/// An access with its address interned to a run-stable object id.
/// Interning happens in decision order, so ids are identical across every
/// run that shares the schedule prefix — which is what lets sleep sets
/// and replay digests compare accesses from different runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ObjAccess {
    pub obj: u32,
    pub kind: AccessKind,
}

#[inline]
pub(crate) fn kind_byte(kind: AccessKind) -> u8 {
    match kind {
        AccessKind::Load => 0,
        AccessKind::Store => 1,
        AccessKind::Rmw => 2,
        AccessKind::Yield => 3,
        AccessKind::Start => 4,
    }
}

/// One scheduling decision, with everything the DFS driver needs to
/// enumerate the untaken branches.
#[derive(Debug, Clone)]
pub(crate) struct Decision {
    /// Thread granted this step.
    pub chosen: usize,
    /// The access it was about to perform.
    pub access: ObjAccess,
    /// All threads that were eligible at this point, with their pending
    /// accesses (includes `chosen`), in thread-id order.
    pub enabled: Vec<(usize, ObjAccess)>,
    /// Thread granted the previous step, if any.
    pub prev: Option<usize>,
}

/// The completed record of one run.
#[derive(Debug)]
pub(crate) struct RunOutcome {
    pub nthreads: usize,
    pub decisions: Vec<Decision>,
    pub hash: u32,
}

impl RunOutcome {
    pub fn token(&self) -> Token {
        Token {
            threads: self.nthreads,
            choices: self.decisions.iter().map(|d| d.chosen).collect(),
            hash: self.hash,
        }
    }
}

/// Private unwind payload used to tear parked threads out of the model
/// when a run aborts; never escapes the worker wrapper.
struct AbortToken;

#[derive(Debug, Clone)]
enum Abort {
    /// The step budget ran out: a livelock, or `max_steps` set too low.
    StepLimit,
    /// A replay prefix asked for a thread that was not enabled.
    Diverged { pos: usize, wanted: usize },
    /// A model thread panicked; the first payload is kept for reporting.
    Panic,
}

struct RunState {
    /// Per-thread pending access; `Some` while parked in a trap.
    pending: Vec<Option<Access>>,
    /// Write epoch captured when the thread parked at a Yield.
    parked_epoch: Vec<u64>,
    /// Step at which each thread was last granted (0 = never): drives the
    /// round-robin choice when every unfinished thread is yield-parked.
    last_granted: Vec<u64>,
    finished: Vec<bool>,
    /// Thread holding an unconsumed grant.
    granted: Option<usize>,
    prev: Option<usize>,
    write_epoch: u64,
    steps: u64,
    abort: Option<Abort>,
    panic_msg: Option<(usize, String)>,
    // -- decision driver --
    prefix: Vec<usize>,
    max_steps: u64,
    intern: HashMap<usize, u32>,
    decisions: Vec<Decision>,
    hash: u32,
}

impl RunState {
    fn all_poised(&self) -> bool {
        self.pending
            .iter()
            .zip(&self.finished)
            .all(|(p, &f)| f || p.is_some())
    }

    fn any_unfinished(&self) -> bool {
        self.finished.iter().any(|&f| !f)
    }

    fn intern_access(&mut self, a: Access) -> ObjAccess {
        let obj = match a.kind {
            AccessKind::Yield | AccessKind::Start => NO_OBJ,
            _ => {
                let next = self.intern.len() as u32;
                *self.intern.entry(a.addr).or_insert(next)
            }
        };
        ObjAccess { obj, kind: a.kind }
    }

    /// Picks and grants the next step. Caller must hold the lock, have
    /// verified `granted.is_none() && all_poised() && any_unfinished()`,
    /// and notify the condvar afterwards.
    fn decide(&mut self, clock: &AtomicU64) {
        debug_assert!(self.granted.is_none() && self.abort.is_none());
        let mut enabled: Vec<(usize, ObjAccess)> = Vec::new();
        for t in 0..self.pending.len() {
            if self.finished[t] {
                continue;
            }
            let a = self.pending[t].expect("all_poised checked");
            let eligible = match a.kind {
                // A spinning thread only becomes runnable once someone
                // wrote: its condition may have changed.
                AccessKind::Yield => self.parked_epoch[t] < self.write_epoch,
                _ => true,
            };
            if eligible {
                let oa = self.intern_access(a);
                enabled.push((t, oa));
            }
        }
        if enabled.is_empty() {
            // Every unfinished thread is parked at a yield and nothing has
            // been written since the last of them parked. Re-running a
            // condition-spinner here re-reads unchanged memory, and the
            // order in which parked threads wake is observationally
            // irrelevant — so this is a *forced* step, not a decision
            // point. Offering the yields as alternatives is the trap that
            // once made the DFS enumerate spin-count permutations of a
            // cyclic state without bound (two threads yielding at each
            // other grow the schedule by one futile spin per branch,
            // forever, at zero preemptions). Granting the least recently
            // granted yielder is fair round-robin: a pacing backoff
            // (which proceeds regardless) gets the step after at most
            // n-1 futile wakes, so real progress resumes; a sole spinner
            // whose condition can never change runs into the step budget
            // and reports a livelock.
            let t = (0..self.pending.len())
                .filter(|&t| !self.finished[t])
                .min_by_key(|&t| (self.last_granted[t], t))
                .expect("any_unfinished checked by caller");
            let a = self.pending[t].expect("all_poised checked");
            let oa = self.intern_access(a);
            enabled.push((t, oa));
        }

        let pos = self.decisions.len();
        let chosen = if pos < self.prefix.len() {
            let wanted = self.prefix[pos];
            if !enabled.iter().any(|&(t, _)| t == wanted) {
                self.abort = Some(Abort::Diverged { pos, wanted });
                return;
            }
            wanted
        } else {
            // Default policy: keep running the previous thread while it
            // has real work (zero context switches and zero preemptions),
            // else the lowest-id thread with a non-Yield access, else the
            // lowest-id yield.
            let prev_runnable = self.prev.filter(|&p| {
                enabled
                    .iter()
                    .any(|&(t, oa)| t == p && oa.kind != AccessKind::Yield)
            });
            match prev_runnable {
                Some(p) => p,
                None => {
                    enabled
                        .iter()
                        .find(|&&(_, oa)| oa.kind != AccessKind::Yield)
                        .unwrap_or(&enabled[0])
                        .0
                }
            }
        };
        let access = enabled
            .iter()
            .find(|&&(t, _)| t == chosen)
            .expect("chosen is enabled")
            .1;

        self.hash = fnv_step(self.hash, chosen, access.obj, kind_byte(access.kind));
        self.decisions.push(Decision {
            chosen,
            access,
            enabled,
            prev: self.prev,
        });
        self.steps += 1;
        clock.store(self.steps, Ordering::SeqCst);
        if self.steps > self.max_steps {
            self.abort = Some(Abort::StepLimit);
            return;
        }
        if matches!(access.kind, AccessKind::Store | AccessKind::Rmw) {
            self.write_epoch += 1;
        }
        self.last_granted[chosen] = self.steps;
        self.prev = Some(chosen);
        self.granted = Some(chosen);
    }

    fn token_so_far(&self) -> Token {
        Token {
            threads: self.pending.len(),
            choices: self.decisions.iter().map(|d| d.chosen).collect(),
            hash: self.hash,
        }
    }
}

pub(crate) struct RunCtl {
    state: Mutex<RunState>,
    cv: Condvar,
    clock: Arc<AtomicU64>,
}

impl RunCtl {
    fn new(nthreads: usize, prefix: Vec<usize>, max_steps: u64, clock: Arc<AtomicU64>) -> Self {
        RunCtl {
            state: Mutex::new(RunState {
                pending: vec![None; nthreads],
                parked_epoch: vec![0; nthreads],
                last_granted: vec![0; nthreads],
                finished: vec![false; nthreads],
                granted: None,
                prev: None,
                write_epoch: 0,
                steps: 0,
                abort: None,
                panic_msg: None,
                prefix,
                max_steps,
                intern: HashMap::new(),
                decisions: Vec::new(),
                hash: FNV_OFFSET,
            }),
            cv: Condvar::new(),
            clock,
        }
    }

    /// A model thread reporting its next access; returns once granted.
    fn trap(&self, tid: usize, access: Access) {
        if std::thread::panicking() {
            // A Drop impl touched a shim atomic while this thread unwinds
            // (usually from an AbortToken). Parking would deadlock and
            // panicking would double-panic; let the access run raw — the
            // run is already being torn down.
            return;
        }
        let mut st = self.state.lock().unwrap();
        if st.abort.is_some() {
            drop(st);
            panic::panic_any(AbortToken);
        }
        debug_assert!(st.pending[tid].is_none(), "thread trapped while pending");
        st.pending[tid] = Some(access);
        if access.kind == AccessKind::Yield {
            st.parked_epoch[tid] = st.write_epoch;
        }
        if st.granted.is_none() && st.all_poised() {
            st.decide(&self.clock);
            self.cv.notify_all();
        }
        while st.granted != Some(tid) {
            if st.abort.is_some() {
                drop(st);
                panic::panic_any(AbortToken);
            }
            st = self.cv.wait(st).unwrap();
        }
        st.granted = None;
        st.pending[tid] = None;
        // The access itself executes after we return, before this
        // thread's next trap — atomically, as far as the schedule is
        // concerned.
    }

    /// A model thread is done (normally or by panic).
    fn finish(&self, tid: usize, panicked: Option<String>) {
        let mut st = self.state.lock().unwrap();
        st.finished[tid] = true;
        st.pending[tid] = None;
        if let Some(msg) = panicked {
            if st.panic_msg.is_none() {
                st.panic_msg = Some((tid, msg));
            }
            st.abort = Some(Abort::Panic);
        } else if st.abort.is_none()
            && st.granted.is_none()
            && st.any_unfinished()
            && st.all_poised()
        {
            st.decide(&self.clock);
        }
        self.cv.notify_all();
    }
}

struct ThreadHook {
    ctl: Arc<RunCtl>,
    tid: usize,
}

impl ExploreHook for ThreadHook {
    fn yield_point(&self, access: Access) {
        self.ctl.trap(self.tid, access);
    }
}

fn payload_str(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// One schedule: build your shared state, call [`Trial::run`] with the
/// model thread bodies, then check the outcome — quoting
/// [`Trial::token`] in any assertion message so the failing interleaving
/// can be replayed with [`crate::replay`].
pub struct Trial {
    prefix: Vec<usize>,
    max_steps: u64,
    clock: Arc<AtomicU64>,
    outcome: Mutex<Option<RunOutcome>>,
}

impl Trial {
    pub(crate) fn new(prefix: Vec<usize>, max_steps: u64) -> Self {
        Trial {
            prefix,
            max_steps,
            clock: Arc::new(AtomicU64::new(0)),
            outcome: Mutex::new(None),
        }
    }

    /// The logical time: number of scheduling decisions granted so far.
    /// Use it to timestamp history records — two operations overlap (and
    /// may linearize in either order) exactly when their `[invoke,
    /// response]` step windows overlap.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Runs one body per model thread to completion under the scheduler.
    ///
    /// Panics if a model thread panics (with the schedule token in the
    /// message), if the step budget is exceeded (livelock guard), or if
    /// the replay prefix diverges from what the model can actually do.
    pub fn run(&self, bodies: &[&(dyn Fn() + Sync)]) {
        let n = bodies.len();
        assert!(
            (1..=MAX_THREADS).contains(&n),
            "Trial::run takes 1..={MAX_THREADS} threads, got {n}"
        );
        assert!(
            self.outcome.lock().unwrap().is_none(),
            "Trial::run called twice"
        );
        self.clock.store(0, Ordering::SeqCst);
        let ctl = Arc::new(RunCtl::new(
            n,
            self.prefix.clone(),
            self.max_steps,
            self.clock.clone(),
        ));
        std::thread::scope(|s| {
            for (tid, body) in bodies.iter().enumerate() {
                let ctl = Arc::clone(&ctl);
                s.spawn(move || {
                    let hook: Arc<dyn ExploreHook> = Arc::new(ThreadHook {
                        ctl: Arc::clone(&ctl),
                        tid,
                    });
                    let _guard = shim::install_hook(hook);
                    let result = panic::catch_unwind(AssertUnwindSafe(|| {
                        // Announce before the first instruction so even
                        // spawn order is a recorded scheduling decision.
                        ctl.trap(tid, Access::START);
                        body();
                    }));
                    let msg = match result {
                        Ok(()) => None,
                        Err(p) if p.is::<AbortToken>() => None,
                        Err(p) => Some(payload_str(p.as_ref())),
                    };
                    ctl.finish(tid, msg);
                });
            }
        });
        let st = ctl.state.lock().unwrap();
        match &st.abort {
            None => {}
            Some(Abort::Panic) => {
                let (tid, msg) = st
                    .panic_msg
                    .clone()
                    .unwrap_or((usize::MAX, "<missing payload>".into()));
                panic!(
                    "model thread {tid} panicked under the explorer: {msg}\n  \
                     schedule token: {}",
                    st.token_so_far()
                );
            }
            Some(Abort::StepLimit) => panic!(
                "schedule exceeded max_steps={}: livelock in the model, or raise \
                 Config::max_steps\n  schedule token so far: {}",
                st.max_steps,
                st.token_so_far()
            ),
            Some(Abort::Diverged { pos, wanted }) => panic!(
                "replay diverged at decision {pos}: thread {wanted} was not \
                 enabled — the model no longer matches the recorded schedule\n  \
                 schedule token so far: {}",
                st.token_so_far()
            ),
        }
        *self.outcome.lock().unwrap() = Some(RunOutcome {
            nthreads: n,
            decisions: st.decisions.clone(),
            hash: st.hash,
        });
    }

    /// The completed schedule's token. Panics before [`Trial::run`].
    pub fn token(&self) -> Token {
        self.outcome
            .lock()
            .unwrap()
            .as_ref()
            .expect("Trial::token before run")
            .token()
    }

    /// Like [`Trial::token`] but `None` before the run completed.
    pub fn try_token(&self) -> Option<Token> {
        self.outcome.lock().unwrap().as_ref().map(RunOutcome::token)
    }

    pub(crate) fn take_outcome(&self) -> RunOutcome {
        self.outcome
            .lock()
            .unwrap()
            .take()
            .expect("take_outcome before run")
    }
}
