//! Schedule tokens: compact, self-validating recordings of one explored
//! interleaving.
//!
//! A token pins a schedule by its *decision sequence* — which thread was
//! granted each step — and carries a 32-bit FNV-1a digest over the full
//! per-step record (chosen thread, interned object id, access kind). The
//! digest is what makes replay **byte-exact**: [`crate::replay`] re-runs
//! the decision sequence and then compares digests, so any divergence in
//! what the threads actually touched (a code change, nondeterminism in
//! the model) fails loudly instead of silently replaying a different
//! interleaving.
//!
//! Format: `x1.<threads>.<choices>.<hash>` where `x1` is the encoding
//! version, `<threads>` is the thread count (decimal), `<choices>` is one
//! lowercase hex digit per decision (the granted thread id, so at most 15
//! threads) or `-` when the schedule made no decisions, and `<hash>` is
//! the 8-hex-digit digest. Example: `x1.2.001011.4afb1c22`.

use std::fmt;
use std::str::FromStr;

const VERSION: &str = "x1";

/// A recorded schedule: enough to deterministically re-run one explored
/// interleaving and prove it replayed identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Number of model threads the schedule was recorded over.
    pub threads: usize,
    /// Granted thread id per decision, in order.
    pub choices: Vec<usize>,
    /// FNV-1a digest over the per-step `(chosen, object, kind)` records.
    pub hash: u32,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{VERSION}.{}.", self.threads)?;
        if self.choices.is_empty() {
            write!(f, "-")?;
        } else {
            for &c in &self.choices {
                write!(f, "{c:x}")?;
            }
        }
        write!(f, ".{:08x}", self.hash)
    }
}

/// Why a token string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenError(pub String);

impl fmt::Display for TokenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed schedule token: {}", self.0)
    }
}

impl std::error::Error for TokenError {}

impl FromStr for Token {
    type Err = TokenError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.trim().split('.');
        let (Some(ver), Some(threads), Some(choices), Some(hash), None) = (
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
        ) else {
            return Err(TokenError(format!(
                "expected 4 dot-separated fields in {s:?}"
            )));
        };
        if ver != VERSION {
            return Err(TokenError(format!(
                "unsupported version {ver:?} (expected {VERSION:?})"
            )));
        }
        let threads: usize = threads
            .parse()
            .map_err(|e| TokenError(format!("thread count {threads:?}: {e}")))?;
        if threads == 0 || threads > 15 {
            return Err(TokenError(format!("thread count {threads} out of 1..=15")));
        }
        let choices = if choices == "-" {
            Vec::new()
        } else {
            choices
                .chars()
                .map(|c| {
                    c.to_digit(16)
                        .map(|d| d as usize)
                        .filter(|&d| d < threads)
                        .ok_or_else(|| {
                            TokenError(format!(
                                "choice digit {c:?} out of range for {threads} threads"
                            ))
                        })
                })
                .collect::<Result<Vec<_>, _>>()?
        };
        let hash =
            u32::from_str_radix(hash, 16).map_err(|e| TokenError(format!("hash {hash:?}: {e}")))?;
        Ok(Token {
            threads,
            choices,
            hash,
        })
    }
}

/// FNV-1a offset basis (the digest's initial value).
pub(crate) const FNV_OFFSET: u32 = 0x811C_9DC5;
const FNV_PRIME: u32 = 0x0100_0193;

#[inline]
fn fnv_byte(hash: u32, byte: u8) -> u32 {
    (hash ^ u32::from(byte)).wrapping_mul(FNV_PRIME)
}

/// Folds one scheduling decision into the digest: the granted thread, the
/// interned id of the object it touched, and the access kind.
pub(crate) fn fnv_step(mut hash: u32, chosen: usize, obj: u32, kind: u8) -> u32 {
    hash = fnv_byte(hash, chosen as u8);
    for b in obj.to_le_bytes() {
        hash = fnv_byte(hash, b);
    }
    fnv_byte(hash, kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_display_and_parse() {
        let t = Token {
            threads: 3,
            choices: vec![0, 1, 2, 2, 0],
            hash: 0x4AFB_1C22,
        };
        let s = t.to_string();
        assert_eq!(s, "x1.3.01220.4afb1c22");
        assert_eq!(s.parse::<Token>().unwrap(), t);
    }

    #[test]
    fn empty_choice_list_uses_dash() {
        let t = Token {
            threads: 1,
            choices: vec![],
            hash: 7,
        };
        let s = t.to_string();
        assert_eq!(s, "x1.1.-.00000007");
        assert_eq!(s.parse::<Token>().unwrap(), t);
    }

    #[test]
    fn rejects_malformed_tokens() {
        for bad in [
            "",
            "x1.2.01",             // missing hash
            "x2.2.01.00000000",    // wrong version
            "x1.0.-.00000000",     // zero threads
            "x1.16.0.00000000",    // too many threads
            "x1.2.03.00000000",    // choice digit out of range
            "x1.2.01.zzzzzzzz",    // bad hash
            "x1.2.01.00000000.xx", // trailing field
        ] {
            assert!(bad.parse::<Token>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn digest_distinguishes_choice_object_and_kind() {
        let base = fnv_step(FNV_OFFSET, 0, 0, 0);
        assert_ne!(base, fnv_step(FNV_OFFSET, 1, 0, 0));
        assert_ne!(base, fnv_step(FNV_OFFSET, 0, 1, 0));
        assert_ne!(base, fnv_step(FNV_OFFSET, 0, 0, 1));
    }
}
