//! Always-trapping atomics for hand-written model programs.
//!
//! The `synchro::shim` wrappers only trap under `--cfg optik_explore`, so
//! the production hot paths stay zero-cost. The explorer's own test
//! models — and the tier-1 smoke/replay suites that must run in a plain
//! `cargo test` — need atomics that are *always* yield points. These
//! types report every operation to the calling thread's explore hook
//! unconditionally (and behave like plain atomics when no hook is
//! installed).

use core::sync::atomic::Ordering::SeqCst;

use synchro::shim::{yield_point, Access, AccessKind};

macro_rules! traced_atomic {
    ($(#[$meta:meta])* $name:ident, $raw:path, $prim:ty) => {
        $(#[$meta])*
        #[derive(Debug, Default)]
        pub struct $name {
            word: $raw,
        }

        impl $name {
            /// Creates a new traced atomic initialized to `v`.
            pub const fn new(v: $prim) -> Self {
                Self { word: <$raw>::new(v) }
            }

            fn trap(&self, kind: AccessKind) {
                yield_point(Access {
                    addr: &self.word as *const _ as usize,
                    kind,
                });
            }

            /// SeqCst load (one yield point).
            pub fn load(&self) -> $prim {
                self.trap(AccessKind::Load);
                self.word.load(SeqCst)
            }

            /// SeqCst store (one yield point).
            pub fn store(&self, v: $prim) {
                self.trap(AccessKind::Store);
                self.word.store(v, SeqCst)
            }

            /// SeqCst fetch-add (one yield point).
            pub fn fetch_add(&self, v: $prim) -> $prim {
                self.trap(AccessKind::Rmw);
                self.word.fetch_add(v, SeqCst)
            }

            /// SeqCst compare-exchange (one yield point, even on failure).
            pub fn compare_exchange(&self, current: $prim, new: $prim) -> Result<$prim, $prim> {
                self.trap(AccessKind::Rmw);
                self.word.compare_exchange(current, new, SeqCst, SeqCst)
            }
        }
    };
}

traced_atomic!(
    /// A `u64` cell that is a yield point in every build.
    TracedU64,
    core::sync::atomic::AtomicU64,
    u64
);

traced_atomic!(
    /// A `usize` cell that is a yield point in every build.
    TracedUsize,
    core::sync::atomic::AtomicUsize,
    usize
);

/// One voluntary spin-wait iteration: parks at a Yield point until
/// another thread performs a write (model-program analogue of
/// `synchro::relax()`). No-op without a hook.
pub fn yield_now() {
    yield_point(Access::YIELD);
}
