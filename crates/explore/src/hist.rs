//! A tiny concurrent history recorder for explorer tests.
//!
//! Model threads record `(invoke, response, op)` triples timestamped with
//! [`crate::Trial::now`] logical steps; after the run,
//! [`Hist::take_sorted`] yields them in a deterministic order so the
//! per-schedule linearizability check (and therefore the whole explore
//! run) is a pure function of the schedule token.

use std::sync::Mutex;

/// Concurrent append-only log of timestamped operations.
#[derive(Debug, Default)]
pub struct Hist<O> {
    ops: Mutex<Vec<(u64, u64, O)>>,
}

impl<O> Hist<O> {
    /// Creates an empty history.
    pub fn new() -> Self {
        Hist {
            ops: Mutex::new(Vec::new()),
        }
    }

    /// Records one completed operation with its logical `[invoke,
    /// response]` window (take both from [`crate::Trial::now`], around
    /// the operation).
    pub fn push(&self, invoke: u64, response: u64, op: O) {
        debug_assert!(invoke <= response);
        self.ops.lock().unwrap().push((invoke, response, op));
    }

    /// Drains the history sorted by `(invoke, response)`. Ties can only
    /// arise between operations whose windows coincide exactly, which a
    /// linearizability checker must treat symmetrically anyway, so the
    /// sort makes the downstream check schedule-deterministic.
    pub fn take_sorted(&self) -> Vec<(u64, u64, O)> {
        let mut v = std::mem::take(&mut *self.ops.lock().unwrap());
        v.sort_by_key(|&(i, r, _)| (i, r));
        v
    }
}
