//! Tier-1 smoke tests for the explorer itself, over hand-written model
//! programs with always-trapping `traced` atomics. These run in a plain
//! `cargo test -q` — no `--cfg optik_explore` needed — so the scheduler,
//! the enumeration, the pruning, and the token machinery are exercised on
//! every CI run, not just in the dedicated explore job.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

use optik_explore::traced::{yield_now, TracedU64};
use optik_explore::{explore, replay, Config, Token, Trial};

fn full(cfg_overrides: impl FnOnce(&mut Config)) -> Config {
    let mut c = Config {
        sleep_sets: false,
        ..Config::default()
    };
    cfg_overrides(&mut c);
    c
}

/// Two threads, each Start + Load + Store on a shared word: the schedule
/// tree is the interleavings of two 3-step sequences, C(6,3) = 20.
#[test]
fn enumerates_exactly_the_unpruned_tree() {
    let mut outcomes = BTreeSet::new();
    let stats = explore(full(|_| {}), |trial: &Trial| {
        let c = TracedU64::new(0);
        trial.run(&[
            &|| {
                let v = c.load();
                c.store(v + 1);
            },
            &|| {
                let v = c.load();
                c.store(v + 1);
            },
        ]);
        outcomes.insert(c.load());
    });
    assert_eq!(stats.schedules, 20, "{stats}");
    assert_eq!(stats.max_depth, 6, "{stats}");
    assert_eq!(stats.pruned_sleep, 0, "{stats}");
    // The lost update is found (1) and so is the sequential result (2).
    assert_eq!(outcomes, BTreeSet::from([1, 2]));
}

/// With zero preemptions allowed, only the two run-to-completion orders
/// survive — and neither exhibits the lost update.
#[test]
fn preemption_bound_zero_leaves_serial_schedules() {
    let mut outcomes = BTreeSet::new();
    let stats = explore(full(|c| c.preemptions = Some(0)), |trial: &Trial| {
        let c = TracedU64::new(0);
        trial.run(&[
            &|| {
                let v = c.load();
                c.store(v + 1);
            },
            &|| {
                let v = c.load();
                c.store(v + 1);
            },
        ]);
        outcomes.insert(c.load());
    });
    assert_eq!(stats.schedules, 2, "{stats}");
    assert!(stats.pruned_preempt > 0, "{stats}");
    assert_eq!(outcomes, BTreeSet::from([2]));
}

/// Sleep sets must shrink the tree without losing any outcome.
#[test]
fn sleep_sets_prune_but_preserve_outcomes() {
    let mut pruned_outcomes = BTreeSet::new();
    let pruned = explore(
        Config {
            sleep_sets: true,
            ..full(|_| {})
        },
        |trial: &Trial| {
            let c = TracedU64::new(0);
            trial.run(&[
                &|| {
                    let v = c.load();
                    c.store(v + 1);
                },
                &|| {
                    let v = c.load();
                    c.store(v + 1);
                },
            ]);
            pruned_outcomes.insert(c.load());
        },
    );
    assert!(pruned.schedules < 20, "{pruned}");
    assert!(pruned.pruned_sleep > 0, "{pruned}");
    assert_eq!(pruned_outcomes, BTreeSet::from([1, 2]));
}

/// Disjoint objects commute: sleep sets collapse the 2-thread tree over
/// two independent counters to very few schedules.
#[test]
fn independent_objects_collapse_under_sleep_sets() {
    let mut outcomes = BTreeSet::new();
    let stats = explore(Config::default(), |trial: &Trial| {
        let a = TracedU64::new(0);
        let b = TracedU64::new(0);
        trial.run(&[&|| a.store(1), &|| b.store(1)]);
        outcomes.insert((a.load(), b.load()));
    });
    assert_eq!(outcomes, BTreeSet::from([(1, 1)]));
    // Unpruned this tree has C(4,2)=6 schedules; commuting stores over
    // different objects should leave strictly fewer.
    assert!(stats.schedules < 6, "{stats}");
}

/// A spin-wait on another thread's write terminates under the yield
/// re-enable rule instead of unwinding the step budget.
#[test]
fn yield_spin_wait_terminates() {
    let stats = explore(full(|c| c.max_steps = 200), |trial: &Trial| {
        let flag = TracedU64::new(0);
        trial.run(&[
            &|| {
                while flag.load() == 0 {
                    yield_now();
                }
            },
            &|| flag.store(1),
        ]);
        assert_eq!(flag.load(), 1, "schedule {}", trial.token());
    });
    assert!(stats.schedules >= 2, "{stats}");
    assert!(!stats.truncated, "{stats}");
}

/// A genuine livelock (spinning on a write that never comes) aborts with
/// the step-limit diagnostic instead of hanging.
#[test]
fn livelock_hits_step_limit_diagnostic() {
    let err = catch_unwind(AssertUnwindSafe(|| {
        explore(full(|c| c.max_steps = 64), |trial: &Trial| {
            let flag = TracedU64::new(0);
            trial.run(&[&|| {
                while flag.load() == 0 {
                    yield_now();
                }
            }]);
        });
    }))
    .expect_err("livelock must abort");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("max_steps"), "unexpected message: {msg}");
    assert!(msg.contains("schedule token"), "unexpected message: {msg}");
}

/// The scheduler is deterministic: the same prefix yields the same
/// token, and an explored schedule replays byte-exactly.
#[test]
fn tokens_replay_byte_exactly() {
    let mut tokens: Vec<(Token, u64)> = Vec::new();
    explore(full(|_| {}), |trial: &Trial| {
        let c = TracedU64::new(0);
        trial.run(&[
            &|| {
                let v = c.load();
                c.store(v + 1);
            },
            &|| {
                let v = c.load();
                c.store(v + 1);
            },
        ]);
        tokens.push((trial.token(), c.load()));
    });
    assert_eq!(tokens.len(), 20);
    // Every schedule distinct, every token round-trips as a string.
    let unique: BTreeSet<String> = tokens.iter().map(|(t, _)| t.to_string()).collect();
    assert_eq!(unique.len(), 20);
    for (token, recorded_outcome) in &tokens {
        let reparsed: Token = token.to_string().parse().unwrap();
        assert_eq!(&reparsed, token);
        replay(full(|_| {}), token, |trial: &Trial| {
            let c = TracedU64::new(0);
            trial.run(&[
                &|| {
                    let v = c.load();
                    c.store(v + 1);
                },
                &|| {
                    let v = c.load();
                    c.store(v + 1);
                },
            ]);
            assert_eq!(
                c.load(),
                *recorded_outcome,
                "replay of {token} changed the outcome"
            );
        });
    }
}

/// A model-thread panic aborts cleanly, reports the schedule token, and
/// the token reproduces the panic on replay.
#[test]
fn panic_reports_token_and_replays() {
    let err = catch_unwind(AssertUnwindSafe(|| {
        explore(full(|_| {}), |trial: &Trial| {
            let c = TracedU64::new(0);
            trial.run(&[
                &|| {
                    let v = c.load();
                    c.store(v + 1);
                },
                &|| {
                    let v = c.load();
                    assert_ne!(v, 1, "observed the other thread's store");
                    c.store(v + 1);
                },
            ]);
        });
    }))
    .expect_err("some schedule must trip the assert");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    let token_str = msg
        .split("schedule token: ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no token in panic message: {msg}"));
    let token: Token = token_str.parse().unwrap();

    // Replaying the recorded prefix must hit the same assert again.
    let replay_err = catch_unwind(AssertUnwindSafe(|| {
        replay(full(|_| {}), &token, |trial: &Trial| {
            let c = TracedU64::new(0);
            trial.run(&[
                &|| {
                    let v = c.load();
                    c.store(v + 1);
                },
                &|| {
                    let v = c.load();
                    assert_ne!(v, 1, "observed the other thread's store");
                    c.store(v + 1);
                },
            ]);
        });
    }))
    .expect_err("replay must reproduce the panic");
    let replay_msg = replay_err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        replay_msg.contains("observed the other thread's store"),
        "replay failed differently: {replay_msg}"
    );
}

/// Three threads: the tree is bigger but still exact, and preemption
/// bounding scales it down without losing the serial outcomes.
#[test]
fn three_threads_bounded_exploration() {
    let mut outcomes = BTreeSet::new();
    let stats = explore(full(|c| c.preemptions = Some(1)), |trial: &Trial| {
        let c = TracedU64::new(0);
        trial.run(&[
            &|| {
                let v = c.load();
                c.store(v + 1);
            },
            &|| {
                let v = c.load();
                c.store(v + 1);
            },
            &|| {
                let v = c.load();
                c.store(v + 1);
            },
        ]);
        outcomes.insert(c.load());
    });
    assert!(stats.schedules > 3, "{stats}");
    assert!(stats.pruned_preempt > 0, "{stats}");
    // Serial result 3 must be present; with one preemption a single lost
    // update (2) is reachable too.
    assert!(outcomes.contains(&3), "{outcomes:?}");
    assert!(outcomes.contains(&2), "{outcomes:?}");
}

/// Single-threaded trials work and produce the trivial token.
#[test]
fn single_thread_trivial_tree() {
    let stats = explore(Config::default(), |trial: &Trial| {
        let c = TracedU64::new(7);
        trial.run(&[&|| {
            c.fetch_add(1);
        }]);
        assert_eq!(c.load(), 8);
        let token = trial.token();
        assert_eq!(token.threads, 1);
        assert!(token.choices.iter().all(|&t| t == 0));
    });
    assert_eq!(stats.schedules, 1, "{stats}");
}
