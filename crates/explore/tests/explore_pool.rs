//! Bounded schedule exploration over the node pool's magazine⇄depot
//! exchange.
//!
//! Like `explore_kv.rs`, this suite only exists under
//! `--cfg optik_explore`: the pool's `exchange_epoch` is a
//! `synchro::shim` word bumped around every magazine⇄depot exchange
//! (depot refill, bump-region refill, full-magazine surrender), so the
//! explorer can interleave depot traffic with concurrent retires and
//! grace-period advances at exactly that granularity. Build and run
//! with:
//!
//! ```text
//! RUSTFLAGS='--cfg optik_explore' cargo test -p optik-explore --test explore_pool
//! ```
//!
//! Two interleaving families over a deliberately tiny pool
//! (2-slot magazines, single-digit chunks, a private QSBR domain):
//!
//! 1. **Exchange vs retire/grace-advance** — on the *arena-backed* pool
//!    (it mounts through the same `exchange_epoch` shim word): both
//!    threads run alloc → retire → seal → quiesce → collect cycles, so
//!    recycled slots re-enter magazines *while* the other thread is
//!    exchanging with the sorted free store. The invariant is the pool's
//!    conservation ledger plus the arena's own books: after the run
//!    every slot is in exactly one place.
//! 2. **Depot refill vs chunk growth** — allocation-only: both threads
//!    drain the depot and race the bump region into growing chunks
//!    under the pool lock. The invariant is exclusivity: no slot is
//!    ever handed out twice.
//!
//! Each family is exhaustive within two preemptions
//! (`Stats::truncated` is asserted false); failures carry the schedule
//! token for `optik_explore::replay`.

#![cfg(optik_explore)]

use std::collections::BTreeSet;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use optik_explore::{explore, Config, Trial};
use reclaim::{NodePool, Qsbr};
use synchro::shim;

/// Completion barrier: every model thread parks here until all `n` have
/// arrived, so no trial OS thread *exits* while a peer still touches the
/// pool. Without it the pool's process-wide thread-index registry leaks
/// real-time nondeterminism into the model: an exited thread's index (and
/// the magazine filed under it) can be inherited by the peer's next pool
/// touch, turning a recorded slow alloc into a recycle hit depending on
/// TLS-destructor timing the cooperative scheduler cannot see. The spin
/// reads a shim word and `relax()`es, so the explorer parks the waiter
/// until the last arrival's `fetch_add` re-enables it — the tree stays
/// finite.
fn arrive_and_wait(done: &shim::AtomicU64, n: u64) {
    done.fetch_add(1, Ordering::AcqRel);
    while done.load(Ordering::Acquire) < n {
        synchro::relax();
    }
}

/// Exploration bounds. A churn cycle crosses only a handful of shim
/// accesses (one per depot exchange), so two preemptions exhaust the
/// tree quickly; the tests assert it was in fact exhausted.
fn pool_config() -> Config {
    Config {
        max_steps: 20_000,
        max_schedules: 400_000,
        preemptions: Some(2),
        sleep_sets: true,
    }
}

/// Alloc/retire cycles per model thread: enough that 2-slot magazines
/// overflow into the depot at least once per thread.
const CYCLES: u64 = 3;

/// One model thread's workload: churn slots through the full
/// recirculation path. Per cycle the retired slot is sealed
/// immediately and a quiescent point announced, so whenever the *other*
/// thread's quiescence lands in between, the slot finishes its grace
/// period mid-run and re-enters a magazine, racing later exchanges.
fn churn(pool: &Arc<NodePool<u64>>, domain: &Arc<Qsbr>, trial: &Trial) {
    let h = domain.register();
    for i in 0..CYCLES {
        let p = pool.alloc_init(|| i);
        // SAFETY: `p` came from this pool, was never published, and is
        // retired exactly once.
        unsafe { pool.retire(p, &h) };
        h.flush();
        h.quiescent();
        h.collect();
        // At most one slot per thread is ever between ledger states
        // (yield points sit before the exchange locks, so slot movement
        // is atomic between them).
        assert!(
            pool.stats().live() <= 2,
            "conservation ledger lost track mid-churn; replay with schedule token {}",
            trial.token()
        );
    }
}

/// Family 1: magazine⇄depot exchanges racing concurrent retires and
/// grace-period advances — on the **arena-backed** pool. The arena mounts
/// through the same `exchange_epoch` shim word as the boxed depot, so the
/// identical schedule tree now interleaves its sorted free store (and its
/// address-ordered run refills) with retires and grace advances; on top
/// of the shared slot ledger, every schedule must balance the arena's own
/// books ([`reclaim::ArenaStats::conservation`]).
#[test]
fn depot_exchange_races_retire_and_grace_advance() {
    let mut outcomes: BTreeSet<(u64, u64)> = BTreeSet::new();
    let stats = explore(pool_config(), |trial| {
        let pool: Arc<NodePool<u64>> = NodePool::arena_with_config(8, 2);
        let domain = Qsbr::new();
        let done = shim::AtomicU64::new(0);
        let worker = || {
            churn(&pool, &domain, trial);
            arrive_and_wait(&done, 2);
        };
        trial.run(&[&worker, &worker]);
        // Both handles have dropped: every retired slot either finished
        // its grace period in-run or was orphaned to the domain and
        // collected at the second handle's drop. The ledger must balance
        // exactly — a slot lost in an exchange shows up as a capacity
        // shortfall, a double-recirculated one as an excess.
        let s = pool.stats();
        let d = domain.stats();
        assert_eq!(
            d.retired,
            d.freed,
            "grace advance stranded garbage ({d:?}); replay with schedule token {}",
            trial.token()
        );
        assert_eq!(
            s.in_grace,
            0,
            "pool still counts slots in grace ({s:?}); replay with schedule token {}",
            trial.token()
        );
        assert_eq!(
            s.allocations,
            2 * CYCLES,
            "allocation count drifted ({s:?}); replay with schedule token {}",
            trial.token()
        );
        assert_eq!(
            s.cached + s.depot + s.unallocated,
            s.capacity,
            "slot conservation violated ({s:?}); replay with schedule token {}",
            trial.token()
        );
        let a = pool.arena_stats().expect("arena mode");
        for (label, x, y) in a.conservation() {
            assert_eq!(
                x,
                y,
                "arena ledger `{label}` broken ({a:?}); replay with schedule token {}",
                trial.token()
            );
        }
        outcomes.insert((s.recycle_hits, s.slow_allocs));
    });
    eprintln!("explore_pool::depot_exchange_races_retire_and_grace_advance: {stats}");
    assert!(!stats.truncated, "tree not exhausted: {stats}");
    assert!(stats.schedules > 1, "race not explored: {stats}");
    // The schedules must actually diverge: grace periods completing
    // mid-run (recycle hits) vs stalled by the peer (fresh slots only).
    assert!(
        outcomes.len() > 1,
        "every schedule recirculated identically: {outcomes:?}"
    );
    assert!(
        outcomes.iter().any(|&(hits, _)| hits > 0),
        "no schedule recycled a slot through a magazine: {outcomes:?}"
    );
}

/// Family 2: depot refills racing chunk growth under the pool lock.
#[test]
fn depot_refill_races_chunk_growth() {
    const GRABS: usize = 4;
    let stats = explore(pool_config(), |trial| {
        // Chunks of 4 with 2-slot magazines: both threads' refills
        // overrun the first chunk, racing growth of the bump region.
        let pool: Arc<NodePool<u64>> = NodePool::with_config(4, 2);
        let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let done = shim::AtomicU64::new(0);
        let grab = || {
            let mut got = Vec::with_capacity(GRABS);
            for i in 0..GRABS {
                got.push(pool.alloc_init(|| i as u64) as usize);
            }
            seen.lock().unwrap().extend(got);
            arrive_and_wait(&done, 2);
        };
        trial.run(&[&grab, &grab]);
        let mut ptrs = seen.lock().unwrap().clone();
        ptrs.sort_unstable();
        ptrs.dedup();
        assert_eq!(
            ptrs.len(),
            2 * GRABS,
            "a slot was handed out twice; replay with schedule token {}",
            trial.token()
        );
        let s = pool.stats();
        assert_eq!(
            s.recycle_hits,
            0,
            "nothing was retired, yet a slot recirculated ({s:?}); \
             replay with schedule token {}",
            trial.token()
        );
        // All 2*GRABS slots are live; the rest sit in magazines, the
        // depot, or the untouched bump region.
        assert_eq!(
            s.live(),
            2 * GRABS as u64,
            "slot conservation violated ({s:?}); replay with schedule token {}",
            trial.token()
        );
    });
    eprintln!("explore_pool::depot_refill_races_chunk_growth: {stats}");
    assert!(!stats.truncated, "tree not exhausted: {stats}");
    assert!(stats.schedules > 1, "race not explored: {stats}");
}
