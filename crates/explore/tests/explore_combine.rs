//! Bounded schedule exploration over the flat-combining publication
//! protocol (`synchro::combine::PubList`).
//!
//! Like `explore_kv.rs`, this suite only exists under
//! `--cfg optik_explore`: each publication slot's *state* word
//! (`EMPTY → PUBLISHED → DONE`) is a `synchro::shim` atomic, so every
//! hand-off in the protocol is a scheduler yield point and the explorer
//! can interleave the three writer roles at exactly that granularity.
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS='--cfg optik_explore' cargo test -p optik-explore --test explore_combine
//! ```
//!
//! The races under test are the ones the kv store's combining mount
//! lives on (`optik_kv::store::write_combining`):
//!
//! - **publish vs combine** — a writer flips its slot to PUBLISHED and
//!   links it while another writer, already holding the OPTIK lock,
//!   detaches and drains the chain;
//! - **timeout** — a publisher that never sees DONE competes for the
//!   lock itself and drains its own op (there is no cancel path, so
//!   this is the only way a publication resolves without a peer);
//! - **fast path vs stragglers** — a plain `try_lock_version` writer
//!   drains publications that piled up behind the lock before
//!   releasing it.
//!
//! Every family is exhaustive within two preemptions
//! (`Stats::truncated` asserted false) and asserts the conservation
//! ledger *per schedule*: each published op is applied exactly once —
//! by some combiner — and every publisher harvests the response
//! computed from its own op. Failures carry the schedule token for
//! `optik_explore::replay`.

#![cfg(optik_explore)]

use std::collections::BTreeSet;
use std::sync::atomic::Ordering;
use std::sync::Mutex;

use optik::{OptikLock, OptikVersioned};
use optik_explore::{explore, Config, Trial};
use synchro::{shim, PubList};

fn cfg() -> Config {
    Config {
        max_steps: 20_000,
        max_schedules: 400_000,
        preemptions: Some(2),
        sleep_sets: true,
    }
}

/// Completion barrier on a shim word (see `explore_pool.rs`): neither
/// trial OS thread exits while the other still touches the list, so the
/// probe thread-index registry — which keys the publication slots —
/// stays stable for the whole schedule.
fn arrive_and_wait(done: &shim::AtomicU64, n: u64) {
    done.fetch_add(1, Ordering::AcqRel);
    while done.load(Ordering::Acquire) < n {
        synchro::relax();
    }
}

/// Shared per-schedule ledger, written only from inside drain callbacks
/// (the combiner holds the OPTIK lock there) or behind its own mutex —
/// the mutex critical sections contain no shim accesses, so the
/// cooperative scheduler can never park a holder.
#[derive(Default)]
struct Ledger {
    /// Every op a combiner applied, in application order.
    applied: Mutex<Vec<u64>>,
    /// Batch size of every non-empty drain.
    batches: Mutex<Vec<u64>>,
}

/// The full contended-writer protocol, mirroring
/// `KvStore::publish_and_wait`: publish, then alternate between polling
/// for the response and competing for the combiner role. The "timeout"
/// of the publish-vs-combine-vs-timeout triangle is exactly this loop's
/// lock attempt — there is no abandonment path to race.
fn combined_write(
    list: &PubList<u64, u64>,
    lock: &OptikVersioned,
    ledger: &Ledger,
    op: u64,
) -> u64 {
    let idx = list.publish(op).expect("trial threads have registry slots");
    loop {
        if let Some(resp) = list.poll(idx) {
            return resp;
        }
        let v = lock.get_version();
        if !OptikVersioned::is_locked_version(v) && lock.try_lock_version(v) {
            drain_into(list, ledger);
            lock.unlock();
            return list
                .poll(idx)
                .expect("a completed drain answers every earlier publication");
        }
        synchro::relax();
    }
}

/// The combiner role over the model ledger; caller holds `lock`.
fn drain_into(list: &PubList<u64, u64>, ledger: &Ledger) {
    let n = list.drain(|_, op| {
        ledger.applied.lock().unwrap().push(op);
        op * 2
    });
    if n > 0 {
        ledger.batches.lock().unwrap().push(n);
    }
}

/// Family 1: both writers run the full publish → poll → try-combine
/// protocol, two ops each (so slots are reused within one schedule).
/// Exhausts at 2 preemptions; every schedule's ledger must balance and
/// the tree must contain both true combining (a batch of 2) and
/// self-service-only schedules.
#[test]
fn publish_combine_timeout_interleavings_are_exact() {
    const OPS_PER_THREAD: u64 = 2;
    let mut batch_shapes: BTreeSet<Vec<u64>> = BTreeSet::new();
    let stats = explore(cfg(), |trial: &Trial| {
        let list: PubList<u64, u64> = PubList::new();
        let lock = OptikVersioned::default();
        let ledger = Ledger::default();
        let done = shim::AtomicU64::new(0);
        let writer = |base: u64| {
            for i in 0..OPS_PER_THREAD {
                let op = base + i;
                let resp = combined_write(&list, &lock, &ledger, op);
                assert_eq!(
                    resp,
                    op * 2,
                    "publisher harvested someone else's response; \
                     replay with schedule token {}",
                    trial.token()
                );
            }
            arrive_and_wait(&done, 2);
        };
        trial.run(&[&|| writer(10), &|| writer(20)]);
        // Per-schedule conservation: every published op applied exactly
        // once, and the batches drained exactly the published ops.
        let mut applied = ledger.applied.lock().unwrap().clone();
        applied.sort_unstable();
        assert_eq!(
            applied,
            vec![10, 11, 20, 21],
            "an op was lost or double-applied; replay with schedule token {}",
            trial.token()
        );
        let batches = ledger.batches.lock().unwrap().clone();
        assert_eq!(
            batches.iter().sum::<u64>(),
            2 * OPS_PER_THREAD,
            "drain batches do not partition the publications \
             ({batches:?}); replay with schedule token {}",
            trial.token()
        );
        assert!(
            !list.pending(),
            "a publication was stranded; replay with schedule token {}",
            trial.token()
        );
        batch_shapes.insert(batches);
    });
    eprintln!("explore_combine::publish_combine_timeout_interleavings_are_exact: {stats}");
    assert!(!stats.truncated, "tree not exhausted: {stats}");
    assert!(stats.schedules > 1, "race not explored: {stats}");
    // The schedules must actually diverge: some drain a true batch
    // (one combiner answers its peer), others only ever self-serve.
    assert!(
        batch_shapes.iter().any(|b| b.contains(&2)),
        "no schedule combined a peer's op: {batch_shapes:?}"
    );
    assert!(
        batch_shapes.iter().any(|b| !b.contains(&2)),
        "every schedule combined; the self-serve path went unexplored: {batch_shapes:?}"
    );
}

/// Family 2: the uncontended fast path racing a publisher — a plain
/// `try_lock_version` writer (the store's adaptive fast path, including
/// its drain-the-stragglers step) against a full-protocol publisher.
/// In some schedules the fast writer drains the publication behind its
/// own op; in others the publisher self-serves after the fast writer
/// releases.
#[test]
fn fast_path_drains_stragglers() {
    let mut who_drained: BTreeSet<Vec<u64>> = BTreeSet::new();
    let stats = explore(cfg(), |trial: &Trial| {
        let list: PubList<u64, u64> = PubList::new();
        let lock = OptikVersioned::default();
        let ledger = Ledger::default();
        let done = shim::AtomicU64::new(0);
        let fast = || {
            // The store's fast path: one CAS attempt loop, then apply
            // and sweep stragglers before releasing (KvStore's
            // `apply_and_release`).
            loop {
                let v = lock.get_version();
                if !OptikVersioned::is_locked_version(v) && lock.try_lock_version(v) {
                    ledger.applied.lock().unwrap().push(1);
                    if list.pending() {
                        drain_into(&list, &ledger);
                    }
                    lock.unlock();
                    break;
                }
                synchro::relax();
            }
            arrive_and_wait(&done, 2);
        };
        let publisher = || {
            let resp = combined_write(&list, &lock, &ledger, 7);
            assert_eq!(
                resp,
                14,
                "publisher harvested a wrong response; replay with schedule token {}",
                trial.token()
            );
            arrive_and_wait(&done, 2);
        };
        trial.run(&[&fast, &publisher]);
        let mut applied = ledger.applied.lock().unwrap().clone();
        applied.sort_unstable();
        assert_eq!(
            applied,
            vec![1, 7],
            "an op was lost or double-applied; replay with schedule token {}",
            trial.token()
        );
        assert!(
            !list.pending(),
            "the straggler was stranded; replay with schedule token {}",
            trial.token()
        );
        who_drained.insert(ledger.batches.lock().unwrap().clone());
    });
    eprintln!("explore_combine::fast_path_drains_stragglers: {stats}");
    assert!(!stats.truncated, "tree not exhausted: {stats}");
    assert!(stats.schedules > 1, "race not explored: {stats}");
    // Divergence: at least one schedule resolves the publication via a
    // drain (either role), and at least one lets the publisher win the
    // lock before ever publishing into a held lock's shadow.
    assert!(
        who_drained.iter().any(|b| !b.is_empty()),
        "no schedule drained the publication: {who_drained:?}"
    );
}
