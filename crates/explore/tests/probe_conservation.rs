//! Probe-counter conservation under deterministic schedules.
//!
//! The stress tier can only say a probe counter "looks plausible"; the
//! explorer can do better. Under `--cfg optik_explore` every shim access
//! inside `OptikVersioned` is a scheduler yield point, so each enumerated
//! schedule fixes *exactly* which `try_lock_version` calls fail — ground
//! truth we recover from the calls' return values and compare, per
//! schedule, against the probe's `ValidationFail`/`LockAcquire` deltas.
//! A pinned replay of one contended schedule then proves the counters
//! are themselves deterministic. Build and run with:
//!
//! ```text
//! RUSTFLAGS='--cfg optik_explore' cargo test -p optik-explore \
//!     --features probe --test probe_conservation
//! ```

#![cfg(all(optik_explore, feature = "probe"))]

use optik::{OptikLock, OptikVersioned};
use optik_explore::{explore, replay, Config, Token, Trial};
use optik_probe::{Event, Snapshot};
use std::sync::atomic::{AtomicU64, Ordering};

fn cfg() -> Config {
    Config {
        max_steps: 10_000,
        max_schedules: 400_000,
        preemptions: Some(2),
        sleep_sets: true,
    }
}

/// Two threads race one validated acquisition each; returns
/// `(failures, acquisitions)` observed from the return values.
fn contended_pair(trial: &Trial) -> (u64, u64) {
    let lock = OptikVersioned::default();
    let fails = AtomicU64::new(0);
    let acqs = AtomicU64::new(0);
    let attempt = |bump_first: bool| {
        // One thread bumps the version before the other validates in
        // some schedules, forcing genuine validation failures into the
        // tree (not just CAS races).
        if bump_first {
            lock.lock();
            lock.unlock();
        }
        let v = lock.get_version();
        if lock.try_lock_version(v) {
            acqs.fetch_add(1, Ordering::Relaxed);
            lock.unlock();
        } else {
            fails.fetch_add(1, Ordering::Relaxed);
        }
    };
    trial.run(&[&|| attempt(true), &|| attempt(false)]);
    // The bump in `attempt(true)` is itself a blocking acquisition.
    (
        fails.load(Ordering::Relaxed),
        acqs.load(Ordering::Relaxed) + 1,
    )
}

/// Every enumerated schedule's probe delta must equal the ground truth
/// reconstructed from return values — no over- or under-counting on any
/// interleaving — and the ledger invariants must hold exactly.
#[test]
fn counters_match_ground_truth_on_every_schedule() {
    let mut contended: Option<(Token, u64, u64)> = None;
    let mut fail_counts = std::collections::BTreeSet::new();
    let stats = explore(cfg(), |trial: &Trial| {
        let before = Snapshot::take();
        let (fails, acqs) = contended_pair(trial);
        let d = Snapshot::take().delta_since(&before);

        assert_eq!(
            d.get(Event::ValidationFail),
            fails,
            "probe ValidationFail diverged from observed failures; \
             replay with schedule token {}",
            trial.token()
        );
        assert_eq!(
            d.get(Event::LockAcquire),
            acqs,
            "probe LockAcquire diverged from observed acquisitions; \
             replay with schedule token {}",
            trial.token()
        );
        for (label, a, b) in d.conservation() {
            assert_eq!(
                a,
                b,
                "ledger `{label}` broken in schedule {}",
                trial.token()
            );
        }

        fail_counts.insert(fails);
        if fails > 0 && contended.is_none() {
            contended = Some((trial.token(), fails, acqs));
        }
    });
    eprintln!("probe_conservation::counters_match_ground_truth: {stats}");
    assert!(!stats.truncated, "tree not exhausted: {stats}");
    // The tree must contain both clean runs and at least one genuine
    // validation failure, or the equality checks above proved nothing.
    assert!(
        fail_counts.contains(&0),
        "no uncontended schedule: {fail_counts:?}"
    );
    let (token, fails, acqs) = contended.expect("no schedule produced a validation failure");

    // Pin the first contended schedule: a byte-exact replay must
    // reproduce the exact same counter deltas.
    replay(cfg(), &token, |trial: &Trial| {
        let before = Snapshot::take();
        let (f, a) = contended_pair(trial);
        let d = Snapshot::take().delta_since(&before);
        assert_eq!(
            (f, a),
            (fails, acqs),
            "replay of {token} changed the outcome"
        );
        assert_eq!(d.get(Event::ValidationFail), fails, "replay of {token}");
        assert_eq!(d.get(Event::LockAcquire), acqs, "replay of {token}");
    });
}

/// The arena ledger under deterministic depot traffic: two threads churn
/// slots through an arena-backed pool (2-slot magazines, 8-slot slabs, a
/// private QSBR domain), and on *every* enumerated schedule the probe
/// deltas must balance the arena's own books exactly — every allocation
/// resolved as a magazine hit or a slow-path miss (never both, never
/// neither), every mapped slab and every address-ordered run refill
/// counted once, and the [`reclaim::ArenaStats::conservation`] identities
/// (freed == refilled + parked, free store == depot, capacity == slabs ×
/// chunk, every slot in exactly one place) holding at rest.
#[test]
fn arena_ledger_balances_on_every_schedule() {
    use reclaim::{NodePool, Qsbr};
    use std::sync::Arc;
    use synchro::shim;

    // Completion barrier, as in explore_pool.rs: no model thread may exit
    // while a peer still touches the pool (the process-wide thread-index
    // registry would otherwise leak TLS-destructor timing into the model).
    fn arrive_and_wait(done: &shim::AtomicU64, n: u64) {
        done.fetch_add(1, Ordering::AcqRel);
        while done.load(Ordering::Acquire) < n {
            synchro::relax();
        }
    }

    // Two-phase burst, sized so the serial schedule provably pushes a
    // whole magazine through the free store: with 2-slot magazines
    // (loaded + prev), BURST = 6 slots freed in one collect overflow
    // both magazines and surrender one run; DRAIN = 5 follow-up
    // allocations empty both magazines and pull that run back out
    // through an address-ordered refill.
    const BURST: u64 = 6;
    const DRAIN: u64 = 5;
    let mut refill_counts = std::collections::BTreeSet::new();
    let stats = explore(cfg(), |trial: &Trial| {
        let before = Snapshot::take();
        let pool: Arc<NodePool<u64>> = NodePool::arena_with_config(8, 2);
        let domain = Qsbr::new();
        let done = shim::AtomicU64::new(0);
        let worker = || {
            let h = domain.register();
            let mut held: Vec<*mut u64> = Vec::new();
            for phase in [BURST, DRAIN] {
                for i in 0..phase {
                    held.push(pool.alloc_init(|| i));
                }
                for p in held.drain(..) {
                    // SAFETY: `p` came from this pool, was never
                    // published, and is retired exactly once.
                    unsafe { pool.retire(p, &h) };
                }
                h.flush();
                h.quiescent();
                h.collect();
            }
            arrive_and_wait(&done, 2);
        };
        trial.run(&[&worker, &worker]);
        let d = Snapshot::take().delta_since(&before);
        let a = pool.arena_stats().expect("arena mode");
        assert_eq!(
            d.get(Event::MagazineHit) + d.get(Event::MagazineMiss),
            a.pool.allocations,
            "an allocation resolved twice or never; replay with schedule token {}",
            trial.token()
        );
        assert_eq!(
            d.get(Event::MagazineMiss),
            a.pool.slow_allocs,
            "probe MagazineMiss diverged from the pool's slow-alloc count; \
             replay with schedule token {}",
            trial.token()
        );
        assert_eq!(
            d.get(Event::ArenaSlabAlloc),
            a.slab_allocs,
            "probe ArenaSlabAlloc diverged from mapped slabs; \
             replay with schedule token {}",
            trial.token()
        );
        assert_eq!(
            d.get(Event::ArenaRunRefill),
            a.run_refills,
            "probe ArenaRunRefill diverged from free-store refills; \
             replay with schedule token {}",
            trial.token()
        );
        for (label, x, y) in a.conservation() {
            assert_eq!(
                x,
                y,
                "arena ledger `{label}` broken in schedule {}",
                trial.token()
            );
        }
        refill_counts.insert(a.run_refills);
    });
    eprintln!("probe_conservation::arena_ledger_balances: {stats}");
    assert!(!stats.truncated, "tree not exhausted: {stats}");
    // The equalities proved nothing unless some schedule actually pushed
    // a surrendered run back out through an address-ordered refill.
    assert!(
        refill_counts.iter().any(|&n| n > 0),
        "no schedule exercised an arena run refill: {refill_counts:?}"
    );
}

/// The flat-combining ledger over the real kv store: two eager writers
/// race on a single shard, and on *every* enumerated schedule the probe
/// deltas must balance the publication ledger exactly — each of the two
/// publications resolves either as a self-serve (the publisher drained
/// its own slot after winning the lock) or as a combine (a peer applied
/// it), never both, never neither. This is satellite ground truth for
/// the `combine_published == combine_ops_applied + combine_self_served`
/// conservation rule the stress tier can only spot-check.
#[test]
fn combine_ledger_balances_on_every_schedule() {
    use optik_hashtables::StripedOptikHashTable;
    use optik_kv::{CombineMode, KvStore};

    let mut applied_counts = std::collections::BTreeSet::new();
    let stats = explore(cfg(), |trial: &Trial| {
        let before = Snapshot::take();
        let store: KvStore<StripedOptikHashTable> =
            KvStore::with_shards(1, |_| StripedOptikHashTable::new(16, 2))
                .with_combine_mode(CombineMode::Eager);
        trial.run(&[
            &|| {
                store.put(1, 10);
            },
            &|| {
                store.put(2, 20);
            },
        ]);
        assert_eq!(
            (store.get(1), store.get(2)),
            (Some(10), Some(20)),
            "a combined write was lost; replay with schedule token {}",
            trial.token()
        );
        let d = Snapshot::take().delta_since(&before);
        assert_eq!(
            d.get(Event::CombinePublished),
            2,
            "eager mode publishes every write; replay with schedule token {}",
            trial.token()
        );
        assert_eq!(
            d.get(Event::CombineApplied) + d.get(Event::CombineSelfServe),
            2,
            "a publication resolved twice or never; replay with schedule token {}",
            trial.token()
        );
        for (label, a, b) in d.conservation() {
            assert_eq!(
                a,
                b,
                "ledger `{label}` broken in schedule {}",
                trial.token()
            );
        }
        applied_counts.insert(d.get(Event::CombineApplied));
    });
    eprintln!("probe_conservation::combine_ledger_balances: {stats}");
    assert!(!stats.truncated, "tree not exhausted: {stats}");
    // The equalities proved nothing unless the tree contains both a
    // schedule where each writer served itself and one where a combiner
    // actually applied its peer's op.
    assert!(
        applied_counts.contains(&0),
        "no self-serve-only schedule: {applied_counts:?}"
    );
    assert!(
        applied_counts.iter().any(|&n| n > 0),
        "no schedule truly combined: {applied_counts:?}"
    );
}
