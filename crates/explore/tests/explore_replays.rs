//! Pinned-schedule regression suite: recorded schedules re-run as plain
//! unit tests.
//!
//! [`optik_explore::replay`] turns a schedule token into a deterministic
//! re-execution, so any interleaving the explorer ever found interesting
//! can be pinned here and kept green forever — a failing schedule is a
//! unit test, not a flake. The model-program pins run in tier-1 (the
//! `traced` atomics always trap); the kv-level pin needs the shim yield
//! points and is gated on `--cfg optik_explore` like `explore_kv.rs`.
//!
//! Re-pinning: the static token below encodes the model's exact trap
//! sequence. If a deliberate scheduler or model change breaks it, run
//! the ignored `print_fresh_pin_candidates` generator and paste the new
//! token — the failure message of `replay` says which invariant moved.

use std::panic::{catch_unwind, AssertUnwindSafe};

use optik_explore::traced::{yield_now, TracedU64};
use optik_explore::{explore, replay, Config, Token, Trial};

/// The suite explores tiny fixed models: run them unpruned so recorded
/// tokens are stable against pruning-heuristic tuning.
fn cfg() -> Config {
    Config {
        sleep_sets: false,
        ..Config::default()
    }
}

/// The canonical 2-thread lost-update model: each thread is
/// Start, Load, Store on one shared counter.
fn run_counter(trial: &Trial) -> u64 {
    let c = TracedU64::new(0);
    trial.run(&[
        &|| {
            let v = c.load();
            c.store(v + 1);
        },
        &|| {
            let v = c.load();
            c.store(v + 1);
        },
    ]);
    c.load()
}

/// A schedule recorded in one exploration replays byte-exactly, twice,
/// with the same observable outcome — the end-to-end contract every
/// other pin in this file relies on.
#[test]
fn recorded_lost_update_replays_byte_exactly() {
    let mut pinned: Option<(Token, u64)> = None;
    explore(cfg(), |trial| {
        let out = run_counter(trial);
        if out == 1 && pinned.is_none() {
            pinned = Some((trial.token(), out));
        }
    });
    let (token, outcome) = pinned.expect("the unpruned tree contains a lost update");
    assert_eq!(outcome, 1);
    for _ in 0..2 {
        replay(cfg(), &token, |trial| {
            let out = run_counter(trial);
            assert_eq!(out, 1, "replay of {token} lost the lost update");
        });
    }
}

/// A statically pinned lost-update schedule: thread 1 runs its Start and
/// Load between thread 0's Load and Store, so both threads store 1. The
/// token (choices `001110`, fnv digest) was recorded by
/// `print_fresh_pin_candidates`; it breaking means the scheduler's
/// decision sequence, the token format, or the digest changed — all
/// replay-compatibility breaks that would orphan users' recorded tokens.
#[test]
fn static_pinned_token_still_replays() {
    let token: Token = "x1.2.001110.bf7405d4"
        .parse()
        .expect("pinned token must parse");
    replay(cfg(), &token, |trial| {
        let out = run_counter(trial);
        assert_eq!(out, 1, "pinned schedule no longer exhibits the lost update");
    });
}

/// Pin a schedule with a futile spin: the spinner parks at a Yield, the
/// writer's store re-enables it. Guards the yield re-enable rule and the
/// forced round-robin step for all-yield states.
#[test]
fn recorded_spin_handoff_replays() {
    let mut longest: Option<(Token, usize)> = None;
    explore(cfg(), |trial| {
        let flag = TracedU64::new(0);
        trial.run(&[
            &|| {
                while flag.load() == 0 {
                    yield_now();
                }
            },
            &|| flag.store(1),
        ]);
        let token = trial.token();
        let depth = token.choices.len();
        if longest.as_ref().map_or(true, |&(_, d)| depth > d) {
            longest = Some((token, depth));
        }
    });
    let (token, _) = longest.expect("spin model explored");
    // The deepest schedule contains at least one futile spin iteration.
    replay(cfg(), &token, |trial| {
        let flag = TracedU64::new(0);
        trial.run(&[
            &|| {
                while flag.load() == 0 {
                    yield_now();
                }
            },
            &|| flag.store(1),
        ]);
    });
}

/// Replaying against a model with a different thread count fails loudly
/// instead of silently exploring something else.
#[test]
fn replay_rejects_thread_count_mismatch() {
    let token: Token = "x1.2.001110.bf7405d4".parse().unwrap();
    let err = catch_unwind(AssertUnwindSafe(|| {
        replay(cfg(), &token, |trial| {
            let c = TracedU64::new(0);
            trial.run(&[&|| {
                c.fetch_add(1);
            }]);
        });
    }))
    .expect_err("mismatched thread count must fail");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("recorded over"),
        "unexpected replay error: {msg}"
    );
}

/// Replaying against a changed model (extra accesses) trips the
/// decision-count check — the schedule is not silently reinterpreted.
#[test]
fn replay_detects_model_drift() {
    let mut pinned: Option<Token> = None;
    explore(cfg(), |trial| {
        let _ = run_counter(trial);
        pinned.get_or_insert_with(|| trial.token());
    });
    let token = pinned.unwrap();
    let err = catch_unwind(AssertUnwindSafe(|| {
        replay(cfg(), &token, |trial| {
            let c = TracedU64::new(0);
            trial.run(&[
                &|| {
                    let v = c.load();
                    c.store(v + 1);
                },
                &|| {
                    let v = c.load();
                    c.store(v + 1);
                    c.fetch_add(1); // drift: one access the recording lacks
                },
            ]);
        });
    }))
    .expect_err("model drift must fail the replay");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("diverged") || msg.contains("byte-exactly"),
        "unexpected drift error: {msg}"
    );
}

/// Generator for the static pin above: prints every distinct token of
/// the counter model with its outcome. Run with
/// `cargo test -p optik-explore --test explore_replays -- --ignored --nocapture`
/// and paste a lost-update (outcome 1) token into
/// `static_pinned_token_still_replays`.
#[test]
#[ignore = "pin generator, run manually when re-pinning"]
fn print_fresh_pin_candidates() {
    explore(cfg(), |trial| {
        let out = run_counter(trial);
        println!("outcome={out} token={}", trial.token());
    });
}

/// The pool-level pin: a magazine⇄depot exchange schedule over the real
/// [`reclaim::NodePool`], recorded and replayed byte-exactly within the
/// run. Guards the exchange yield-point discipline (see
/// `explore_pool.rs`): the pinned schedule is one where a slot finishes
/// its grace period mid-run and recirculates through a magazine while
/// the peer thread is still churning.
#[cfg(optik_explore)]
#[test]
fn pool_exchange_schedule_replays() {
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    use reclaim::{NodePool, Qsbr};
    use synchro::shim;

    let pool_cfg = Config {
        max_steps: 20_000,
        max_schedules: 400_000,
        preemptions: Some(2),
        sleep_sets: true,
    };
    /// `(recycle hits, slow allocs, capacity)` after the schedule.
    type Outcome = (u64, u64, u64);
    let run = |trial: &Trial| -> Outcome {
        let pool: Arc<NodePool<u64>> = NodePool::with_config(8, 2);
        let domain = Qsbr::new();
        // Completion barrier on a shim word: neither trial OS thread may
        // exit while the other still churns, or the pool's thread-index
        // registry lets the survivor inherit the exited thread's magazine
        // — TLS-teardown timing the scheduler cannot replay (see
        // `explore_pool.rs`).
        let done = shim::AtomicU64::new(0);
        let churn = || {
            let h = domain.register();
            for i in 0..3u64 {
                let p = pool.alloc_init(|| i);
                // SAFETY: `p` came from this pool, was never published,
                // and is retired exactly once.
                unsafe { pool.retire(p, &h) };
                h.flush();
                h.quiescent();
                h.collect();
            }
            drop(h);
            done.fetch_add(1, Ordering::AcqRel);
            while done.load(Ordering::Acquire) < 2 {
                synchro::relax();
            }
        };
        trial.run(&[&churn, &churn]);
        let s = pool.stats();
        (s.recycle_hits, s.slow_allocs, s.capacity)
    };
    let mut pinned: Option<(Token, Outcome)> = None;
    explore(pool_cfg, |trial| {
        let out = run(trial);
        if out.0 > 0 && pinned.is_none() {
            pinned = Some((trial.token(), out));
        }
    });
    let (token, outcome) = pinned.expect("some schedule recycles through a magazine");
    for _ in 0..2 {
        replay(pool_cfg, &token, |trial| {
            let out = run(trial);
            assert_eq!(
                out, outcome,
                "pool replay of {token} changed the observable outcome"
            );
        });
    }
}

/// The arena pin: a schedule over the **arena-backed** pool in which a
/// surrendered run actually flows back out through an address-ordered
/// free-store refill, recorded and replayed byte-exactly within the run.
/// Guards the arena's reuse of the depot's `exchange_epoch` yield-point
/// discipline (see `explore_pool.rs` family 1): if the sorted free store
/// ever exchanges outside the shim word, this schedule stops being
/// reproducible.
#[cfg(optik_explore)]
#[test]
fn arena_refill_schedule_replays() {
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    use reclaim::{NodePool, Qsbr};
    use synchro::shim;

    let pool_cfg = Config {
        max_steps: 20_000,
        max_schedules: 400_000,
        preemptions: Some(2),
        sleep_sets: true,
    };
    /// `(run refills, slab allocs, recycle hits, capacity)` after the
    /// schedule.
    type Outcome = (u64, u64, u64, u64);
    let run = |trial: &Trial| -> Outcome {
        let pool: Arc<NodePool<u64>> = NodePool::arena_with_config(8, 2);
        let domain = Qsbr::new();
        // Completion barrier on a shim word (see
        // `pool_exchange_schedule_replays`).
        let done = shim::AtomicU64::new(0);
        // Two-phase burst (see `probe_conservation.rs`): 6 slots freed
        // in one collect overflow both 2-slot magazines and surrender a
        // run to the free store; 5 follow-up allocations drain the
        // magazines and pull it back out through an address-ordered
        // refill — so the serial schedule provably refills.
        let churn = || {
            let h = domain.register();
            let mut held: Vec<*mut u64> = Vec::new();
            for phase in [6u64, 5] {
                for i in 0..phase {
                    held.push(pool.alloc_init(|| i));
                }
                for p in held.drain(..) {
                    // SAFETY: `p` came from this pool, was never
                    // published, and is retired exactly once.
                    unsafe { pool.retire(p, &h) };
                }
                h.flush();
                h.quiescent();
                h.collect();
            }
            drop(h);
            done.fetch_add(1, Ordering::AcqRel);
            while done.load(Ordering::Acquire) < 2 {
                synchro::relax();
            }
        };
        trial.run(&[&churn, &churn]);
        let a = pool.arena_stats().expect("arena mode");
        (
            a.run_refills,
            a.slab_allocs,
            a.pool.recycle_hits,
            a.pool.capacity,
        )
    };
    let mut pinned: Option<(Token, Outcome)> = None;
    explore(pool_cfg, |trial| {
        let out = run(trial);
        if out.0 > 0 && pinned.is_none() {
            pinned = Some((trial.token(), out));
        }
    });
    let (token, outcome) = pinned.expect("some schedule refills from the arena free store");
    for _ in 0..2 {
        replay(pool_cfg, &token, |trial| {
            let out = run(trial);
            assert_eq!(
                out, outcome,
                "arena replay of {token} changed the observable outcome"
            );
        });
    }
}

/// The combining pin: a publication-list schedule over the real
/// [`synchro::PubList`] where one writer truly combines — drains its
/// peer's published op together with its own under a single lock hold —
/// recorded and replayed byte-exactly within the run. Guards the
/// publish → detach → drain hand-off discipline (see
/// `explore_combine.rs`): the DONE flip and the chain detach must stay
/// on shim words, or this schedule stops being reproducible.
#[cfg(optik_explore)]
#[test]
fn combine_batch_schedule_replays() {
    use std::sync::Mutex;

    use optik::{OptikLock, OptikVersioned};
    use synchro::PubList;

    let combine_cfg = Config {
        max_steps: 20_000,
        max_schedules: 400_000,
        preemptions: Some(2),
        sleep_sets: true,
    };
    /// `(sorted drain batch sizes, responses)` after the schedule.
    type Outcome = (Vec<u64>, Vec<u64>);
    let run = |trial: &Trial| -> Outcome {
        let list: PubList<u64, u64> = PubList::new();
        let lock = OptikVersioned::default();
        let batches = Mutex::new(Vec::new());
        let resps = Mutex::new(vec![0u64; 2]);
        let writer = |who: usize, op: u64| {
            let idx = list.publish(op).expect("trial threads have registry slots");
            let resp = loop {
                if let Some(r) = list.poll(idx) {
                    break r;
                }
                let v = lock.get_version();
                if !OptikVersioned::is_locked_version(v) && lock.try_lock_version(v) {
                    let n = list.drain(|_, o| o * 2);
                    if n > 0 {
                        batches.lock().unwrap().push(n);
                    }
                    lock.unlock();
                    break list
                        .poll(idx)
                        .expect("a completed drain answers every earlier publication");
                }
                synchro::relax();
            };
            resps.lock().unwrap()[who] = resp;
        };
        trial.run(&[&|| writer(0, 3), &|| writer(1, 5)]);
        let mut b = batches.lock().unwrap().clone();
        b.sort_unstable();
        let r = resps.lock().unwrap().clone();
        (b, r)
    };
    let mut pinned: Option<(Token, Outcome)> = None;
    explore(combine_cfg, |trial| {
        let out = run(trial);
        if out.0.contains(&2) && pinned.is_none() {
            pinned = Some((trial.token(), out));
        }
    });
    let (token, outcome) = pinned.expect("some schedule drains a true batch of two");
    assert_eq!(outcome.1, vec![6, 10], "responses must match the ops");
    for _ in 0..2 {
        replay(combine_cfg, &token, |trial| {
            let out = run(trial);
            assert_eq!(
                out, outcome,
                "combine replay of {token} changed the observable outcome"
            );
        });
    }
}

/// The kv-level pin: a TTL expiry-vs-put schedule over the real store,
/// recorded and replayed byte-exactly within the run. Guards the clock
/// sampling discipline in `optik_kv` (see `explore_kv.rs` family 1 and
/// DESIGN.md "Schedule exploration"): the pinned schedule is one where
/// the put linearizes *after* the expiry (sees no previous value) — the
/// shape that exposed the pre-lock clock-sample bug.
#[cfg(optik_explore)]
#[test]
fn kv_ttl_expiry_schedule_replays() {
    use std::sync::Arc;

    use optik_hashtables::StripedOptikHashTable;
    use optik_kv::{FakeClock, KvStore};

    let kv_cfg = Config {
        max_steps: 20_000,
        max_schedules: 400_000,
        preemptions: Some(1),
        sleep_sets: true,
    };
    /// `(reader's get, writer's put prev)` after the schedule.
    type Outcome = (Option<u64>, Option<u64>);
    let run = |trial: &Trial| -> Outcome {
        let clock = Arc::new(FakeClock::new());
        let store: KvStore<StripedOptikHashTable> =
            KvStore::with_shards_ttl(1, clock.clone(), |_| StripedOptikHashTable::new(16, 2));
        store.put_with_ttl(7, 1, 5);
        let got = std::sync::Mutex::new((None, None));
        trial.run(&[
            &|| {
                clock.advance(5);
                got.lock().unwrap().0 = store.get(7);
            },
            &|| {
                got.lock().unwrap().1 = store.put(7, 2);
            },
        ]);
        let g = got.lock().unwrap();
        (g.0, g.1)
    };
    let mut pinned: Option<(Token, Outcome)> = None;
    explore(kv_cfg, |trial| {
        let out = run(trial);
        if out.1.is_none() && pinned.is_none() {
            pinned = Some((trial.token(), out));
        }
    });
    let (token, outcome) = pinned.expect("some schedule expires before the put");
    for _ in 0..2 {
        replay(kv_cfg, &token, |trial| {
            let out = run(trial);
            assert_eq!(
                out, outcome,
                "kv replay of {token} changed the observable outcome"
            );
        });
    }
}
