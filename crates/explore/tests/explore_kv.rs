//! Bounded schedule exploration over the real kv store's OPTIK
//! validation points.
//!
//! These suites only exist under `--cfg optik_explore`: that cfg turns
//! the `synchro::shim` atomics inside the shard version locks, routing
//! bounds, TTL clock, and sweep cursor into scheduler yield points, so
//! the explorer can enumerate every bounded interleaving of two store
//! operations racing through them. Build and run with:
//!
//! ```text
//! RUSTFLAGS='--cfg optik_explore' cargo test -p optik-explore --test explore_kv
//! ```
//!
//! Three interleaving families, one per dynamic behaviour the stress
//! tier can only sample:
//!
//! 1. **TTL expiry vs put** — a `FakeClock` advance racing reads and
//!    writes of a deadline-armed key ([`TtlMapSpec`]).
//! 2. **`shift_boundary` flip vs get/put** — a routing-table flip with
//!    live migration racing point ops on the migrating key
//!    ([`MapSpec`]).
//! 3. **`range_scan` vs rebalance** — a cross-shard window scan racing
//!    a boundary migration plus a write ([`RangeMapSpec`]).
//!
//! Every enumerated schedule replays the ops against the sequential
//! spec with the Wing–Gong checker; a failure message always carries
//! the schedule token, which `optik_explore::replay` re-runs
//! byte-exactly.
//!
//! Preemption bounds keep the trees tractable: a kv operation crosses
//! ~5–30 shim accesses, so the unbounded tree is astronomically large,
//! but (per the CHESS observation) almost all real concurrency bugs
//! need only a couple of preemptions. Within the stated bound the
//! enumeration is exhaustive — `Stats::truncated` is asserted false.

#![cfg(optik_explore)]

use std::collections::BTreeSet;
use std::sync::Arc;

use optik_explore::{explore, Config, Hist, Trial};
use optik_harness::linearize::{
    check, MapOp, MapSpec, RangeMapSpec, RangeOp, SeqSpec, Timed, TtlMapSpec, TtlOp,
};
use optik_hashtables::StripedOptikHashTable;
use optik_kv::{FakeClock, KvStore};
use optik_skiplists::OptikSkipList2;

/// Exploration bounds shared by the kv families. Two preemptions is the
/// classic CHESS sweet spot; the per-family tests assert the tree was
/// exhausted within it.
fn kv_config(preemptions: u32) -> Config {
    Config {
        max_steps: 20_000,
        max_schedules: 400_000,
        preemptions: Some(preemptions),
        sleep_sets: true,
    }
}

/// Converts a drained [`Hist`] into the checker's [`Timed`] ops.
fn timed<O>(hist: &Hist<O>) -> Vec<Timed<O>>
where
    O: Copy,
{
    hist.take_sorted()
        .into_iter()
        .map(|(invoke, response, op)| Timed {
            invoke,
            response,
            op,
        })
        .collect()
}

/// Checks one schedule's history, failing with the replay token.
fn assert_linearizable<S>(spec: &S, hist: &Hist<S::Op>, trial: &Trial, family: &str)
where
    S: SeqSpec,
    S::Op: std::fmt::Debug,
{
    let h = timed(hist);
    assert!(
        check(spec, &h),
        "{family}: non-linearizable history {h:?}; replay with schedule token {}",
        trial.token()
    );
}

// ---------------------------------------------------------------------------
// Family 1: TTL expiry vs put (FakeClock advance as a history event).
// ---------------------------------------------------------------------------

const TTL_KEY: u64 = 7;

fn ttl_store(clock: &Arc<FakeClock>) -> KvStore<StripedOptikHashTable> {
    // One shard: the race under test is *within* a shard (value,
    // deadline, clock), not across the routing table.
    KvStore::with_shards_ttl(1, clock.clone(), |_| StripedOptikHashTable::new(16, 2))
}

#[test]
fn ttl_expiry_races_put_and_get() {
    let mut outcomes: BTreeSet<(Option<u64>, Option<u64>)> = BTreeSet::new();
    let stats = explore(kv_config(2), |trial| {
        let clock = Arc::new(FakeClock::new());
        let store = ttl_store(&clock);
        let hist: Hist<TtlOp> = Hist::new();
        // Setup runs unscheduled (no hook on this thread): arm the key
        // with deadline 5. `TtlMapSpec::initial` cannot carry a
        // deadline, so the arming put is recorded as a history event
        // that provably linearizes first (its window [0,0] precedes
        // every in-run op, whose timestamps are >= 1).
        store.put_with_ttl(TTL_KEY, 1, 5);
        hist.push(0, 0, TtlOp::PutTtl(1, 5, None));
        trial.run(&[
            &|| {
                // Advance the clock exactly to the deadline (deadline
                // <= now means expired), then read.
                let i = trial.now();
                let t = clock.advance(5);
                hist.push(i, trial.now(), TtlOp::Advance(t));
                let i = trial.now();
                let got = store.get(TTL_KEY);
                hist.push(i, trial.now(), TtlOp::Get(got));
            },
            &|| {
                // An untimed overwrite racing the expiry: depending on
                // where it linearizes it sees Some(1) or None.
                let i = trial.now();
                let prev = store.put(TTL_KEY, 2);
                hist.push(i, trial.now(), TtlOp::Put(2, prev));
            },
        ]);
        let h = timed(&hist);
        // Record the (get, put-prev) pair to prove both sides of the
        // race are enumerated.
        let got = h.iter().find_map(|t| match t.op {
            TtlOp::Get(g) => Some(g),
            _ => None,
        });
        let prev = h.iter().find_map(|t| match t.op {
            TtlOp::Put(_, p) => Some(p),
            _ => None,
        });
        outcomes.insert((got.unwrap(), prev.unwrap()));
        assert!(
            check(&TtlMapSpec { initial: None }, &h),
            "ttl expiry-vs-put: non-linearizable history {h:?}; replay with schedule token {}",
            trial.token()
        );
    });
    eprintln!("explore_kv::ttl_expiry_races_put_and_get: {stats}");
    assert!(!stats.truncated, "tree not exhausted: {stats}");
    // The put must land on both sides of the expiry across schedules:
    // before it (sees the armed value) and after it (fresh insert).
    assert!(
        outcomes.iter().any(|&(_, prev)| prev == Some(1)),
        "no schedule put before expiry: {outcomes:?}"
    );
    assert!(
        outcomes.iter().any(|&(_, prev)| prev.is_none()),
        "no schedule expired before the put: {outcomes:?}"
    );
    // And the get must observe the overwrite in at least one schedule.
    assert!(
        outcomes.iter().any(|&(got, _)| got == Some(2)),
        "no schedule saw the racing put: {outcomes:?}"
    );
}

#[test]
fn ttl_expire_after_races_get() {
    let mut gets: BTreeSet<(Option<u64>, Option<u64>)> = BTreeSet::new();
    let stats = explore(kv_config(2), |trial| {
        let clock = Arc::new(FakeClock::new());
        let store = ttl_store(&clock);
        let hist: Hist<TtlOp> = Hist::new();
        // A plain (never-expiring) binding this time: `expire_after`
        // arms the deadline mid-run.
        store.put(TTL_KEY, 1);
        hist.push(0, 0, TtlOp::Put(1, None));
        trial.run(&[
            &|| {
                let i = trial.now();
                let found = store.expire_after(TTL_KEY, 3);
                hist.push(i, trial.now(), TtlOp::ExpireAfter(3, found));
                let i = trial.now();
                let t = clock.advance(3);
                hist.push(i, trial.now(), TtlOp::Advance(t));
            },
            &|| {
                let i = trial.now();
                let a = store.get(TTL_KEY);
                hist.push(i, trial.now(), TtlOp::Get(a));
                let i = trial.now();
                let b = store.get(TTL_KEY);
                hist.push(i, trial.now(), TtlOp::Get(b));
            },
        ]);
        let h = timed(&hist);
        // Both gets come from one thread, so sorted-by-invoke order is
        // their program order.
        let g: Vec<Option<u64>> = h
            .iter()
            .filter_map(|t| match t.op {
                TtlOp::Get(v) => Some(v),
                _ => None,
            })
            .collect();
        gets.insert((g[0], g[1]));
        assert!(
            check(&TtlMapSpec { initial: None }, &h),
            "ttl expire_after-vs-get: non-linearizable history {h:?}; replay with schedule token {}",
            trial.token()
        );
    });
    eprintln!("explore_kv::ttl_expire_after_races_get: {stats}");
    assert!(!stats.truncated, "tree not exhausted: {stats}");
    // Both reads before expiry, and at least the second read after it,
    // must each occur in some schedule.
    assert!(gets.contains(&(Some(1), Some(1))), "gets seen: {gets:?}");
    assert!(
        gets.iter().any(|&(_, b)| b.is_none()),
        "no schedule observed the expiry: {gets:?}"
    );
}

#[test]
fn ttl_sweep_races_put() {
    let stats = explore(kv_config(2), |trial| {
        let clock = Arc::new(FakeClock::new());
        let store = ttl_store(&clock);
        let hist: Hist<TtlOp> = Hist::new();
        store.put_with_ttl(TTL_KEY, 1, 2);
        hist.push(0, 0, TtlOp::PutTtl(1, 2, None));
        trial.run(&[
            &|| {
                let i = trial.now();
                let t = clock.advance(2);
                hist.push(i, trial.now(), TtlOp::Advance(t));
                // The physical reclaim: logically a no-op (expiry
                // already happened at the advance), so it is not a
                // history event — but its collect-then-reverify window
                // races the put below at full schedule granularity.
                store.sweep_expired(4);
                let i = trial.now();
                let got = store.get(TTL_KEY);
                hist.push(i, trial.now(), TtlOp::Get(got));
            },
            &|| {
                let i = trial.now();
                let prev = store.put_with_ttl(TTL_KEY, 2, 10);
                hist.push(i, trial.now(), TtlOp::PutTtl(2, 10, prev));
            },
        ]);
        assert_linearizable(
            &TtlMapSpec { initial: None },
            &hist,
            trial,
            "ttl sweep-vs-put",
        );
    });
    eprintln!("explore_kv::ttl_sweep_races_put: {stats}");
    assert!(!stats.truncated, "tree not exhausted: {stats}");
    assert!(stats.schedules > 1, "race not explored: {stats}");
}

// ---------------------------------------------------------------------------
// Family 2: shift_boundary flip vs point ops on the migrating key.
// ---------------------------------------------------------------------------

/// Key space 0..=100 over two shards: bounds start at [50, MAX], so key
/// 60 lives in shard 1 and migrates to shard 0 when the boundary shifts
/// to 80.
const FLIP_KEY: u64 = 60;

#[test]
fn boundary_flip_races_get_and_put() {
    let mut outcomes: BTreeSet<(Option<u64>, Option<u64>)> = BTreeSet::new();
    let stats = explore(kv_config(2), |trial| {
        let store: KvStore<OptikSkipList2> =
            KvStore::with_ordered_shards(2, 100, |_| OptikSkipList2::new());
        let hist: Hist<MapOp> = Hist::new();
        store.put(FLIP_KEY, 1);
        trial.run(&[
            &|| {
                // Routing is logically invisible: the flip (and the
                // migration it drives) is not a history event. Every
                // get/put racing it must still read/write the one true
                // binding of FLIP_KEY.
                store.shift_boundary(0, 80).expect("legal shift");
            },
            &|| {
                let i = trial.now();
                let got = store.get(FLIP_KEY);
                hist.push(i, trial.now(), MapOp::Get(got));
                let i = trial.now();
                let prev = store.put(FLIP_KEY, 2);
                hist.push(i, trial.now(), MapOp::Put(2, prev));
            },
        ]);
        let h = timed(&hist);
        let got = h.iter().find_map(|t| match t.op {
            MapOp::Get(g) => Some(g),
            _ => None,
        });
        let prev = h.iter().find_map(|t| match t.op {
            MapOp::Put(_, p) => Some(p),
            _ => None,
        });
        outcomes.insert((got.unwrap(), prev.unwrap()));
        assert!(
            check(&MapSpec { initial: Some(1) }, &h),
            "flip-vs-get: non-linearizable history {h:?}; replay with schedule token {}",
            trial.token()
        );
        // The put may land on either side of the migration; after the
        // run the binding must be the put's value, reachable through
        // the *final* routing table.
        assert_eq!(
            store.get(FLIP_KEY),
            Some(2),
            "flip-vs-put lost the write; replay with schedule token {}",
            trial.token()
        );
    });
    eprintln!("explore_kv::boundary_flip_races_get_and_put: {stats}");
    assert!(!stats.truncated, "tree not exhausted: {stats}");
    // Reads and writes must stay coherent on both sides of the flip.
    assert_eq!(
        outcomes.iter().map(|&(g, _)| g).collect::<BTreeSet<_>>(),
        BTreeSet::from([Some(1)]),
        "a get raced the migration into a miss or torn value: {outcomes:?}"
    );
    assert_eq!(
        outcomes.iter().map(|&(_, p)| p).collect::<BTreeSet<_>>(),
        BTreeSet::from([Some(1)]),
        "a put raced the migration into losing the old binding: {outcomes:?}"
    );
}

// ---------------------------------------------------------------------------
// Family 3: range_scan vs rebalance migration plus a racing write.
// ---------------------------------------------------------------------------

/// Key space 0..=300 over three shards (bounds [100, 200, MAX]). The
/// tracked keys start one per shard; the shift to 160 migrates key 150
/// from shard 1 to shard 0 while the scan walks the window.
const RANGE_KEYS_TRACKED: [u64; 3] = [90, 150, 210];

#[test]
fn range_scan_races_rebalance_and_put() {
    let mut scans: BTreeSet<[Option<u64>; 3]> = BTreeSet::new();
    let stats = explore(kv_config(2), |trial| {
        let store: KvStore<OptikSkipList2> =
            KvStore::with_ordered_shards(3, 300, |_| OptikSkipList2::new());
        let hist: Hist<RangeOp> = Hist::new();
        store.put(RANGE_KEYS_TRACKED[0], 1);
        store.put(RANGE_KEYS_TRACKED[2], 3);
        trial.run(&[
            &|| {
                // Migrate key 150's span (shard 1 → shard 0), then bind
                // it: the write routes through whichever table version
                // it observes and must re-check under the shard lock.
                store.shift_boundary(0, 160).expect("legal shift");
                let i = trial.now();
                let prev = store.put(RANGE_KEYS_TRACKED[1], 22);
                hist.push(i, trial.now(), RangeOp::Put(1, 22, prev));
            },
            &|| {
                let i = trial.now();
                let scan = store.range_scan(0, 300);
                let seen = RANGE_KEYS_TRACKED
                    .map(|k| scan.iter().find(|&&(key, _)| key == k).map(|&(_, v)| v));
                hist.push(i, trial.now(), RangeOp::Range(seen));
            },
        ]);
        let h = timed(&hist);
        scans.extend(h.iter().filter_map(|t| match t.op {
            RangeOp::Range(seen) => Some(seen),
            _ => None,
        }));
        assert!(
            check(
                &RangeMapSpec {
                    initial: [Some(1), None, Some(3)],
                },
                &h
            ),
            "range-vs-rebalance: non-linearizable history {h:?}; replay with schedule token {}",
            trial.token()
        );
    });
    eprintln!("explore_kv::range_scan_races_rebalance_and_put: {stats}");
    assert!(!stats.truncated, "tree not exhausted: {stats}");
    // The scan must never tear: both snapshots are legal, a mixture
    // (e.g. seeing 22 but missing an untouched neighbour) is not —
    // that is what the spec check inside enforces. Here we just prove
    // both sides of the race actually happened.
    assert!(
        scans.contains(&[Some(1), None, Some(3)]),
        "no scan linearized before the put: {scans:?}"
    );
    assert!(
        scans.contains(&[Some(1), Some(22), Some(3)]),
        "no scan linearized after the put: {scans:?}"
    );
}
