//! Online range-partition rebalancing for ordered-sharded stores.
//!
//! An ordered-sharded store's load follows the key distribution, so a hot
//! key range concentrates on one partition. This module migrates
//! partition *boundaries* while the store serves traffic:
//!
//! - [`KvStore::shift_boundary`] is the primitive — move the boundary
//!   between two adjacent shards to a new key, migrating the entries that
//!   change ownership in bounded batches;
//! - [`KvStore::rebalance_round`] is the policy — read the per-shard op
//!   counters, and when one partition carries a disproportionate share,
//!   split it at its median key toward the lighter adjacent neighbor
//!   (the same primitive, driven the other way, merges a cold partition
//!   into its neighbor by walking its boundary across an empty or cold
//!   span).
//!
//! Each migration batch follows the store's own disciplines: the two
//! flanking shard locks are taken in **ascending order** (the sorted-
//! acquisition total order every batched operation uses, so rebalancing
//! cannot deadlock against batches or scans), the batch is **copied** to
//! the receiver, the routing table flips (one OPTIK version bump on the
//! partition table), and only then are the originals retired from the
//! donor. A lock-free get that raced the flip fails routing validation
//! and retries; one that routed before the flip finds the originals still
//! present. Between batches every lock is released, so writers starve for
//! at most one batch. Expiry deadlines (TTL stores) migrate with their
//! entries.
//!
//! Fixed-capacity backends (the array maps) are a poor fit for
//! rebalancing — a migration concentrates keys into fewer shards and can
//! overflow a shard sized for its original span (backend `put` panics on
//! overflow, per the `ConcurrentMap` contract). Mount unbounded ordered
//! backends (skip lists, BSTs) under stores that rebalance.

use std::fmt;
use std::sync::atomic::Ordering;

use optik::OptikLock;

use optik_harness::api::{Key, OrderedMap, Val};

use crate::policy::RangePolicy;
use crate::store::{KvStore, Shard};

/// Keys migrated per lock acquisition: the granularity at which writers
/// blocked on a migrating shard make progress.
pub const MIGRATION_BATCH: usize = 64;

/// What one boundary migration did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Entries that changed shards.
    pub moved: u64,
    /// Lock acquisitions it took (≥ 1 batch per [`MIGRATION_BATCH`] keys).
    pub batches: u64,
}

/// Why a rebalance request was refused (no partial migration happens: the
/// boundary either reaches the requested key or is untouched).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceError {
    /// The store routes by hash; there is no partition table to move.
    NotRangeSharded,
    /// `boundary` does not name a movable boundary (the last partition's
    /// bound is pinned to `u64::MAX`).
    NoSuchBoundary {
        /// The offending boundary index.
        boundary: usize,
    },
    /// The requested bound would leave the partition table unsorted.
    BoundOutOfOrder {
        /// The requested bound.
        new_bound: Key,
        /// Smallest legal bound (the previous partition's bound).
        lower: Key,
        /// Largest legal bound (the next partition's bound).
        upper: Key,
    },
}

impl fmt::Display for RebalanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RebalanceError::NotRangeSharded => {
                write!(f, "store is hash-sharded: no partition table to move")
            }
            RebalanceError::NoSuchBoundary { boundary } => {
                write!(f, "boundary {boundary} does not exist or is pinned")
            }
            RebalanceError::BoundOutOfOrder {
                new_bound,
                lower,
                upper,
            } => write!(
                f,
                "bound {new_bound} outside the legal window [{lower}, {upper}]"
            ),
        }
    }
}

impl<B: OrderedMap> KvStore<B> {
    /// The current partition table (ascending inclusive upper bounds,
    /// last entry `u64::MAX`), or `None` for hash-sharded stores.
    pub fn partition_bounds(&self) -> Option<Vec<Key>> {
        self.range_policy().map(RangePolicy::snapshot_bounds)
    }

    /// Moves the boundary between shards `boundary` and `boundary + 1` to
    /// `new_bound` (the new inclusive upper key of shard `boundary`),
    /// migrating every entry that changes ownership in
    /// [`MIGRATION_BATCH`]-key batches. Concurrent gets, puts, batches,
    /// and range scans stay linearizable throughout — they validate the
    /// routing version (reads) or re-check the route under the shard lock
    /// (writes) and retry across the flip.
    ///
    /// Returns how much was migrated. Lowering the bound donates the
    /// upper span of shard `boundary` rightward; raising it pulls the
    /// lower span of shard `boundary + 1` leftward; either end may leave
    /// a partition empty-span (a legal state — splitting it back later is
    /// just another shift).
    pub fn shift_boundary(
        &self,
        boundary: usize,
        new_bound: Key,
    ) -> Result<MigrationStats, RebalanceError> {
        let rp = self.range_policy().ok_or(RebalanceError::NotRangeSharded)?;
        if boundary + 1 >= self.shards.len() {
            return Err(RebalanceError::NoSuchBoundary { boundary });
        }
        let mut stats = MigrationStats::default();
        loop {
            let (a, b) = (boundary, boundary + 1);
            // Span covers the locked batch: acquisition through the copy,
            // flip, and retire in `migrate` (which releases the locks).
            let _span = optik_probe::trace::span(optik_probe::trace::SpanKind::Migration);
            // Ascending acquisition: the store-wide batch total order.
            self.shards[a].lock.lock();
            self.shards[b].lock.lock();
            stats.batches += 1;
            optik_probe::count(optik_probe::Event::MigrationBatch);
            // Flanking bounds are stable while we hold these two locks
            // (moving either needs one of them).
            let cur = rp.bound(a);
            let lower = if a == 0 { 0 } else { rp.bound(a - 1) };
            let upper = rp.bound(b);
            if new_bound < lower || new_bound > upper {
                self.shards[b].lock.revert();
                self.shards[a].lock.revert();
                return Err(RebalanceError::BoundOutOfOrder {
                    new_bound,
                    lower,
                    upper,
                });
            }
            let done = match new_bound.cmp(&cur) {
                std::cmp::Ordering::Equal => {
                    self.shards[b].lock.revert();
                    self.shards[a].lock.revert();
                    true
                }
                std::cmp::Ordering::Less => {
                    // Shrink shard a: keys in (new_bound, cur] move a → b,
                    // top-down so every intermediate bound keeps unmoved
                    // keys on shard a's side of the table.
                    self.migrate(
                        rp,
                        a,
                        b,
                        a,
                        new_bound.saturating_add(1),
                        cur,
                        new_bound,
                        &mut stats,
                    )
                }
                std::cmp::Ordering::Greater => {
                    // Grow shard a: keys in (cur, new_bound] move b → a,
                    // bottom-up for the symmetric reason.
                    self.migrate(
                        rp,
                        a,
                        b,
                        b,
                        cur.saturating_add(1),
                        new_bound,
                        new_bound,
                        &mut stats,
                    )
                }
            };
            if done {
                return Ok(stats);
            }
            // Locks were released by `migrate`; writers drain before the
            // next batch.
        }
    }

    /// One locked migration batch between the locked shards `a` < `b`:
    /// moves up to [`MIGRATION_BATCH`] entries of `[span_lo, span_hi]`
    /// out of `donor` (the edge nearest `target` last), flips
    /// `bounds[a]` to an intermediate bound that exactly covers the moved
    /// prefix, and retires the originals. Returns whether the boundary
    /// reached `target`. Unlocks both shards either way.
    #[allow(clippy::too_many_arguments)] // one tight internal step, named at the two call sites
    fn migrate(
        &self,
        rp: &RangePolicy,
        a: usize,
        b: usize,
        donor: usize,
        span_lo: Key,
        span_hi: Key,
        target: Key,
        stats: &mut MigrationStats,
    ) -> bool {
        let donor_shard: &Shard<B> = &self.shards[donor];
        let recv_shard: &Shard<B> = &self.shards[a + b - donor];
        let mut span: Vec<(Key, Val)> = Vec::new();
        // Exact under the shard lock: writers are excluded.
        donor_shard
            .map
            .range(span_lo, span_hi, &mut |k, v| span.push((k, v)));
        if span.is_empty() {
            rp.shift(a, target);
            // The maps did not change; only the routing version bumps.
            self.shards[b].lock.revert();
            self.shards[a].lock.revert();
            return true;
        }
        let take = span.len().min(MIGRATION_BATCH);
        let shrinking = donor == a;
        let (batch, next) = if shrinking {
            // Donate the top of the span; the intermediate bound sits just
            // below the smallest moved key.
            let batch = &span[span.len() - take..];
            let next = if take == span.len() {
                target
            } else {
                batch[0].0 - 1
            };
            (batch, next)
        } else {
            // Pull the bottom of the span; the intermediate bound is the
            // largest moved key.
            let batch = &span[..take];
            let next = if take == span.len() {
                target
            } else {
                batch[take - 1].0
            };
            (batch, next)
        };
        // Copy first (values, then any TTL deadlines)…
        for &(k, v) in batch {
            recv_shard.map.put(k, v);
            if let (Some(dd), Some(rd)) = (&donor_shard.deadlines, &recv_shard.deadlines) {
                if let Some(d) = dd.get(k) {
                    rd.put(k, d);
                }
            }
        }
        // …flip the routing (one version bump: optimistic readers that
        // routed before the flip re-validate and retry)…
        rp.shift(a, next);
        // …then retire the originals from the donor.
        for &(k, _) in batch {
            donor_shard.map.remove(k);
            if let Some(dd) = &donor_shard.deadlines {
                dd.remove(k);
            }
        }
        stats.moved += take as u64;
        optik_probe::count_n(optik_probe::Event::MigrationMoved, take as u64);
        self.shards[b].lock.unlock();
        self.shards[a].lock.unlock();
        next == target
    }

    /// One load-driven rebalance pass: when the hottest partition (per
    /// the relaxed per-shard op counters) carries at least twice the mean
    /// load, split it at its median resident key toward the lighter
    /// adjacent neighbor — cold partitions symmetrically absorb the walk.
    /// Counters reset after a migration so the next round measures fresh
    /// traffic. Returns `None` when the store is hash-sharded, balanced,
    /// or the hot partition is too small to split.
    pub fn rebalance_round(&self) -> Option<MigrationStats> {
        let rp = self.range_policy()?;
        let n = self.shards.len();
        if n < 2 {
            return None;
        }
        let loads = self.shard_loads();
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return None;
        }
        let (hot, &hot_load) = loads.iter().enumerate().max_by_key(|&(_, &l)| l)?;
        let mean = (total / n as u64).max(1);
        if hot_load < 2 * mean {
            return None;
        }
        let _span = optik_probe::trace::span(optik_probe::trace::SpanKind::RebalanceRound);
        let to_left = match (
            hot.checked_sub(1).map(|i| loads[i]),
            (hot + 1 < n).then(|| loads[hot + 1]),
        ) {
            (Some(l), Some(r)) => l <= r,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!("n >= 2"),
        };
        // Median resident key of the hot partition (validated window).
        let lo = if hot == 0 {
            1
        } else {
            rp.bound(hot - 1).saturating_add(1)
        };
        let hi = rp.bound(hot);
        if lo > hi {
            return None; // empty-span partition: nothing to split
        }
        let win = self.range_scan(lo, hi);
        if win.len() < 2 {
            return None;
        }
        let median = win[win.len() / 2].0;
        let stats = if to_left {
            // Entries below the median migrate into the left neighbor.
            self.shift_boundary(hot - 1, median - 1).ok()?
        } else {
            // Entries from the median up migrate into the right neighbor.
            self.shift_boundary(hot, median - 1).ok()?
        };
        // Relaxed is sound: the counters are advisory load samples (see
        // `Shard::ops`). Increments racing this reset are lost, which only
        // under-reports the next round's traffic — the heuristic
        // re-accumulates; no correctness invariant reads these values.
        for s in self.shards.iter() {
            s.ops.store(0, Ordering::Relaxed);
        }
        Some(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optik_harness::api::ConcurrentMap;
    use optik_skiplists::OptikSkipList2;

    fn ordered_store(shards: usize, max_key: u64) -> KvStore<OptikSkipList2> {
        KvStore::with_ordered_shards(shards, max_key, |_| OptikSkipList2::new())
    }

    #[test]
    fn shift_migrates_entries_both_ways() {
        let s = ordered_store(4, 400);
        for k in 1..=400u64 {
            s.put(k, k + 9);
        }
        assert_eq!(s.partition_bounds().unwrap(), vec![100, 200, 300, u64::MAX]);
        // Shrink shard 0 to [1, 40]: 60 keys migrate into shard 1.
        let stats = s.shift_boundary(0, 40).unwrap();
        assert_eq!(stats.moved, 60);
        assert_eq!(s.partition_bounds().unwrap()[0], 40);
        // Everything still routes and reads exactly.
        for k in 1..=400u64 {
            assert_eq!(s.get(k), Some(k + 9), "key {k} after shrink");
        }
        assert_eq!(s.len(), 400);
        // Grow it back past its old bound: 110 keys migrate left.
        let stats = s.shift_boundary(0, 150).unwrap();
        assert_eq!(stats.moved, 110);
        for k in 1..=400u64 {
            assert_eq!(s.get(k), Some(k + 9), "key {k} after grow");
        }
        let win = s.range_scan(1, 400);
        assert_eq!(win.len(), 400);
        assert!(win.windows(2).all(|w| w[0].0 < w[1].0), "no duplicates");
    }

    #[test]
    fn shift_batches_bound_the_per_lock_work() {
        let s = ordered_store(2, 1000);
        for k in 1..=500u64 {
            s.put(k, k);
        }
        // 500 keys over batches of MIGRATION_BATCH: at least 8 lock rounds.
        let stats = s.shift_boundary(0, 0).unwrap();
        assert_eq!(stats.moved, 500);
        assert!(
            stats.batches as usize >= 500 / MIGRATION_BATCH,
            "{} batches",
            stats.batches
        );
        // Shard 0 is now an empty-span partition; the store still serves.
        assert_eq!(s.partition_bounds().unwrap(), vec![0, u64::MAX]);
        assert_eq!(s.len(), 500);
        assert_eq!(s.range_scan(1, 1000).len(), 500);
        assert_eq!(s.get(250), Some(250));
    }

    #[test]
    fn shift_rejects_illegal_requests() {
        let s = ordered_store(4, 400);
        assert_eq!(
            s.shift_boundary(3, 50),
            Err(RebalanceError::NoSuchBoundary { boundary: 3 }),
            "the last bound is pinned"
        );
        assert_eq!(
            s.shift_boundary(1, 50),
            Err(RebalanceError::BoundOutOfOrder {
                new_bound: 50,
                lower: 100,
                upper: 300
            }),
            "bounds must stay sorted"
        );
        let hash = KvStore::with_shards(4, |_| OptikSkipList2::new());
        assert_eq!(
            hash.shift_boundary(0, 10),
            Err(RebalanceError::NotRangeSharded)
        );
        assert!(hash.partition_bounds().is_none());
    }

    #[test]
    fn rebalance_round_splits_the_hot_partition() {
        let s = ordered_store(4, 400);
        for k in 1..=400u64 {
            s.put(k, k);
        }
        // Hammer shard 0 (keys 1..=100) so its counter dwarfs the rest.
        for _ in 0..50 {
            for k in 1..=100u64 {
                s.get(k);
            }
        }
        assert!(
            s.shard_loads()[0] > 0,
            "dynamic stores maintain load counters"
        );
        let stats = s.rebalance_round().expect("imbalance must trigger a split");
        assert!(stats.moved > 0);
        let bounds = s.partition_bounds().unwrap();
        assert!(
            bounds[0] < 100,
            "hot partition shrank toward its median: {bounds:?}"
        );
        assert!(
            s.shard_loads().iter().all(|&l| l == 0),
            "counters reset after a round"
        );
        // Balanced traffic does not trigger another round.
        for k in 1..=400u64 {
            s.get(k);
        }
        assert_eq!(s.rebalance_round(), None, "balanced load must not split");
        for k in 1..=400u64 {
            assert_eq!(s.get(k), Some(k));
        }
    }

    #[test]
    fn empty_partitions_migrate_for_free() {
        let s = ordered_store(4, 400);
        // No entries at all: every shift is a pure routing flip.
        let stats = s.shift_boundary(1, 110).unwrap();
        assert_eq!(
            stats,
            MigrationStats {
                moved: 0,
                batches: 1
            }
        );
        assert!(s.range_scan(1, 400).is_empty());
        assert_eq!(ConcurrentMap::len(&s), 0);
    }
}
