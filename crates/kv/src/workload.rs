//! KV workload generation and the multi-threaded benchmark driver for the
//! `kv.*` registry scenarios.
//!
//! Follows the paper's §5 methodology (key range double the initial size,
//! optional zipfian skew with the largest keys most popular, per-iteration
//! quiescence) extended with the store-level operations the set
//! microbenchmark has no counterpart for: batched multi-key ops, snapshot
//! scans, TTL puts with incremental expiry sweeps, and load-driven
//! rebalance rounds.

use std::time::{Duration, Instant};

use optik_harness::api::{Key, OrderedMap, Val};
use optik_harness::latency::{LatencyRecorder, OpKind};
use optik_harness::rng::FastRng;
use optik_harness::runner::run_workers;
use optik_harness::zipf::Zipf;

use crate::{ConcurrentMap, KvStore};

/// Issued operation mix, in permille of issued operations.
///
/// The named permilles must not exceed 1000; the remainder goes to
/// single-key gets. Batched operations draw [`KvMix::batch`] keys per
/// call, and batched writes alternate between `multi_put` and an
/// equal-size `multi_remove` so — like the paper's equal insert/delete
/// rates — the store size stays near the initial fill. Range scans
/// ([`KvMix::range_pm`]) and rebalance rounds ([`KvMix::rebalance_pm`])
/// require an [`OrderedMap`] backend and the [`run_kv_workload_ordered`]
/// driver; TTL puts and sweeps ([`KvMix::ttl_put_pm`], [`KvMix::sweep_pm`])
/// require a store built with a clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct KvMix {
    /// Permille of single-key puts.
    pub put_pm: u32,
    /// Permille of single-key removes.
    pub remove_pm: u32,
    /// Permille of batched multi-gets.
    pub batch_get_pm: u32,
    /// Permille of batched writes (alternating multi-put / multi-remove).
    pub batch_write_pm: u32,
    /// Permille of full-store snapshot scans.
    pub scan_pm: u32,
    /// Keys per batched operation.
    pub batch: usize,
    /// Permille of bounded range scans (`range_scan`, ordered backends
    /// only).
    pub range_pm: u32,
    /// Window width of a range scan: `[lo, lo + range_span - 1]` with a
    /// sampled `lo`.
    pub range_span: u64,
    /// Permille of TTL puts (`put_with_ttl`, TTL-enabled stores only).
    pub ttl_put_pm: u32,
    /// Lifetime (clock ticks) of a TTL put.
    pub ttl_span: u64,
    /// Permille of incremental expiry sweeps (`sweep_expired`,
    /// TTL-enabled stores only).
    pub sweep_pm: u32,
    /// Candidate budget per sweep call.
    pub sweep_budget: usize,
    /// Permille of load-driven rebalance rounds (`rebalance_round`,
    /// ordered stores only; hash-sharded rounds are no-ops).
    pub rebalance_pm: u32,
    /// Route batched gets through [`KvStore::multi_get_per_key`] (the
    /// pre-grouping baseline) instead of the shard-grouped
    /// [`KvStore::multi_get`]. Only the `kv.multiget.*-perkey` A/B twin
    /// scenarios set this.
    pub per_key_multiget: bool,
}

impl KvMix {
    /// Sum of the named (non-get) permilles.
    fn named_pm(&self) -> u32 {
        self.put_pm
            .saturating_add(self.remove_pm)
            .saturating_add(self.batch_get_pm)
            .saturating_add(self.batch_write_pm)
            .saturating_add(self.scan_pm)
            .saturating_add(self.range_pm)
            .saturating_add(self.ttl_put_pm)
            .saturating_add(self.sweep_pm)
            .saturating_add(self.rebalance_pm)
    }

    /// Permille of single-key gets (the remainder). Saturating: a mix
    /// built by hand with more than 1000 named permille (the fields are
    /// public; only [`KvWorkload::new`] enforces the invariant) reports 0
    /// rather than underflowing.
    pub fn get_pm(&self) -> u32 {
        1000u32.saturating_sub(self.named_pm())
    }
}

/// A kv workload: initial size, key range, skew, and operation mix.
#[derive(Debug, Clone)]
pub struct KvWorkload {
    /// Target steady-state entry count; the store is pre-filled to this.
    pub initial_size: u64,
    /// Inclusive key range `[lo, hi]`, double the initial size as in §5.
    pub key_lo: Key,
    /// See [`KvWorkload::key_lo`].
    pub key_hi: Key,
    /// Zipfian sampler (`None` = uniform).
    pub zipf: Option<Zipf>,
    /// Operation mix.
    pub mix: KvMix,
}

impl KvWorkload {
    /// Builds a workload with the paper's key-range convention (`[1, 2 *
    /// initial_size]`).
    ///
    /// # Panics
    ///
    /// Panics if `initial_size` is zero, the mix permilles exceed 1000, or
    /// a batched/ranged/TTL/sweeping mix lacks its size knob.
    pub fn new(initial_size: u64, skewed: bool, mix: KvMix) -> Self {
        assert!(initial_size > 0, "initial size must be positive");
        assert!(mix.named_pm() <= 1000, "mix permilles exceed 1000");
        assert!(
            mix.batch > 0 || (mix.batch_get_pm == 0 && mix.batch_write_pm == 0),
            "batched mixes need a batch size"
        );
        assert!(
            mix.range_span > 0 || mix.range_pm == 0,
            "range mixes need a range span"
        );
        assert!(
            mix.ttl_span > 0 || mix.ttl_put_pm == 0,
            "TTL mixes need a ttl span"
        );
        assert!(
            mix.sweep_budget > 0 || mix.sweep_pm == 0,
            "sweeping mixes need a sweep budget"
        );
        let key_hi = 2 * initial_size;
        Self {
            initial_size,
            key_lo: 1,
            key_hi,
            zipf: skewed.then(|| Zipf::paper(key_hi as usize)),
            mix,
        }
    }

    /// [`KvWorkload::new`] with an explicit zipfian exponent: the
    /// hot-key scenarios sweep the skew (s = 0.99, 1.2) past the
    /// paper's 0.9 default to concentrate writes on a few shards.
    pub fn with_alpha(initial_size: u64, alpha: f64, mix: KvMix) -> Self {
        let mut w = Self::new(initial_size, false, mix);
        w.zipf = Some(Zipf::new(w.key_hi as usize, alpha));
        w
    }

    /// Draws a key from the configured distribution.
    #[inline]
    pub fn sample_key(&self, rng: &mut FastRng) -> Key {
        match &self.zipf {
            Some(z) => z.sample_key(rng, self.key_lo, self.key_hi),
            None => rng.range_inclusive(self.key_lo, self.key_hi),
        }
    }

    /// Pre-fills `store` to `initial_size` distinct uniform keys
    /// (`val = key`, as in the paper's microbenchmarks).
    pub fn initial_fill<B: ConcurrentMap>(&self, seed: u64, store: &KvStore<B>) {
        let mut rng = FastRng::new(seed ^ 0xF111_0F11);
        let mut inserted = 0;
        while inserted < self.initial_size {
            let k = rng.range_inclusive(self.key_lo, self.key_hi);
            if store.put(k, k).is_none() {
                inserted += 1;
            }
        }
    }
}

/// Operation counters for one kv run. Batched operations count one unit
/// per key touched; scans, sweeps, and rebalance rounds count one unit
/// per call (their cost scales with store size or migration volume, not
/// batch size — throughput comparisons should keep their permilles small
/// and equal across series).
#[derive(Debug, Clone, Copy, Default)]
pub struct KvCounts {
    /// Single gets that found their key.
    pub get_hit: u64,
    /// Single gets that missed.
    pub get_miss: u64,
    /// Puts that inserted a fresh key.
    pub put_fresh: u64,
    /// Puts that replaced an existing value.
    pub put_update: u64,
    /// Removes that removed.
    pub remove_suc: u64,
    /// Removes that missed.
    pub remove_fail: u64,
    /// Keys read through `multi_get`.
    pub batch_get_keys: u64,
    /// Keys written/removed through `multi_put`/`multi_remove`.
    pub batch_write_keys: u64,
    /// Snapshot scans completed.
    pub scans: u64,
    /// Entries observed by scans (not counted as ops).
    pub scanned_entries: u64,
    /// Bounded range scans completed.
    pub range_scans: u64,
    /// Entries returned by range scans (not counted as ops).
    pub ranged_entries: u64,
    /// TTL puts (`put_with_ttl`) issued.
    pub ttl_puts: u64,
    /// Expiry sweeps (`sweep_expired`) issued.
    pub sweeps: u64,
    /// Entries reclaimed by sweeps (not counted as ops).
    pub swept_keys: u64,
    /// Rebalance rounds that migrated something.
    pub rebalances: u64,
    /// Entries migrated by rebalance rounds (not counted as ops).
    pub migrated_keys: u64,
}

impl KvCounts {
    /// Total operation units (see the type docs for batch/scan weighting).
    pub fn total(&self) -> u64 {
        self.get_hit
            + self.get_miss
            + self.put_fresh
            + self.put_update
            + self.remove_suc
            + self.remove_fail
            + self.batch_get_keys
            + self.batch_write_keys
            + self.scans
            + self.range_scans
            + self.ttl_puts
            + self.sweeps
            + self.rebalances
    }

    fn merge(&mut self, o: &KvCounts) {
        self.get_hit += o.get_hit;
        self.get_miss += o.get_miss;
        self.put_fresh += o.put_fresh;
        self.put_update += o.put_update;
        self.remove_suc += o.remove_suc;
        self.remove_fail += o.remove_fail;
        self.batch_get_keys += o.batch_get_keys;
        self.batch_write_keys += o.batch_write_keys;
        self.scans += o.scans;
        self.scanned_entries += o.scanned_entries;
        self.range_scans += o.range_scans;
        self.ranged_entries += o.ranged_entries;
        self.ttl_puts += o.ttl_puts;
        self.sweeps += o.sweeps;
        self.swept_keys += o.swept_keys;
        self.rebalances += o.rebalances;
        self.migrated_keys += o.migrated_keys;
    }
}

/// Result of one kv measurement window.
#[derive(Debug)]
pub struct KvBenchResult {
    /// Merged counters.
    pub counts: KvCounts,
    /// Wall-clock window.
    pub duration: Duration,
    /// Single-key operation latencies (batches and scans are not sampled).
    pub latency: LatencyRecorder,
}

impl KvBenchResult {
    /// Throughput in million operation units per second.
    pub fn mops(&self) -> f64 {
        self.counts.total() as f64 / self.duration.as_secs_f64().max(1e-12) / 1e6
    }
}

/// Runs the kv microbenchmark: each thread draws operations from
/// `workload` against the shared store until `duration` elapses.
///
/// Threads announce QSBR quiescence between operations (ssmem-style, as
/// in the paper's runner); latency is recorded for single-key operations
/// only (gets as search, puts as insert, removes as delete). TTL puts and
/// sweeps require a store built with a clock ([`KvStore::with_shards_ttl`]).
///
/// # Panics
///
/// Panics if the mix contains range scans or rebalance rounds — those
/// need an [`OrderedMap`] backend; use [`run_kv_workload_ordered`].
pub fn run_kv_workload<B: ConcurrentMap>(
    store: &KvStore<B>,
    threads: usize,
    duration: Duration,
    workload: &KvWorkload,
    seed: u64,
    record_latency: bool,
) -> KvBenchResult {
    assert!(
        workload.mix.range_pm == 0,
        "range mixes need an OrderedMap backend (run_kv_workload_ordered)"
    );
    assert!(
        workload.mix.rebalance_pm == 0,
        "rebalance mixes need an OrderedMap backend (run_kv_workload_ordered)"
    );
    run_kv_inner(
        store,
        threads,
        duration,
        workload,
        seed,
        record_latency,
        &|_, _| unreachable!("range op drawn with range_pm == 0"),
        &|| unreachable!("rebalance op drawn with rebalance_pm == 0"),
    )
}

/// [`run_kv_workload`] over an [`OrderedMap`]-backed store: additionally
/// executes the mix's bounded range scans through [`KvStore::range_scan`]
/// and its rebalance rounds through [`KvStore::rebalance_round`].
pub fn run_kv_workload_ordered<B: OrderedMap>(
    store: &KvStore<B>,
    threads: usize,
    duration: Duration,
    workload: &KvWorkload,
    seed: u64,
    record_latency: bool,
) -> KvBenchResult {
    run_kv_inner(
        store,
        threads,
        duration,
        workload,
        seed,
        record_latency,
        &|lo, hi| store.range_scan(lo, hi).len() as u64,
        &|| store.rebalance_round().map_or(0, |s| s.moved),
    )
}

/// Shared driver core; `range_exec` runs one bounded range scan and
/// reports how many entries it returned, `rebalance_exec` runs one
/// rebalance round and reports how many entries migrated.
#[allow(clippy::too_many_arguments)] // two exec hooks close over the typed store
fn run_kv_inner<B: ConcurrentMap>(
    store: &KvStore<B>,
    threads: usize,
    duration: Duration,
    workload: &KvWorkload,
    seed: u64,
    record_latency: bool,
    range_exec: &(dyn Fn(Key, Key) -> u64 + Sync),
    rebalance_exec: &(dyn Fn() -> u64 + Sync),
) -> KvBenchResult {
    let mix = workload.mix;
    let start = Instant::now();
    let results = run_workers(threads, duration, |ctx| {
        let mut rng = FastRng::for_thread(seed, ctx.tid);
        let mut counts = KvCounts::default();
        let mut lat = LatencyRecorder::new();
        let mut keybuf: Vec<Key> = Vec::with_capacity(mix.batch);
        let mut entbuf: Vec<(Key, Val)> = Vec::with_capacity(mix.batch);
        let mut batch_write_flip = ctx.tid as u64;
        // Cumulative permille thresholds, in dispatch order.
        let t_put = mix.put_pm;
        let t_remove = t_put + mix.remove_pm;
        let t_ttl_put = t_remove + mix.ttl_put_pm;
        let t_batch_get = t_ttl_put + mix.batch_get_pm;
        let t_batch_write = t_batch_get + mix.batch_write_pm;
        let t_scan = t_batch_write + mix.scan_pm;
        let t_range = t_scan + mix.range_pm;
        let t_sweep = t_range + mix.sweep_pm;
        let t_rebalance = t_sweep + mix.rebalance_pm;
        while !ctx.should_stop() {
            let p = rng.next_below(1000) as u32;
            if p < t_put {
                let k = workload.sample_key(&mut rng);
                let t0 = record_latency.then(synchro::cycles::now);
                let prev = store.put(k, k);
                if let Some(t0) = t0 {
                    lat.record(
                        OpKind::InsertSuc,
                        synchro::cycles::elapsed(t0, synchro::cycles::now()),
                    );
                }
                if prev.is_none() {
                    counts.put_fresh += 1;
                } else {
                    counts.put_update += 1;
                }
            } else if p < t_remove {
                let k = workload.sample_key(&mut rng);
                let t0 = record_latency.then(synchro::cycles::now);
                let removed = store.remove(k);
                let kind = if removed.is_some() {
                    counts.remove_suc += 1;
                    OpKind::DeleteSuc
                } else {
                    counts.remove_fail += 1;
                    OpKind::DeleteFail
                };
                if let Some(t0) = t0 {
                    lat.record(kind, synchro::cycles::elapsed(t0, synchro::cycles::now()));
                }
            } else if p < t_ttl_put {
                let k = workload.sample_key(&mut rng);
                store.put_with_ttl(k, k, mix.ttl_span);
                counts.ttl_puts += 1;
            } else if p < t_batch_get {
                keybuf.clear();
                keybuf.extend((0..mix.batch).map(|_| workload.sample_key(&mut rng)));
                let n = if mix.per_key_multiget {
                    store.multi_get_per_key(&keybuf).len() as u64
                } else {
                    store.multi_get(&keybuf).len() as u64
                };
                counts.batch_get_keys += n;
            } else if p < t_batch_write {
                // Alternate put/remove batches so the store size holds.
                batch_write_flip += 1;
                if batch_write_flip % 2 == 0 {
                    entbuf.clear();
                    entbuf.extend((0..mix.batch).map(|_| {
                        let k = workload.sample_key(&mut rng);
                        (k, k)
                    }));
                    store.multi_put(&entbuf);
                } else {
                    keybuf.clear();
                    keybuf.extend((0..mix.batch).map(|_| workload.sample_key(&mut rng)));
                    store.multi_remove(&keybuf);
                }
                counts.batch_write_keys += mix.batch as u64;
            } else if p < t_scan {
                let mut seen = 0u64;
                store.scan(|_, _| seen += 1);
                counts.scans += 1;
                counts.scanned_entries += seen;
            } else if p < t_range {
                let lo = workload.sample_key(&mut rng);
                let hi = lo.saturating_add(mix.range_span - 1);
                counts.ranged_entries += range_exec(lo, hi);
                counts.range_scans += 1;
            } else if p < t_sweep {
                counts.swept_keys += store.sweep_expired(mix.sweep_budget);
                counts.sweeps += 1;
            } else if p < t_rebalance {
                let moved = rebalance_exec();
                if moved > 0 {
                    counts.rebalances += 1;
                    counts.migrated_keys += moved;
                }
            } else {
                let k = workload.sample_key(&mut rng);
                let t0 = record_latency.then(synchro::cycles::now);
                let hit = store.get(k).is_some();
                let kind = if hit {
                    counts.get_hit += 1;
                    OpKind::SearchHit
                } else {
                    counts.get_miss += 1;
                    OpKind::SearchMiss
                };
                if let Some(t0) = t0 {
                    lat.record(kind, synchro::cycles::elapsed(t0, synchro::cycles::now()));
                }
            }
            // Quiescent point between operations (ssmem-style).
            reclaim::quiescent();
        }
        (counts, lat)
    });
    let duration = start.elapsed();
    let mut counts = KvCounts::default();
    let mut latency = LatencyRecorder::new();
    for (c, l) in &results {
        counts.merge(c);
        latency.merge(l);
    }
    KvBenchResult {
        counts,
        duration,
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FakeClock;
    use optik_hashtables::StripedOptikHashTable;
    use std::sync::Arc;

    /// The mix used by the read-heavy scenarios: 90% gets.
    fn read_heavy() -> KvMix {
        KvMix {
            put_pm: 50,
            remove_pm: 50,
            batch_get_pm: 0,
            batch_write_pm: 0,
            scan_pm: 0,
            batch: 0,
            ..KvMix::default()
        }
    }

    #[test]
    fn mix_remainder_is_gets() {
        let m = read_heavy();
        assert_eq!(m.get_pm(), 900);
        let full = KvMix {
            put_pm: 100,
            remove_pm: 100,
            batch_get_pm: 300,
            batch_write_pm: 200,
            scan_pm: 10,
            batch: 8,
            ttl_put_pm: 50,
            ttl_span: 10,
            sweep_pm: 10,
            sweep_budget: 64,
            ..KvMix::default()
        };
        assert_eq!(full.get_pm(), 230);
    }

    #[test]
    fn hand_built_oversubscribed_mix_saturates_instead_of_underflowing() {
        // The fields are public, so get_pm() must stay total even when the
        // 1000-permille invariant (enforced by KvWorkload::new) is bypassed.
        let m = KvMix {
            put_pm: 600,
            remove_pm: 600,
            batch_get_pm: 0,
            batch_write_pm: 0,
            scan_pm: 0,
            batch: 0,
            ..KvMix::default()
        };
        assert_eq!(m.get_pm(), 0);
    }

    #[test]
    #[should_panic(expected = "exceed 1000")]
    fn oversubscribed_mix_is_rejected() {
        let _ = KvWorkload::new(
            16,
            false,
            KvMix {
                put_pm: 600,
                remove_pm: 600,
                batch_get_pm: 0,
                batch_write_pm: 0,
                scan_pm: 0,
                batch: 0,
                ..KvMix::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "ttl span")]
    fn ttl_mix_without_span_is_rejected() {
        let _ = KvWorkload::new(
            16,
            false,
            KvMix {
                ttl_put_pm: 100,
                ..KvMix::default()
            },
        );
    }

    #[test]
    fn initial_fill_reaches_target() {
        let w = KvWorkload::new(128, false, read_heavy());
        let s: KvStore<StripedOptikHashTable> =
            KvStore::with_shards(4, |_| StripedOptikHashTable::new(64, 8));
        w.initial_fill(7, &s);
        assert_eq!(s.len(), 128);
        let snap = s.snapshot();
        assert!(snap.iter().all(|&(k, v)| k == v && (1..=256).contains(&k)));
    }

    #[test]
    fn driver_executes_every_op_class() {
        let w = KvWorkload::new(
            64,
            true,
            KvMix {
                put_pm: 150,
                remove_pm: 150,
                batch_get_pm: 150,
                batch_write_pm: 150,
                scan_pm: 20,
                batch: 4,
                ..KvMix::default()
            },
        );
        let s: KvStore<StripedOptikHashTable> =
            KvStore::with_shards(4, |_| StripedOptikHashTable::new(64, 8));
        w.initial_fill(3, &s);
        let res = run_kv_workload(&s, 2, Duration::from_millis(60), &w, 5, true);
        assert!(res.counts.get_hit + res.counts.get_miss > 0, "gets ran");
        assert!(res.counts.put_fresh + res.counts.put_update > 0, "puts ran");
        assert!(
            res.counts.remove_suc + res.counts.remove_fail > 0,
            "removes ran"
        );
        assert!(res.counts.batch_get_keys > 0, "multi-gets ran");
        assert!(res.counts.batch_write_keys > 0, "batched writes ran");
        assert!(res.counts.scans > 0, "scans ran");
        assert!(res.mops() > 0.0);
        let sampled = OpKind::ALL.iter().any(|&k| res.latency.count(k) > 0);
        assert!(sampled, "single-op latency was requested");
        // The balanced mix must keep the store near its initial size.
        let len = s.len() as i64;
        assert!((0..=128).contains(&len), "size ran away: {len}");
    }

    #[test]
    fn ttl_driver_expires_and_sweeps() {
        let clock = Arc::new(FakeClock::new());
        let s: KvStore<StripedOptikHashTable> =
            KvStore::with_shards_ttl(4, Arc::clone(&clock) as Arc<dyn crate::Clock>, |_| {
                StripedOptikHashTable::new(64, 8)
            });
        // Phase 1: a TTL-put-heavy mix populates deadlines.
        let arm = KvWorkload::new(
            64,
            false,
            KvMix {
                ttl_put_pm: 400,
                ttl_span: 10,
                ..KvMix::default()
            },
        );
        let res = run_kv_workload(&s, 2, Duration::from_millis(40), &arm, 5, false);
        assert!(res.counts.ttl_puts > 0, "TTL puts ran");
        assert!(res.counts.get_hit + res.counts.get_miss > 0, "gets ran");
        // Phase 2: jump past every deadline, then drive sweeps only —
        // nothing else may touch (and thereby normalize) the expired
        // entries, so the sweeper must be the one reclaiming them.
        clock.advance(1_000);
        assert!(!s.is_empty(), "expiry is lazy: physical entries remain");
        let sweep = KvWorkload::new(
            64,
            false,
            KvMix {
                sweep_pm: 1000,
                sweep_budget: 16,
                ..KvMix::default()
            },
        );
        let res = run_kv_workload(&s, 2, Duration::from_millis(40), &sweep, 7, false);
        assert!(res.counts.sweeps > 0, "sweeps ran");
        assert!(res.counts.swept_keys > 0, "expired entries were reclaimed");
        assert_eq!(s.len(), 0, "every TTL entry expired and was swept");
        assert!(res.mops() > 0.0);
    }

    #[test]
    fn ordered_driver_executes_range_scans_and_rebalances() {
        use optik_skiplists::OptikSkipList2;
        let w = KvWorkload::new(
            64,
            true, // skew concentrates load so rebalance rounds trigger
            KvMix {
                put_pm: 100,
                remove_pm: 100,
                range_pm: 100,
                range_span: 16,
                rebalance_pm: 50,
                ..KvMix::default()
            },
        );
        let s: KvStore<OptikSkipList2> =
            KvStore::with_ordered_shards(4, 128, |_| OptikSkipList2::new());
        w.initial_fill(3, &s);
        let res = run_kv_workload_ordered(&s, 2, Duration::from_millis(60), &w, 5, false);
        assert!(res.counts.range_scans > 0, "range scans ran");
        assert!(
            res.counts.ranged_entries > 0,
            "windows over a half-full store must hit entries"
        );
        assert!(res.counts.get_hit + res.counts.get_miss > 0, "gets ran");
        assert!(res.mops() > 0.0);
        // Skewed (zipf) load on contiguous partitions is exactly the
        // imbalance the rebalancer exists for.
        assert!(
            res.counts.rebalances > 0,
            "skewed ordered load must trigger migrations"
        );
        assert!(res.counts.migrated_keys > 0);
    }

    #[test]
    #[should_panic(expected = "range mixes need an OrderedMap backend")]
    fn plain_driver_rejects_range_mixes() {
        let w = KvWorkload::new(
            16,
            false,
            KvMix {
                range_pm: 10,
                range_span: 4,
                ..KvMix::default()
            },
        );
        let s: KvStore<StripedOptikHashTable> =
            KvStore::with_shards(2, |_| StripedOptikHashTable::new(16, 4));
        let _ = run_kv_workload(&s, 1, Duration::from_millis(5), &w, 1, false);
    }

    #[test]
    #[should_panic(expected = "rebalance mixes need an OrderedMap backend")]
    fn plain_driver_rejects_rebalance_mixes() {
        let w = KvWorkload::new(
            16,
            false,
            KvMix {
                rebalance_pm: 10,
                ..KvMix::default()
            },
        );
        let s: KvStore<StripedOptikHashTable> =
            KvStore::with_shards(2, |_| StripedOptikHashTable::new(16, 4));
        let _ = run_kv_workload(&s, 1, Duration::from_millis(5), &w, 1, false);
    }
}
