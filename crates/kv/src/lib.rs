//! # optik-kv — a sharded key-value store built on the OPTIK pattern
//!
//! The first *system* layer of the reproduction: where the other crates
//! reproduce the paper's individual data structures, this one composes
//! them into a service-shaped store — the ROADMAP's step from
//! "reproduction" toward "production-scale system".
//!
//! The store is a **policy-layered engine**: routing, TTL, and
//! rebalancing are separable layers over the same sharded core.
//!
//! ```text
//!             ┌──────────────────────────────────────────────────────┐
//!  put(k,v) ─▶│ KvStore                                              │
//!  get(k)   ─▶│  ┌────────────────────────────────────────────────┐  │
//!             │  │ ShardPolicy (policy.rs)                        │  │
//!             │  │  hash spread  |  partition table ⟨OPTIK lock⟩  │◀─┼── rebalance.rs
//!             │  └──────────────────────┬─────────────────────────┘  │   (boundary
//!             │                         ▼ shard index                │    migration)
//!             │ ┌─────────┐ ┌─────────┐     ┌─────────┐              │
//!             │ │ shard 0 │ │ shard 1 │ ... │ shard N │              │
//!             │ │ OPTIK   │ │ OPTIK   │     │ OPTIK   │              │
//!             │ │ version │ │ version │     │ version │              │
//!             │ │ lock    │ │ lock    │     │ lock    │              │
//!             │ │ ┌─────┐ │ │ ┌─────┐ │     │ ┌─────┐ │              │
//!             │ │ │ map │ │ │ │ map │ │     │ │ map │ │              │
//!             │ │ ├─────┤ │ │ ├─────┤ │     │ ├─────┤ │              │
//!             │ │ │ ttl │ │ │ │ ttl │ │     │ │ ttl │ │◀─ ttl.rs     │
//!             │ │ └─────┘ │ │ └─────┘ │     │ └─────┘ │   (deadline  │
//!             │ └─────────┘ └─────────┘     └─────────┘    tables)   │
//!             └──────────────────────────────────────────────────────┘
//!               map = any ConcurrentMap backend (OPTIK array map,
//!               striped / striped-OPTIK / resizable table, skip
//!               lists and BSTs via OrderedMap — or another KvStore)
//! ```
//!
//! The OPTIK pattern (§3 of the paper) appears at *three* granularities:
//!
//! - **shards** — single-key writes lock their shard; reads never lock;
//!   batched multi-key operations acquire the involved shard locks in
//!   ascending shard order (deadlock-free by total-order acquisition) and
//!   commit atomically across shards; multi-gets and scans are
//!   optimistic (read versions, read data, validate) with a bounded
//!   fallback to locking. Failed (read-only) critical sections release
//!   with `revert`, so they never signal conflicts to other optimistic
//!   readers. Under hot-key contention the write path engages **flat
//!   combining** ([`CombineMode`]): writers whose adaptive-backoff EWMA
//!   says the shard is storming publish their ops into a per-shard
//!   publication list and one combiner applies the whole batch under a
//!   single lock hold — one version bump, so validated readers observe
//!   the batch as one atomic step.
//! - **routing** ([`ShardPolicy`], `policy.rs`) — under ordered sharding
//!   the partition table sits behind its own OPTIK version lock: lookups
//!   read it lock-free and validate, so an online boundary migration
//!   (`rebalance.rs`) makes racing readers retry instead of mis-route.
//! - **entry lifecycle** ([`Clock`]/TTL, `ttl.rs`) — deadlines live in
//!   per-shard companion tables covered by the shard version, so a read
//!   validates the (value, deadline) pair as one snapshot; expiry is lazy
//!   on read and reclaimed incrementally by [`KvStore::sweep_expired`]
//!   through the workspace QSBR machinery.
//!
//! Ordered backends (the skip lists and BSTs, via
//! `optik_harness::api::OrderedMap`) additionally serve **range scans**:
//! [`KvStore::range_scan`] collects a `[lo, hi]` window per shard with the
//! same optimistic validate-then-lock-fallback discipline as full scans,
//! and [`KvStore::with_ordered_shards`] switches the store from hash
//! sharding to contiguous key partitions so a range touches only the
//! shards it intersects.
//!
//! Memory safety of optimistic traversal over chain-based backends comes
//! from the workspace QSBR domain (the `reclaim` crate): removed entries
//! are retired, not freed, until every registered thread passes a
//! quiescent point, so a scan that loses its validation race has still
//! only read live-or-retired memory.
//!
//! See `optik_harness::api::ConcurrentMap` for the backend contract and
//! [`KvWorkload`]/[`run_kv_workload`] for the benchmark driver the
//! `kv.*` registry scenarios use.

#![warn(missing_docs)]

mod policy;
mod rebalance;
mod store;
mod ttl;
mod workload;

pub use policy::{HashPolicy, RangePolicy, ShardPolicy};
pub use rebalance::{MigrationStats, RebalanceError, MIGRATION_BATCH};
pub use store::{CombineMode, KvStore};
pub use ttl::{Clock, FakeClock, SystemClock};
pub use workload::{
    run_kv_workload, run_kv_workload_ordered, KvBenchResult, KvCounts, KvMix, KvWorkload,
};

pub use optik_harness::api::{ConcurrentMap, Key, OrderedMap, Val};
