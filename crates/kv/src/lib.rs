//! # optik-kv — a sharded key-value store built on the OPTIK pattern
//!
//! The first *system* layer of the reproduction: where the other crates
//! reproduce the paper's individual data structures, this one composes
//! them into a service-shaped store — the ROADMAP's step from
//! "reproduction" toward "production-scale system".
//!
//! ```text
//!                    ┌────────────────────────────────────────────┐
//!        put(k,v) ──▶│ KvStore                                    │
//!        get(k)   ──▶│  hash(k) ──▶ shard index                   │
//!                    │ ┌─────────┐ ┌─────────┐     ┌─────────┐    │
//!                    │ │ shard 0 │ │ shard 1 │ ... │ shard N │    │
//!                    │ │ OPTIK   │ │ OPTIK   │     │ OPTIK   │    │
//!                    │ │ version │ │ version │     │ version │    │
//!                    │ │ lock    │ │ lock    │     │ lock    │    │
//!                    │ │ ┌─────┐ │ │ ┌─────┐ │     │ ┌─────┐ │    │
//!                    │ │ │ map │ │ │ │ map │ │     │ │ map │ │    │
//!                    │ │ └─────┘ │ │ └─────┘ │     │ └─────┘ │    │
//!                    │ └─────────┘ └─────────┘     └─────────┘    │
//!                    └────────────────────────────────────────────┘
//!                      map = any ConcurrentMap backend (OPTIK array
//!                      map, striped / striped-OPTIK / resizable table)
//! ```
//!
//! The OPTIK pattern (§3 of the paper) appears at the *shard* granularity:
//!
//! - single-key writes lock their shard; reads never lock;
//! - **batched** multi-key operations acquire the involved shard locks in
//!   ascending shard order (deadlock-free by total-order acquisition) and
//!   commit atomically across shards;
//! - **multi-gets and scans** are optimistic: read shard versions, read
//!   data, validate the versions — the read-side half of OPTIK — with a
//!   bounded fallback to locking under sustained interference. Failed
//!   (read-only) critical sections release with `revert`, so they never
//!   signal conflicts to other optimistic readers.
//!
//! Ordered backends (the skip lists and BSTs, via
//! `optik_harness::api::OrderedMap`) additionally serve **range scans**:
//! [`KvStore::range_scan`] collects a `[lo, hi]` window per shard with the
//! same optimistic validate-then-lock-fallback discipline as full scans,
//! and [`KvStore::with_ordered_shards`] switches the store from hash
//! sharding to contiguous key partitions so a range touches only the
//! shards it intersects.
//!
//! Memory safety of optimistic traversal over chain-based backends comes
//! from the workspace QSBR domain (the `reclaim` crate): removed entries
//! are retired, not freed, until every registered thread passes a
//! quiescent point, so a scan that loses its validation race has still
//! only read live-or-retired memory.
//!
//! See `optik_harness::api::ConcurrentMap` for the backend contract and
//! [`KvWorkload`]/[`run_kv_workload`] for the benchmark driver the
//! `kv.*` registry scenarios use.

#![warn(missing_docs)]

mod store;
mod workload;

pub use store::KvStore;
pub use workload::{
    run_kv_workload, run_kv_workload_ordered, KvBenchResult, KvCounts, KvMix, KvWorkload,
};

pub use optik_harness::api::{ConcurrentMap, Key, OrderedMap, Val};
