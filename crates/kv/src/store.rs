//! The sharded store: per-shard OPTIK version locks over a pluggable
//! [`ConcurrentMap`] backend, routed by a pluggable [`ShardPolicy`].

use std::sync::atomic::Ordering;
use std::sync::Arc;

// Shard op counters (and, via `ttl`, the sweep cursor) are inputs to the
// rebalancer's validation-point logic, so they use the schedulable shim
// atomics: raw in normal builds, explorer yield points under
// `--cfg optik_explore`.
use synchro::shim::{AtomicU64, AtomicUsize};

use optik::{OptikLock, OptikVersioned};
use synchro::{Backoff, CachePadded, PubList};

use optik_harness::api::{ConcurrentMap, Key, OrderedMap, Val};

use crate::policy::{home_shard, HashPolicy, RangePolicy, ShardPolicy};
use crate::ttl::{Clock, TtlState};

/// Optimistic attempts per shard before a cross-shard read operation
/// (multi-get, scan, range scan) falls back to taking the shard lock(s).
pub(crate) const OPTIMISTIC_ATTEMPTS: usize = 8;

/// Per-call scratch for [`KvStore::multi_get`]'s shard grouping: the
/// routed probes, the distinct-shard set, and the per-shard versions.
/// Allocated once per call and reused across optimistic attempts and
/// the lock fallback — the grouped read path does no per-attempt
/// allocation.
///
/// Two planning modes share this scratch. Hash-routed stores keep the
/// probes in arrival order and only deduplicate the shard set (an
/// epoch-stamped seen array — no sort at all: one OPTIK window per
/// involved shard is the property that matters, and a hashed backend
/// scatters keys regardless of probe order). Contiguous-partition
/// stores additionally counting-sort the probes by shard and key-sort
/// within each shard so ordered backends are walked front-to-back.
struct ProbePlan {
    /// `(shard, key, input index)` in shard-then-key order (grouped
    /// mode; unused in flat mode).
    probes: Vec<(usize, Key, u32)>,
    /// Routed shard per input key, parallel to `keys` (flat mode; the
    /// whole plan is this 4-byte-per-key array plus the shard set).
    flat: Vec<u32>,
    /// Counting-sort input (grouped mode only), arrival order.
    routed: Vec<(usize, Key, u32)>,
    /// Last epoch each shard was seen (flat mode) / scatter cursors
    /// (grouped mode).
    stamp: Vec<u64>,
    /// Bumped per plan; `stamp[s] == epoch` means shard `s` is involved
    /// (saves re-zeroing `stamp` on every attempt).
    epoch: u64,
    /// Distinct involved shards; with `spans`, the probe range of each.
    shards_hit: Vec<usize>,
    /// `(start, end)` probe range per involved shard (grouped mode;
    /// empty in flat mode, where probes are taken in arrival order).
    spans: Vec<(usize, usize)>,
    /// Shard versions, parallel to `shards_hit`.
    versions: Vec<optik::Version>,
}

impl ProbePlan {
    const fn empty() -> Self {
        ProbePlan {
            probes: Vec::new(),
            flat: Vec::new(),
            routed: Vec::new(),
            stamp: Vec::new(),
            epoch: 0,
            shards_hit: Vec::new(),
            spans: Vec::new(),
            versions: Vec::new(),
        }
    }
}

thread_local! {
    /// Per-thread [`ProbePlan`] reused by every [`KvStore::multi_get`]
    /// call on this thread (stores may share it — the epoch stamps keep
    /// shard sets from bleeding between calls). Steady-state planning
    /// allocates nothing; only the result vector is fresh per call.
    static PROBE_PLAN: std::cell::RefCell<ProbePlan> =
        const { std::cell::RefCell::new(ProbePlan::empty()) };
}

/// Contention level (a [`Backoff`] cap value) at which an adaptive writer
/// stops spinning on `try_lock_version` and publishes its op for a
/// combiner instead. 64 is four escalations above `Backoff`'s initial
/// cap: a writer whose last few acquisitions went cleanly never gets
/// there (the fast path costs nothing extra), while a thread hammering a
/// hot shard crosses it within one storm — or arrives already past it
/// via the per-thread EWMA that [`Backoff::adaptive`] seeds from.
const ENGAGE_LEVEL: u32 = 64;

/// When the flat-combining write path engages on a (statically routed)
/// store. See the `write_combining` docs for the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CombineMode {
    /// Never combine: every write is a plain OPTIK critical section
    /// (the pre-combining code path, kept for A/B baselines).
    Off,
    /// The default: writers take the plain `try_lock_version` fast path
    /// and publish for a combiner only once their per-thread contention
    /// EWMA crosses `ENGAGE_LEVEL` (64) — uncontended shards pay nothing.
    #[default]
    Adaptive,
    /// Every write publishes and a combiner applies it, even uncontended.
    /// A coverage knob: deterministic tests (schedule exploration,
    /// linearizability rounds) use it to drive the publication protocol
    /// without having to manufacture an EWMA storm first.
    Eager,
}

/// A published write request: what a combiner needs to apply the op on
/// the publisher's behalf. `Copy` on purpose — ops are small enough that
/// handing the slot a bitwise copy beats any shared-ownership scheme.
#[derive(Clone, Copy)]
pub(crate) enum CombineOp {
    /// [`KvStore::put`]: upsert, response is the previous live value.
    Put { key: Key, val: Val },
    /// [`KvStore::remove`]: response is the removed live value.
    Remove { key: Key },
    /// [`KvStore::multi_put`] whose keys all route to one shard: the
    /// combiner applies the entries in order and writes each previous
    /// value through `prevs`; the slot response itself is `None`.
    PutBatch {
        /// The caller's `&[(Key, Val)]`, as a raw view.
        entries: *const (Key, Val),
        /// Length of both buffers.
        len: usize,
        /// The caller's pre-sized `Vec<Option<Val>>`, as a raw view.
        prevs: *mut Option<Val>,
    },
}

// SAFETY: the raw views in `PutBatch` point into the publishing thread's
// frame, which blocks in its poll loop until the op is answered — the
// buffers outlive every dereference, and the combiner is the only thread
// touching them while the op is published (the publisher reads `prevs`
// only after the DONE hand-off, which is a release/acquire edge).
unsafe impl Send for CombineOp {}

/// Files the duration of a retry-laden optimistic read loop (first attempt
/// to resolution) into the probe's retry histogram. Callers invoke it only
/// when at least one round failed revalidation, so clean first-try reads
/// never pollute the distribution.
#[inline]
fn record_retry_loop(t0: u64) {
    optik_probe::record(
        optik_probe::HistKind::RetryLoop,
        optik_probe::elapsed(t0, optik_probe::now()),
    );
}

pub(crate) struct Shard<B> {
    /// Guards every *write* to `map` (single-key and batched) and arbitrates
    /// read-side validation: multi-gets and scans read optimistically and
    /// validate against this version, OPTIK style, instead of locking.
    /// On TTL stores the same version covers the companion `deadlines`
    /// table, so a validated read can never pair a fresh value with a
    /// stale deadline.
    pub(crate) lock: OptikVersioned,
    pub(crate) map: B,
    /// Companion deadline table (`key → absolute expiry tick`), present
    /// exactly when the store was built with a clock. Same backend type
    /// as `map`: deadline reads are lock-free backend lookups.
    pub(crate) deadlines: Option<B>,
    /// Per-shard op counter feeding the rebalancer's load heuristics.
    /// Only maintained under dynamic routing policies — hash stores never
    /// rebalance, so their hot paths skip the counter.
    ///
    /// All accesses are `Relaxed`, which is sound because the counter is
    /// advisory: no other memory is published through it, each RMW is
    /// still atomic (no lost increments), and its only reader
    /// (`rebalance_round` via [`KvStore::shard_loads`]) treats the values
    /// as a heuristic sample — a reordered or stale read can at worst
    /// pick a different shard to split, never corrupt data.
    ///
    /// Padded onto its own line: under dynamic routing this counter is
    /// RMW'd by *readers* too (`get_dynamic`), and sharing a line with
    /// the lock word would have every counted read invalidate the
    /// validators' cached copy of the version — exactly the ping-pong
    /// the OPTIK read path exists to avoid.
    pub(crate) ops: CachePadded<AtomicU64>,
    /// Flat-combining publication list for this shard's write path: one
    /// cache-padded request slot per registry thread, drained in one
    /// critical section by whichever writer holds the lock. Only used
    /// when the store's [`CombineMode`] engages (statically routed
    /// stores, contention past [`ENGAGE_LEVEL`]); the plain write path
    /// never touches it beyond one `pending()` head read.
    pub(crate) combine: PubList<CombineOp, Option<Val>>,
}

impl<B: ConcurrentMap> Shard<B> {
    /// Under the shard lock: the full upsert sequence shared by `put`
    /// and `multi_put` — normalize an expired previous binding, upsert,
    /// and clear any deadline (a plain put lives forever). Returns the
    /// previous live value.
    pub(crate) fn put_live(&self, key: Key, val: Val, now: Option<u64>) -> Option<Val> {
        if let Some(now) = now {
            self.drop_expired(key, now);
        }
        let prev = self.map.put(key, val);
        if prev.is_some() {
            if let Some(dl) = &self.deadlines {
                dl.remove(key);
            }
        }
        prev
    }

    /// Under the shard lock: physically drops `key` if its deadline has
    /// passed, making room for the caller to act on a normalized shard.
    /// Returns whether the maps were modified.
    pub(crate) fn drop_expired(&self, key: Key, now: u64) -> bool {
        let Some(dl) = &self.deadlines else {
            return false;
        };
        if dl.get(key).is_some_and(|d| d <= now) {
            self.map.remove(key);
            dl.remove(key);
            true
        } else {
            false
        }
    }

    /// Under the shard lock: the full removal sequence shared by
    /// `remove` and the combiner — normalize an expired binding, remove,
    /// clear the deadline. Returns `(removed live value, modified)`.
    pub(crate) fn remove_live(&self, key: Key, now: Option<u64>) -> (Option<Val>, bool) {
        let dropped = now.is_some_and(|now| self.drop_expired(key, now));
        let prev = self.map.remove(key);
        if prev.is_some() {
            if let Some(dl) = &self.deadlines {
                dl.remove(key);
            }
        }
        (prev, dropped || prev.is_some())
    }

    /// Under the shard lock: applies one published op, returning its
    /// slot response and whether the maps were modified. Pure dispatch
    /// over the same `put_live`/`remove_live` building blocks the plain
    /// write path uses, so combined and un-combined writes are
    /// observably identical.
    pub(crate) fn apply_op(&self, op: CombineOp, now: Option<u64>) -> (Option<Val>, bool) {
        match op {
            CombineOp::Put { key, val } => (self.put_live(key, val, now), true),
            CombineOp::Remove { key } => self.remove_live(key, now),
            CombineOp::PutBatch {
                entries,
                len,
                prevs,
            } => {
                // SAFETY: see `CombineOp`'s `Send` impl — the publisher
                // keeps both buffers alive and untouched until this op
                // is answered, and this combiner is the sole accessor.
                let entries = unsafe { core::slice::from_raw_parts(entries, len) };
                let prevs = unsafe { core::slice::from_raw_parts_mut(prevs, len) };
                for (slot, &(k, v)) in prevs.iter_mut().zip(entries) {
                    *slot = self.put_live(k, v, now);
                }
                (None, len > 0)
            }
        }
    }
}

/// A sharded key–value store over a pluggable [`ConcurrentMap`] backend.
///
/// Keys route to one of N shards through a [`ShardPolicy`] (Fibonacci
/// hashing by default, contiguous key partitions under
/// [`KvStore::with_ordered_shards`]); each shard pairs a backend map with
/// an OPTIK version lock:
///
/// - [`KvStore::get`] goes straight to the backend, lock-free — the
///   backends are linearizable maps on their own. Under a *dynamic*
///   routing policy (rebalanceable partitions) the lookup additionally
///   validates the routing version, retrying if a migration raced it;
///   on TTL stores it validates the shard version around the
///   (value, deadline) pair and treats a passed deadline as a miss;
/// - [`KvStore::put`] / [`KvStore::remove`] run under their shard's lock
///   (re-checking the route once locked, so a migration cannot strand a
///   write in a shard that no longer owns the key), so shard versions
///   count completed writes;
/// - batched operations ([`KvStore::multi_put`], [`KvStore::multi_remove`])
///   acquire every involved shard lock **in ascending shard order** —
///   the classic total-order claim that makes overlapping batches
///   deadlock-free — and apply the whole batch atomically;
/// - [`KvStore::multi_get`] and [`KvStore::scan`] are optimistic: read the
///   routing and shard versions, read the data, validate — retrying (and
///   eventually falling back to sorted locking) on interference.
///   Traversal safety under concurrent removal comes from the workspace's
///   QSBR domain (`reclaim`): scanning threads are registered
///   participants and do not announce quiescence mid-scan, so retired
///   entries stay readable.
///
/// The store itself implements [`ConcurrentMap`], so a `KvStore` can be
/// nested, benchmarked, and linearizability-checked exactly like the
/// backends it composes. TTL, sweeping, and rebalancing live in the
/// sibling modules (`ttl`, `rebalance`).
pub struct KvStore<B> {
    pub(crate) shards: Box<[CachePadded<Shard<B>>]>,
    pub(crate) policy: Box<dyn ShardPolicy>,
    /// Cached `policy.is_dynamic()`: read on every operation, so it
    /// lives as a plain field instead of a virtual call.
    pub(crate) dynamic: bool,
    /// When the flat-combining write path engages (see [`CombineMode`]).
    /// Only consulted on statically routed stores: dynamic routing needs
    /// the under-lock route re-check of `write_shard`, which a combiner
    /// applying someone else's op cannot replay per-publisher.
    pub(crate) combine_mode: CombineMode,
    pub(crate) ttl: Option<TtlState>,
}

impl<B: ConcurrentMap> KvStore<B> {
    /// Creates a hash-sharded store with `shards` shards, building each
    /// backend with `make(shard_index)`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(shards: usize, make: impl FnMut(usize) -> B) -> Self {
        Self::build(Box::new(HashPolicy::new(shards)), None, make)
    }

    /// [`KvStore::with_shards`] with native TTL support: entries gain
    /// per-key expiry deadlines against `clock` (see the `ttl` module).
    /// `make` is called **twice** per shard — once for the data map, once
    /// for the same-type deadline table.
    pub fn with_shards_ttl(
        shards: usize,
        clock: Arc<dyn Clock>,
        make: impl FnMut(usize) -> B,
    ) -> Self {
        Self::build(Box::new(HashPolicy::new(shards)), Some(clock), make)
    }

    /// Creates a store routed by an arbitrary [`ShardPolicy`] (the
    /// named constructors cover the common hash / contiguous cases).
    ///
    /// # Panics
    ///
    /// Panics if the policy routes over zero shards.
    pub fn with_policy(policy: Box<dyn ShardPolicy>, make: impl FnMut(usize) -> B) -> Self {
        Self::build(policy, None, make)
    }

    /// [`KvStore::with_policy`] with native TTL support.
    pub fn with_policy_ttl(
        policy: Box<dyn ShardPolicy>,
        clock: Arc<dyn Clock>,
        make: impl FnMut(usize) -> B,
    ) -> Self {
        Self::build(policy, Some(clock), make)
    }

    pub(crate) fn build(
        policy: Box<dyn ShardPolicy>,
        clock: Option<Arc<dyn Clock>>,
        mut make: impl FnMut(usize) -> B,
    ) -> Self {
        let shards = policy.num_shards();
        assert!(shards > 0, "need at least one shard");
        let dynamic = policy.is_dynamic();
        Self {
            shards: (0..shards)
                .map(|i| {
                    CachePadded::new(Shard {
                        lock: OptikVersioned::new(),
                        map: make(i),
                        deadlines: clock.is_some().then(|| make(i)),
                        ops: CachePadded::new(AtomicU64::new(0)),
                        combine: PubList::new(),
                    })
                })
                .collect(),
            policy,
            dynamic,
            combine_mode: CombineMode::default(),
            ttl: clock.map(|clock| TtlState {
                clock,
                cursor: AtomicUsize::new(0),
            }),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The store's flat-combining engagement mode (see [`CombineMode`]).
    pub fn combine_mode(&self) -> CombineMode {
        self.combine_mode
    }

    /// Sets the flat-combining engagement mode. Takes `&mut self` — mode
    /// changes are a construction-time decision, not something to flip
    /// under live traffic.
    pub fn set_combine_mode(&mut self, mode: CombineMode) {
        self.combine_mode = mode;
    }

    /// Builder-style [`KvStore::set_combine_mode`].
    pub fn with_combine_mode(mut self, mode: CombineMode) -> Self {
        self.combine_mode = mode;
        self
    }

    /// Whether single-key writes go through the combining path: requires
    /// a static routing policy (see the `combine_mode` field docs) and a
    /// mode other than [`CombineMode::Off`].
    #[inline]
    fn combinable(&self) -> bool {
        !self.dynamic && self.combine_mode != CombineMode::Off
    }

    /// Shard index for `key`, as the routing table currently stands.
    #[inline]
    pub fn shard_of(&self, key: Key) -> usize {
        self.policy.route(key)
    }

    /// The backend map of shard `i` (read-only introspection — e.g.
    /// capacity reporting; going around the store's locks for *writes*
    /// voids every consistency claim above).
    pub fn backend(&self, i: usize) -> &B {
        &self.shards[i].map
    }

    /// Per-shard op counters (maintained under dynamic routing policies;
    /// all-zero for hash stores), feeding the rebalancer's heuristics.
    pub fn shard_loads(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.ops.load(Ordering::Relaxed))
            .collect()
    }

    /// The partition table's downcast, when range-sharded.
    pub(crate) fn range_policy(&self) -> Option<&RangePolicy> {
        self.policy.as_range()
    }

    /// The current tick, when TTL-enabled.
    #[inline]
    pub(crate) fn now_opt(&self) -> Option<u64> {
        self.ttl.as_ref().map(|t| t.clock.now())
    }

    /// Drops entries of `buf` whose deadline (in `shard`'s companion
    /// table) has passed. Call inside the same validated section that
    /// collected `buf`, so value and deadline belong to one version.
    fn filter_expired(&self, shard: &Shard<B>, buf: &mut Vec<(Key, Val)>, now: Option<u64>) {
        let (Some(now), Some(dl)) = (now, &shard.deadlines) else {
            return;
        };
        buf.retain(|&(k, _)| !dl.get(k).is_some_and(|d| d <= now));
    }

    /// One locked single-key critical section with route re-validation:
    /// locks the key's shard, re-checks the route (a concurrent boundary
    /// migration may have moved the key while we waited on the lock) and
    /// retries on a stale route, then runs `f`. `f` returns `(result,
    /// modified)`; unmodified critical sections release with `revert` so
    /// optimistic readers see no false conflicts.
    ///
    /// The TTL clock is sampled **under the lock**, so `f`'s expiry
    /// decisions coincide with the write's linearization point. Sampling
    /// before acquisition is observably wrong: a writer stalled between
    /// sample and lock acts on a stale `now`, and can e.g. report an
    /// already-expired previous binding as live after a reader has
    /// published the expiry — a real-time cycle the schedule explorer
    /// finds in a few hundred interleavings (`tests/explore_kv.rs`).
    pub(crate) fn write_shard<R>(
        &self,
        key: Key,
        mut f: impl FnMut(&Shard<B>, Option<u64>) -> (R, bool),
    ) -> R {
        let dynamic = self.dynamic;
        loop {
            let s = self.policy.route(key);
            let shard = &self.shards[s];
            shard.lock.lock();
            if dynamic {
                if self.policy.route(key) != s {
                    shard.lock.revert();
                    continue;
                }
                shard.ops.fetch_add(1, Ordering::Relaxed);
            }
            let (out, modified) = f(shard, self.now_opt());
            if modified {
                shard.lock.unlock();
            } else {
                shard.lock.revert();
            }
            return out;
        }
    }

    /// The contention-adaptive combining write path (statically routed
    /// stores; see [`CombineMode`]).
    ///
    /// Fast path: one plain OPTIK `try_lock_version` attempt. Success
    /// means the shard is uncontended — apply directly (draining any
    /// stragglers another writer published) and decay this thread's
    /// contention EWMA. The uncontended cost over the pre-combining
    /// path is one publication-list head read.
    ///
    /// Contended: spin with [`Backoff::adaptive`] retrying the CAS, and
    /// once the backoff cap (in-loop or carried over from this thread's
    /// recent history) crosses [`ENGAGE_LEVEL`], stop fighting for the
    /// lock line and publish the op for whichever writer wins it next.
    /// [`CombineMode::Eager`] skips straight to publication.
    fn write_combining(&self, s: usize, op: CombineOp) -> Option<Val> {
        let shard = &self.shards[s];
        if self.combine_mode == CombineMode::Eager {
            return self.publish_and_wait(s, op);
        }
        let v = shard.lock.get_version();
        if !OptikVersioned::is_locked_version(v) && shard.lock.try_lock_version(v) {
            let out = self.apply_and_release(shard, op);
            synchro::backoff::note_calm();
            return out;
        }
        let mut bo = Backoff::adaptive();
        loop {
            if bo.level() >= ENGAGE_LEVEL || synchro::backoff::contention_level() >= ENGAGE_LEVEL {
                return self.publish_and_wait(s, op);
            }
            bo.backoff();
            let v = shard.lock.get_version();
            if !OptikVersioned::is_locked_version(v) && shard.lock.try_lock_version(v) {
                return self.apply_and_release(shard, op);
            }
        }
    }

    /// Holding `shard`'s lock: applies `op`, drains any publications
    /// that piled up behind the lock, and releases — `unlock` (one
    /// version bump for the *whole* batch) if anything was modified,
    /// `revert` otherwise, so optimistic readers see a combined batch
    /// exactly as they would one plain write.
    fn apply_and_release(&self, shard: &Shard<B>, op: CombineOp) -> Option<Val> {
        let now = self.now_opt();
        let (out, mut modified) = shard.apply_op(op, now);
        if shard.combine.pending() {
            modified |= self.drain_published(shard, now);
        }
        if modified {
            shard.lock.unlock();
        } else {
            shard.lock.revert();
        }
        out
    }

    /// Holding `shard`'s lock: the combiner role. Drains the publication
    /// list, applying each op at the clock tick `now` (one tick for the
    /// whole batch — the batch linearizes as a single step, matching the
    /// single version bump the caller releases with). Returns whether
    /// the maps were modified.
    fn drain_published(&self, shard: &Shard<B>, now: Option<u64>) -> bool {
        let me = optik_probe::thread_index();
        let mut modified = false;
        let n = shard.combine.drain(|slot, op| {
            optik_probe::count(if Some(slot) == me {
                optik_probe::Event::CombineSelfServe
            } else {
                optik_probe::Event::CombineApplied
            });
            let (out, m) = shard.apply_op(op, now);
            modified |= m;
            out
        });
        if n > 0 {
            optik_probe::count(optik_probe::Event::CombineBatch);
            optik_probe::record(optik_probe::HistKind::CombineBatch, n);
        }
        modified
    }

    /// Publishes `op` into shard `s`'s list and waits for a combiner to
    /// answer it — becoming the combiner itself if it wins the lock
    /// first (the timeout path: no publication can be stranded, because
    /// every waiter doubles as a candidate combiner). Threads contest
    /// the combiner role on their *home* shard every round and on other
    /// shards every second round, so steady hot-shard load converges on
    /// one drainer whose cache already owns the shard (see
    /// [`home_shard`]).
    fn publish_and_wait(&self, s: usize, op: CombineOp) -> Option<Val> {
        let shard = &self.shards[s];
        let Some(idx) = shard.combine.publish(op) else {
            // No registry slot (TLS teardown): plain blocking write.
            shard.lock.lock();
            return self.apply_and_release(shard, op);
        };
        optik_probe::count(optik_probe::Event::CombinePublished);
        let home =
            optik_probe::thread_index().is_some_and(|t| home_shard(t, self.shards.len()) == s);
        let mut round = 0u32;
        loop {
            if let Some(resp) = shard.combine.poll(idx) {
                return resp;
            }
            if home || round % 2 == 0 {
                let v = shard.lock.get_version();
                if !OptikVersioned::is_locked_version(v) && shard.lock.try_lock_version(v) {
                    if round == 0 {
                        // Won the lock on the very first attempt after
                        // publishing: the storm that triggered engagement
                        // has passed, so decay the EWMA — otherwise a
                        // stale streak seed keeps this thread publishing
                        // (and paying the protocol) on a calm shard.
                        synchro::backoff::note_calm();
                    }
                    let now = self.now_opt();
                    let modified = self.drain_published(shard, now);
                    if modified {
                        shard.lock.unlock();
                    } else {
                        shard.lock.revert();
                    }
                    // Our publication was in the chain we just drained
                    // or in one an earlier combiner detached; either
                    // way it is answered by the time a drain completes.
                    return shard
                        .combine
                        .poll(idx)
                        .expect("a completed drain answers every earlier publication");
                }
            }
            round = round.wrapping_add(1);
            synchro::relax();
        }
    }

    /// Looks up `key`. Lock-free: delegates to the backend; TTL stores
    /// validate the (value, deadline) pair against the shard version and
    /// report expired entries as misses; dynamically-routed stores
    /// validate the routing version and retry across migrations.
    #[inline]
    pub fn get(&self, key: Key) -> Option<Val> {
        if self.dynamic {
            self.get_dynamic(key)
        } else {
            self.read_entry(&self.shards[self.policy.route(key)], key)
        }
    }

    /// Validated single-shard lookup (see [`KvStore::get`]). Plain
    /// stores read the backend directly; TTL stores run the read-side
    /// OPTIK pattern over the (value, deadline) pair.
    ///
    /// The clock is sampled **inside** the validated section: the
    /// (value, deadline) pair is stable across `[version read,
    /// validate]`, so pairing it with a clock tick from the same window
    /// makes the sample instant the read's linearization point. A sample
    /// taken before the window can pair a fresh pair with a stale `now`
    /// across a retry and resurrect an expiry another reader already
    /// observed.
    fn read_entry(&self, shard: &Shard<B>, key: Key) -> Option<Val> {
        let Some(dl) = &shard.deadlines else {
            return shard.map.get(key);
        };
        let mut bo = Backoff::adaptive();
        let t0 = optik_probe::now();
        let mut retried = false;
        for _ in 0..OPTIMISTIC_ATTEMPTS {
            let v = shard.lock.get_version_wait();
            let val = shard.map.get(key);
            let deadline = dl.get(key);
            let now = self.now_opt().expect("deadline table implies a clock");
            if shard.lock.validate(v) {
                if retried {
                    record_retry_loop(t0);
                }
                return val.filter(|_| !deadline.is_some_and(|d| d <= now));
            }
            optik_probe::count(optik_probe::Event::ReadRetry);
            retried = true;
            bo.backoff();
        }
        shard.lock.lock();
        let val = shard.map.get(key);
        let deadline = dl.get(key);
        let now = self.now_opt().expect("deadline table implies a clock");
        shard.lock.revert(); // read-only critical section
        record_retry_loop(t0);
        val.filter(|_| !deadline.is_some_and(|d| d <= now))
    }

    /// [`KvStore::get`] under a dynamic routing policy: optimistic
    /// route-read-validate, with a shard-lock fallback whose route
    /// re-check pins the key (a migration needs that shard's lock).
    fn get_dynamic(&self, key: Key) -> Option<Val> {
        self.shards[self.policy.route(key)]
            .ops
            .fetch_add(1, Ordering::Relaxed);
        let mut bo = Backoff::adaptive();
        let t0 = optik_probe::now();
        let mut retried = false;
        for _ in 0..OPTIMISTIC_ATTEMPTS {
            let rv = self.policy.version();
            let out = self.read_entry(&self.shards[self.policy.route(key)], key);
            if self.policy.validate(rv) {
                if retried {
                    record_retry_loop(t0);
                }
                return out;
            }
            optik_probe::count(optik_probe::Event::ReadRetry);
            retried = true;
            bo.backoff();
        }
        record_retry_loop(t0);
        loop {
            let s = self.policy.route(key);
            let shard = &self.shards[s];
            shard.lock.lock();
            if self.policy.route(key) != s {
                shard.lock.revert();
                continue;
            }
            let val = shard.map.get(key);
            let deadline = shard.deadlines.as_ref().and_then(|dl| dl.get(key));
            let now = self.now_opt();
            shard.lock.revert(); // read-only critical section
            return val.filter(|_| !now.is_some_and(|now| deadline.is_some_and(|d| d <= now)));
        }
    }

    /// Inserts or atomically updates `key → val` under the shard lock,
    /// returning the previous **live** value. On TTL stores an expired
    /// previous binding reports `None` (and is physically dropped), and a
    /// plain put clears any deadline — the fresh binding lives forever.
    pub fn put(&self, key: Key, val: Val) -> Option<Val> {
        if self.combinable() {
            return self.write_combining(self.policy.route(key), CombineOp::Put { key, val });
        }
        self.write_shard(key, |shard, now| (shard.put_live(key, val, now), true))
    }

    /// Removes `key` under the shard lock, returning its **live** value
    /// (an expired binding reports `None` and is physically dropped).
    ///
    /// A miss releases with `revert`: the critical section modified
    /// nothing, so optimistic readers must not see a version bump.
    pub fn remove(&self, key: Key) -> Option<Val> {
        if self.combinable() {
            return self.write_combining(self.policy.route(key), CombineOp::Remove { key });
        }
        self.write_shard(key, |shard, now| shard.remove_live(key, now))
    }

    /// Involved shard indices, ascending and deduplicated — the canonical
    /// acquisition order for every batched operation.
    fn shard_ids(&self, keys: impl Iterator<Item = Key>) -> Vec<usize> {
        let mut ids: Vec<usize> = keys.map(|k| self.policy.route(k)).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Raw per-key lookup used inside already-validated batched reads.
    fn read_raw(&self, key: Key, now: Option<u64>) -> Option<Val> {
        let shard = &self.shards[self.policy.route(key)];
        let val = shard.map.get(key);
        match (now, &shard.deadlines) {
            (Some(now), Some(dl)) => val.filter(|_| !dl.get(key).is_some_and(|d| d <= now)),
            _ => val,
        }
    }

    /// Routes every key once and plans the batch: the distinct shard
    /// set (one OPTIK window each) plus the probe order. Hash-routed
    /// stores get the flat plan — probes stay in arrival order, because
    /// a hashed backend scatters keys whatever order they arrive in,
    /// and any sort is pure overhead (a comparison sort here measured
    /// ~25% of end-to-end multi-get throughput at batch 16).
    /// Contiguous-partition stores get the grouped plan — a stable
    /// `O(keys + shards)` counting sort clusters probes by shard and
    /// key-sorts each span, so ordered backends are walked
    /// front-to-back (adjacent probes re-walk the warm front of the
    /// same traversal path instead of restarting cold). The within-span
    /// key sorts run on tiny slices where `sort_unstable` is
    /// insertion-class.
    fn group_probes(&self, keys: &[Key], plan: &mut ProbePlan) {
        let n = keys.len();
        let ns = self.shards.len();
        let ProbePlan {
            probes,
            flat,
            routed,
            stamp,
            epoch,
            shards_hit,
            spans,
            ..
        } = plan;
        if stamp.len() < ns {
            stamp.resize(ns, 0);
        }
        shards_hit.clear();
        spans.clear();
        probes.clear();
        flat.clear();
        if !self.policy.key_ordered_shards() {
            // Flat mode: probes run in arrival order, so the plan is
            // just the routed shard per key; the epoch-stamped seen
            // array collects the distinct shard set in the same pass.
            *epoch += 1;
            let e = *epoch;
            flat.extend(keys.iter().map(|&k| {
                let s = self.policy.route(k);
                if stamp[s] != e {
                    stamp[s] = e;
                    shards_hit.push(s);
                }
                s as u32
            }));
            return;
        }
        // Grouped mode: one routing pass builds the tuples and the shard
        // occupancy (`stamp` doubles as the counting-sort cursor array);
        // prefix sums yield the spans, a scatter pass orders the probes
        // by shard, and each span is key-sorted so the ordered backend
        // is walked front-to-back.
        routed.clear();
        for c in stamp[..ns].iter_mut() {
            *c = 0;
        }
        routed.extend(keys.iter().enumerate().map(|(i, &k)| {
            let s = self.policy.route(k);
            stamp[s] += 1;
            (s, k, i as u32)
        }));
        let mut acc = 0usize;
        for (s, c) in stamp[..ns].iter_mut().enumerate() {
            let cnt = *c as usize;
            if cnt > 0 {
                shards_hit.push(s);
                spans.push((acc, acc + cnt));
            }
            *c = acc as u64;
            acc += cnt;
        }
        probes.resize(n, (0, 0, 0));
        for &p in routed.iter() {
            let dst = &mut stamp[p.0];
            probes[*dst as usize] = p;
            *dst += 1;
        }
        // The cursor values are small and could collide with a future
        // epoch — re-zero so a later flat-mode plan through the same
        // scratch can trust its stamps.
        for c in stamp[..ns].iter_mut() {
            *c = 0;
        }
        for &(a, b) in spans.iter() {
            probes[a..b].sort_unstable_by_key(|&(_, k, _)| k);
        }
    }

    /// Probes one shard-group (already under a validated window or the
    /// shard lock), scattering results back to input order.
    fn probe_group(
        &self,
        shard: &Shard<B>,
        probes: &[(usize, Key, u32)],
        now: Option<u64>,
        out: &mut [Option<Val>],
    ) {
        for &(_, k, i) in probes {
            let val = shard.map.get(k);
            out[i as usize] = match (now, &shard.deadlines) {
                (Some(now), Some(dl)) => val.filter(|_| !dl.get(k).is_some_and(|d| d <= now)),
                _ => val,
            };
        }
    }

    /// Runs every planned probe against its pre-routed shard (already
    /// under validated windows or the shard locks): flat arrival order
    /// when the plan is flat, shard-clustered otherwise.
    fn probe_plan(
        &self,
        keys: &[Key],
        plan: &ProbePlan,
        now: Option<u64>,
        out: &mut [Option<Val>],
    ) {
        if !plan.flat.is_empty() {
            if now.is_none() {
                // No TTL: the zipped loop is bounds-check-free and
                // writes `out` sequentially.
                for ((&k, &s), slot) in keys.iter().zip(&plan.flat).zip(out.iter_mut()) {
                    *slot = self.shards[s as usize].map.get(k);
                }
            } else {
                for ((&k, &s), slot) in keys.iter().zip(&plan.flat).zip(out.iter_mut()) {
                    let shard = &self.shards[s as usize];
                    let val = shard.map.get(k);
                    *slot = match (now, &shard.deadlines) {
                        (Some(now), Some(dl)) => {
                            val.filter(|_| !dl.get(k).is_some_and(|d| d <= now))
                        }
                        _ => val,
                    };
                }
            }
        } else {
            for (&s, &(a, b)) in plan.shards_hit.iter().zip(&plan.spans) {
                self.probe_group(&self.shards[s], &plan.probes[a..b], now, out);
            }
        }
    }

    /// Atomically reads every key: the returned values coexisted at one
    /// linearization point, even across shards.
    ///
    /// Locality-aware and optimistic (no locks) in the common case: keys
    /// are routed once, one shard version is read per *involved shard*
    /// — all before the first value read — the probes run (clustered by
    /// shard and key-sorted on contiguous-partition stores, in arrival
    /// order on hash-routed stores; see `group_probes`), and every
    /// shard's window is validated after the last read. All value reads
    /// therefore fall inside every involved shard's `[version read,
    /// validate]` window, so any instant between the last version read
    /// and the first validation is a common linearization point. After
    /// eight failed rounds it degrades to locking the involved shards in
    /// ascending order (read-only, released with `revert`) and probing
    /// the same plan under the locks, re-validating the shard set
    /// against racing migrations.
    ///
    /// Planning scratch lives in a thread-local (`PROBE_PLAN`), so a
    /// steady-state call allocates only the result vector.
    pub fn multi_get(&self, keys: &[Key]) -> Vec<Option<Val>> {
        if keys.is_empty() {
            return Vec::new();
        }
        PROBE_PLAN.with(|cell| {
            let mut plan = cell.borrow_mut();
            self.multi_get_planned(keys, &mut plan)
        })
    }

    fn multi_get_planned(&self, keys: &[Key], plan: &mut ProbePlan) -> Vec<Option<Val>> {
        let dynamic = self.dynamic;
        let mut bo = Backoff::adaptive();
        let t0 = optik_probe::now();
        let mut retried = false;
        let mut out = vec![None; keys.len()];
        // Static routing cannot move a key between shards, so the
        // grouping survives any number of attempts; dynamic routing is
        // re-grouped per attempt under the `policy.version()` guard.
        if !dynamic {
            self.group_probes(keys, plan);
        }
        for _ in 0..OPTIMISTIC_ATTEMPTS {
            let rv = self.policy.version();
            if dynamic {
                self.group_probes(keys, plan);
            }
            plan.versions.clear();
            plan.versions.extend(
                plan.shards_hit
                    .iter()
                    .map(|&s| self.shards[s].lock.get_version_wait()),
            );
            // Clock sample inside the validated window (see
            // `read_entry`): all (value, deadline) pairs are stable
            // until `validate`, so the batch linearizes at this tick.
            let now = self.now_opt();
            self.probe_plan(keys, plan, now, &mut out);
            if self.policy.validate(rv)
                && plan
                    .shards_hit
                    .iter()
                    .zip(&plan.versions)
                    .all(|(&s, &v)| self.shards[s].lock.validate(v))
            {
                if dynamic {
                    for &s in &plan.shards_hit {
                        self.shards[s].ops.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if retried {
                    record_retry_loop(t0);
                }
                return out;
            }
            optik_probe::count(optik_probe::Event::ReadRetry);
            retried = true;
            bo.backoff();
        }
        record_retry_loop(t0);
        // Contended fallback: sorted acquisition, guaranteed progress
        // (lock_batch revalidates the shard set against racing
        // migrations and maintains the load counters). Routing is frozen
        // under the locks, so the groups rebuilt here stay accurate.
        let ids = self.lock_batch(&|| self.shard_ids(keys.iter().copied()));
        self.group_probes(keys, plan);
        let now = self.now_opt();
        self.probe_plan(keys, plan, now, &mut out);
        for &i in ids.iter().rev() {
            self.shards[i].lock.revert();
        }
        out
    }

    /// The pre-grouping [`KvStore::multi_get`]: re-routes every key on
    /// every probe and validates the involved shard set collected by
    /// `KvStore::shard_ids`. Same results and the same atomicity
    /// guarantee — kept as the A-side of the `kv.multiget.*` interleaved
    /// benchmark twins, so the grouped path's gain stays measurable.
    pub fn multi_get_per_key(&self, keys: &[Key]) -> Vec<Option<Val>> {
        let dynamic = self.dynamic;
        let mut bo = Backoff::adaptive();
        let t0 = optik_probe::now();
        let mut retried = false;
        for _ in 0..OPTIMISTIC_ATTEMPTS {
            let rv = self.policy.version();
            let ids = self.shard_ids(keys.iter().copied());
            let versions: Vec<optik::Version> = ids
                .iter()
                .map(|&i| self.shards[i].lock.get_version_wait())
                .collect();
            let now = self.now_opt();
            let out: Vec<Option<Val>> = keys.iter().map(|&k| self.read_raw(k, now)).collect();
            if self.policy.validate(rv)
                && ids
                    .iter()
                    .zip(&versions)
                    .all(|(&i, &v)| self.shards[i].lock.validate(v))
            {
                if dynamic {
                    for &i in &ids {
                        self.shards[i].ops.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if retried {
                    record_retry_loop(t0);
                }
                return out;
            }
            optik_probe::count(optik_probe::Event::ReadRetry);
            retried = true;
            bo.backoff();
        }
        record_retry_loop(t0);
        let ids = self.lock_batch(&|| self.shard_ids(keys.iter().copied()));
        let now = self.now_opt();
        let out = keys.iter().map(|&k| self.read_raw(k, now)).collect();
        for &i in ids.iter().rev() {
            self.shards[i].lock.revert();
        }
        out
    }

    /// Locks every shard of `ids` ascending, re-validating the shard set
    /// for `keys` under dynamic routing. Returns the stable shard set.
    fn lock_batch(&self, keys_of: &dyn Fn() -> Vec<usize>) -> Vec<usize> {
        let dynamic = self.dynamic;
        loop {
            let ids = keys_of();
            for &i in &ids {
                self.shards[i].lock.lock();
            }
            if dynamic && keys_of() != ids {
                for &i in ids.iter().rev() {
                    self.shards[i].lock.revert();
                }
                continue;
            }
            if dynamic {
                for &i in &ids {
                    self.shards[i].ops.fetch_add(1, Ordering::Relaxed);
                }
            }
            return ids;
        }
    }

    /// Atomically applies every `(key, val)` upsert, returning the
    /// previous **live** value per entry. Entries with duplicate keys
    /// apply in order (the later previous-value observes the earlier
    /// entry). On TTL stores each touched key's deadline is cleared,
    /// exactly as for [`KvStore::put`].
    ///
    /// All involved shard locks are acquired in ascending shard order
    /// before the first write and released (in reverse) after the last, so
    /// concurrent batches over overlapping shard sets cannot deadlock and
    /// no *validated* reader ([`KvStore::multi_get`], [`KvStore::scan`])
    /// sees a partially applied batch. Lock-free single-key gets do not
    /// validate shard versions and may observe a batch mid-application —
    /// per-key atomicity is the most a single-key read can claim.
    pub fn multi_put(&self, entries: &[(Key, Val)]) -> Vec<Option<Val>> {
        // Hot-batch fast path: a batch whose keys all route to one shard
        // (the common shape under key affinity) publishes as a single
        // combinable op — one slot, one lock hold, one version bump —
        // instead of paying the sorted lock_batch machinery.
        if self.combinable() && !entries.is_empty() {
            let s = self.policy.route(entries[0].0);
            if entries.iter().all(|&(k, _)| self.policy.route(k) == s) {
                let mut prevs: Vec<Option<Val>> = vec![None; entries.len()];
                let resp = self.write_combining(
                    s,
                    CombineOp::PutBatch {
                        entries: entries.as_ptr(),
                        len: entries.len(),
                        prevs: prevs.as_mut_ptr(),
                    },
                );
                debug_assert!(resp.is_none(), "batch results travel via `prevs`");
                return prevs;
            }
        }
        let ids = self.lock_batch(&|| self.shard_ids(entries.iter().map(|&(k, _)| k)));
        let now = self.now_opt();
        let out = entries
            .iter()
            .map(|&(k, v)| self.shards[self.policy.route(k)].put_live(k, v, now))
            .collect();
        for &i in ids.iter().rev() {
            self.shards[i].lock.unlock();
        }
        out
    }

    /// Atomically removes every key, returning the removed **live** value
    /// per key (expired bindings report `None` and are dropped). Shards
    /// whose maps end up unmodified release with `revert`.
    pub fn multi_remove(&self, keys: &[Key]) -> Vec<Option<Val>> {
        let ids = self.lock_batch(&|| self.shard_ids(keys.iter().copied()));
        let now = self.now_opt();
        let mut modified = vec![false; ids.len()];
        let out: Vec<Option<Val>> = keys
            .iter()
            .map(|&k| {
                let s = self.policy.route(k);
                let shard = &self.shards[s];
                let slot = ids.binary_search(&s).expect("shard id collected above");
                if now.is_some_and(|now| shard.drop_expired(k, now)) {
                    modified[slot] = true;
                }
                let removed = shard.map.remove(k);
                if removed.is_some() {
                    if let Some(dl) = &shard.deadlines {
                        dl.remove(k);
                    }
                    modified[slot] = true;
                }
                removed
            })
            .collect();
        for (&i, &m) in ids.iter().zip(&modified).rev() {
            if m {
                self.shards[i].lock.unlock();
            } else {
                self.shards[i].lock.revert();
            }
        }
        out
    }

    /// One shard's entries as a version-consistent snapshot: optimistic
    /// collect-and-validate, falling back to the shard lock. TTL stores
    /// filter expired entries inside the validated section.
    fn shard_snapshot(&self, i: usize, buf: &mut Vec<(Key, Val)>) {
        let shard = &self.shards[i];
        let mut bo = Backoff::adaptive();
        for _ in 0..OPTIMISTIC_ATTEMPTS {
            buf.clear();
            let v = shard.lock.get_version_wait();
            shard.map.for_each(&mut |k, val| buf.push((k, val)));
            // Clock sample inside the validated window (see
            // `read_entry`): the snapshot linearizes at this tick.
            self.filter_expired(shard, buf, self.now_opt());
            if shard.lock.validate(v) {
                return;
            }
            bo.backoff();
        }
        buf.clear();
        shard.lock.lock();
        shard.map.for_each(&mut |k, val| buf.push((k, val)));
        self.filter_expired(shard, buf, self.now_opt());
        shard.lock.revert(); // read-only critical section
    }

    /// Streams every entry, shard by shard. Each shard's entries form a
    /// consistent snapshot (no torn writes, no half-applied batches within
    /// the shard); the store-wide view is per-shard sequential, like a
    /// QSBR-epoch scan — shards visited earlier may have mutated by the
    /// time later shards are read. Under a dynamic routing policy the
    /// whole walk additionally validates the routing version (so a
    /// concurrent boundary migration cannot show a moving key twice or
    /// not at all), falling back to locking every shard.
    pub fn scan(&self, mut f: impl FnMut(Key, Val)) {
        let mut buf = Vec::new();
        if !self.dynamic {
            for i in 0..self.shards.len() {
                self.shard_snapshot(i, &mut buf);
                for &(k, v) in &buf {
                    f(k, v);
                }
            }
            return;
        }
        let mut all: Vec<(Key, Val)> = Vec::new();
        let mut bo = Backoff::adaptive();
        for _ in 0..OPTIMISTIC_ATTEMPTS {
            all.clear();
            let rv = self.policy.version();
            for i in 0..self.shards.len() {
                self.shard_snapshot(i, &mut buf);
                all.append(&mut buf);
            }
            if self.policy.validate(rv) {
                for &(k, v) in &all {
                    f(k, v);
                }
                return;
            }
            bo.backoff();
        }
        // Migration storm: lock every shard (ascending — the same total
        // order as every other batch path, and the rebalancer's own
        // acquisition order, so no deadlock) and collect exactly.
        let now = self.now_opt();
        all.clear();
        for s in self.shards.iter() {
            s.lock.lock();
        }
        for s in self.shards.iter() {
            buf.clear();
            s.map.for_each(&mut |k, val| buf.push((k, val)));
            self.filter_expired(s, &mut buf, now);
            all.append(&mut buf);
        }
        for s in self.shards.iter().rev() {
            s.lock.revert();
        }
        for &(k, v) in &all {
            f(k, v);
        }
    }

    /// Collects [`KvStore::scan`] into a key-sorted vector.
    pub fn snapshot(&self) -> Vec<(Key, Val)> {
        let mut out = Vec::new();
        self.scan(|k, v| out.push((k, v)));
        out.sort_unstable();
        out
    }

    /// Total entries across shards (O(n); exact only in quiescence; on
    /// TTL stores this counts *physical* entries, including expired ones
    /// the sweeper has not reclaimed yet).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.map.len()).sum()
    }

    /// Whether the store is empty (see [`KvStore::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// The store is itself a `ConcurrentMap`: composable (shards of shards) and
// enrolled in the registry-driven correctness tiers like any backend.
impl<B: ConcurrentMap> ConcurrentMap for KvStore<B> {
    fn get(&self, key: Key) -> Option<Val> {
        KvStore::get(self, key)
    }
    fn put(&self, key: Key, val: Val) -> Option<Val> {
        KvStore::put(self, key, val)
    }
    fn remove(&self, key: Key) -> Option<Val> {
        KvStore::remove(self, key)
    }
    fn len(&self) -> usize {
        KvStore::len(self)
    }
    fn for_each(&self, f: &mut dyn FnMut(Key, Val)) {
        // Raw backend sweep (quiescence-consistent, per the trait
        // contract); `scan` is the validated variant. TTL stores still
        // hide logically-expired entries — raw deadline reads suffice
        // for a sweep that never promised a consistent point in time.
        let now = self.now_opt();
        for s in self.shards.iter() {
            match (now, &s.deadlines) {
                (Some(now), Some(dl)) => s.map.for_each(&mut |k, v| {
                    if !dl.get(k).is_some_and(|d| d <= now) {
                        f(k, v);
                    }
                }),
                _ => s.map.for_each(f),
            }
        }
    }
}

impl<B: OrderedMap> KvStore<B> {
    /// Creates an **ordered-sharded** store: `shards` contiguous key
    /// partitions covering `[1, max_key]` (keys above `max_key` fall into
    /// the last shard), each backed by `make(shard_index)`.
    ///
    /// Range scans on an ordered-sharded store touch only the shards the
    /// window intersects and concatenate their (already sorted) partition
    /// scans without a merge step. Point operations work exactly as under
    /// hash sharding — only the key→shard map differs — but load balance
    /// now follows the key distribution: the online rebalancer
    /// ([`KvStore::rebalance_round`], [`KvStore::shift_boundary`]) exists
    /// to move partition boundaries when it does not.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `max_key` is zero.
    pub fn with_ordered_shards(shards: usize, max_key: Key, make: impl FnMut(usize) -> B) -> Self {
        Self::build(
            Box::new(RangePolicy::contiguous(shards, max_key)),
            None,
            make,
        )
    }

    /// [`KvStore::with_ordered_shards`] with native TTL support (see
    /// [`KvStore::with_shards_ttl`] for the `make` contract).
    pub fn with_ordered_shards_ttl(
        shards: usize,
        max_key: Key,
        clock: Arc<dyn Clock>,
        make: impl FnMut(usize) -> B,
    ) -> Self {
        Self::build(
            Box::new(RangePolicy::contiguous(shards, max_key)),
            Some(clock),
            make,
        )
    }

    /// One shard's `[lo, hi]` window as a version-consistent snapshot:
    /// optimistic collect-and-validate, falling back to the shard lock
    /// (under which the backend's range pass is exact — writers are
    /// excluded, so the backend traversal sees a quiescent structure).
    fn shard_range(&self, i: usize, lo: Key, hi: Key, buf: &mut Vec<(Key, Val)>) {
        let shard = &self.shards[i];
        let mut bo = Backoff::adaptive();
        for _ in 0..OPTIMISTIC_ATTEMPTS {
            buf.clear();
            let t0 = optik_probe::now();
            let v = shard.lock.get_version_wait();
            shard.map.range(lo, hi, &mut |k, val| buf.push((k, val)));
            // Clock sample inside the validated window (see
            // `read_entry`): the window scan linearizes at this tick.
            self.filter_expired(shard, buf, self.now_opt());
            if shard.lock.validate(v) {
                optik_probe::record(
                    optik_probe::HistKind::ValidationWindow,
                    optik_probe::elapsed(t0, optik_probe::now()),
                );
                return;
            }
            optik_probe::count(optik_probe::Event::ReadRetry);
            bo.backoff();
        }
        buf.clear();
        shard.lock.lock();
        shard.map.range(lo, hi, &mut |k, val| buf.push((k, val)));
        self.filter_expired(shard, buf, self.now_opt());
        shard.lock.revert(); // read-only critical section
    }

    /// Collects every entry with key in `[lo, hi]`, sorted by key, each
    /// shard's contribution a version-consistent snapshot (the same
    /// guarantee as [`KvStore::scan`], restricted to the window).
    ///
    /// Under ordered sharding only the shards intersecting the window are
    /// visited, in key order, so the result is a concatenation — and the
    /// routing version is validated across the whole walk, so a window
    /// raced by a boundary migration retries rather than missing or
    /// double-counting migrated keys (after eight failed rounds: lock
    /// every shard, under which routing is frozen and the passes are
    /// exact). Under hash sharding every shard is visited and the result
    /// is sorted afterwards.
    pub fn range_scan(&self, lo: Key, hi: Key) -> Vec<(Key, Val)> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        let mut buf = Vec::new();
        if self.policy.range_cover(lo, hi).is_none() {
            for i in 0..self.shards.len() {
                self.shard_range(i, lo, hi, &mut buf);
                out.append(&mut buf);
            }
            out.sort_unstable();
            return out;
        }
        let mut bo = Backoff::adaptive();
        for _ in 0..OPTIMISTIC_ATTEMPTS {
            out.clear();
            let rv = self.policy.version();
            let (first, last) = self
                .policy
                .range_cover(lo, hi)
                .expect("contiguous policy stays contiguous");
            for i in first..=last {
                self.shard_range(i, lo, hi, &mut buf);
                out.append(&mut buf);
            }
            if self.policy.validate(rv) {
                return out;
            }
            optik_probe::count(optik_probe::Event::ReadRetry);
            bo.backoff();
        }
        // Migration storm: lock every shard — routing is frozen and the
        // backend passes are exact.
        out.clear();
        for s in self.shards.iter() {
            s.lock.lock();
        }
        let now = self.now_opt();
        let (first, last) = self
            .policy
            .range_cover(lo, hi)
            .expect("contiguous policy stays contiguous");
        for i in first..=last {
            buf.clear();
            self.shards[i]
                .map
                .range(lo, hi, &mut |k, v| buf.push((k, v)));
            self.filter_expired(&self.shards[i], &mut buf, now);
            out.append(&mut buf);
        }
        for s in self.shards.iter().rev() {
            s.lock.revert();
        }
        out
    }
}

// An ordered-backed store is itself an `OrderedMap`: stores nest, and the
// range-observing correctness tiers drive `KvStore` and raw backends
// through one interface.
impl<B: OrderedMap> OrderedMap for KvStore<B> {
    fn range(&self, lo: Key, hi: Key, f: &mut dyn FnMut(Key, Val)) {
        for (k, v) in self.range_scan(lo, hi) {
            f(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optik_hashtables::StripedOptikHashTable;
    use optik_maps::OptikArrayMap;
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::Arc;

    fn striped_store(shards: usize) -> KvStore<StripedOptikHashTable> {
        KvStore::with_shards(shards, |_| StripedOptikHashTable::new(64, 8))
    }

    #[test]
    fn single_key_roundtrip() {
        let s = striped_store(4);
        assert_eq!(s.get(1), None);
        assert_eq!(s.put(1, 10), None);
        assert_eq!(s.put(1, 11), Some(10));
        assert_eq!(s.get(1), Some(11));
        assert_eq!(s.remove(1), Some(11));
        assert_eq!(s.remove(1), None);
        assert!(s.is_empty());
    }

    #[test]
    fn array_map_backend_works_too() {
        let s: KvStore<OptikArrayMap> = KvStore::with_shards(4, |_| OptikArrayMap::new(128));
        for k in 1..=100u64 {
            assert_eq!(s.put(k, k * 2), None);
        }
        assert_eq!(s.len(), 100);
        for k in 1..=100u64 {
            assert_eq!(s.get(k), Some(k * 2));
        }
    }

    #[test]
    fn keys_spread_across_shards() {
        let s = striped_store(8);
        let mut hit = vec![false; 8];
        for k in 1..=1_000u64 {
            hit[s.shard_of(k)] = true;
        }
        assert!(hit.iter().all(|&h| h), "some shard never selected: {hit:?}");
    }

    #[test]
    fn batched_ops_roundtrip_and_report_prev_values() {
        let s = striped_store(4);
        let entries: Vec<(u64, u64)> = (1..=20).map(|k| (k, k * 10)).collect();
        assert!(s.multi_put(&entries).iter().all(Option::is_none));
        let keys: Vec<u64> = (1..=20).collect();
        assert_eq!(
            s.multi_get(&keys),
            (1..=20).map(|k| Some(k * 10)).collect::<Vec<_>>()
        );
        // Overwrite half, remove the other half.
        let overwrite: Vec<(u64, u64)> = (1..=10).map(|k| (k, k * 100)).collect();
        assert_eq!(
            s.multi_put(&overwrite),
            (1..=10).map(|k| Some(k * 10)).collect::<Vec<_>>()
        );
        let gone: Vec<u64> = (11..=20).collect();
        assert_eq!(
            s.multi_remove(&gone),
            (11..=20).map(|k| Some(k * 10)).collect::<Vec<_>>()
        );
        assert_eq!(s.len(), 10);
        // Misses come back as None, in input order.
        assert_eq!(s.multi_get(&[5, 15, 7]), vec![Some(500), None, Some(700)]);
    }

    #[test]
    fn duplicate_keys_in_one_batch_apply_in_order() {
        let s = striped_store(2);
        let prev = s.multi_put(&[(1, 10), (1, 20), (1, 30)]);
        assert_eq!(prev, vec![None, Some(10), Some(20)]);
        assert_eq!(s.get(1), Some(30));
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let s = striped_store(4);
        for k in (1..=50u64).rev() {
            s.put(k, k + 1000);
        }
        let snap = s.snapshot();
        assert_eq!(snap.len(), 50);
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "sorted by key");
        assert!(snap.iter().all(|&(k, v)| v == k + 1000));
    }

    #[test]
    fn failed_remove_does_not_bump_shard_version() {
        let s = striped_store(1);
        s.put(1, 10);
        let v = s.shards[0].lock.get_version();
        assert_eq!(s.remove(999), None);
        assert_eq!(s.multi_remove(&[998, 997]), vec![None, None]);
        assert_eq!(
            s.shards[0].lock.get_version(),
            v,
            "read-only paths must not signal conflicts"
        );
        assert_eq!(s.remove(1), Some(10));
        assert_ne!(s.shards[0].lock.get_version(), v);
    }

    #[test]
    fn hash_stores_skip_the_load_counters() {
        let s = striped_store(2);
        for k in 1..=64u64 {
            s.put(k, k);
            s.get(k);
        }
        assert!(
            s.shard_loads().iter().all(|&c| c == 0),
            "static routing must not pay for rebalance accounting"
        );
    }

    #[test]
    fn concurrent_mixed_ops_keep_exact_net_count() {
        let s = Arc::new(striped_store(4));
        let net = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = Arc::clone(&s);
            let net = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                for _ in 0..synchro::stress::ops(20_000) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % 64 + 1;
                    match x % 3 {
                        0 => {
                            if s.put(k, k * 3).is_none() {
                                net.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        1 => {
                            if s.remove(k).is_some() {
                                net.fetch_sub(1, Ordering::Relaxed);
                            }
                        }
                        _ => {
                            if let Some(v) = s.get(k) {
                                assert_eq!(v, k * 3);
                            }
                        }
                    }
                }
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(s.len() as i64, net.load(Ordering::Relaxed));
    }

    #[test]
    fn eager_combining_matches_plain_semantics() {
        // Every write travels the full publish → combine → poll protocol
        // (self-drained when uncontended) and must be observably
        // identical to the plain path.
        let s = striped_store(2).with_combine_mode(CombineMode::Eager);
        assert_eq!(s.put(1, 10), None);
        assert_eq!(s.put(1, 11), Some(10));
        assert_eq!(s.get(1), Some(11));
        assert_eq!(s.remove(1), Some(11));
        assert_eq!(s.remove(1), None);
        // Single-shard batch via the PutBatch fast path (1 shard ⇒ every
        // batch is single-shard), duplicate keys applying in order.
        let s1 = striped_store(1).with_combine_mode(CombineMode::Eager);
        assert_eq!(
            s1.multi_put(&[(7, 70), (7, 71), (8, 80)]),
            vec![None, Some(70), None]
        );
        assert_eq!(s1.get(7), Some(71));
        assert_eq!(s1.get(8), Some(80));
    }

    #[test]
    fn combining_failed_ops_still_release_with_revert() {
        // The combined remove-miss must preserve the no-false-conflict
        // guarantee the plain path has (`failed_remove_does_not_bump_...`).
        let s = striped_store(1).with_combine_mode(CombineMode::Eager);
        s.put(1, 10);
        let v = s.shards[0].lock.get_version();
        assert_eq!(s.remove(999), None);
        assert_eq!(
            s.shards[0].lock.get_version(),
            v,
            "a drained batch of misses must not signal a conflict"
        );
    }

    #[test]
    fn eager_combining_concurrent_ops_keep_exact_net_count() {
        // The concurrent-mixed-ops invariant, forced through the
        // publication protocol on a deliberately tiny shard count so
        // combiners drain real multi-op batches.
        let s = Arc::new(striped_store(1).with_combine_mode(CombineMode::Eager));
        let net = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = Arc::clone(&s);
            let net = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                for _ in 0..synchro::stress::ops(20_000) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % 16 + 1;
                    match x % 3 {
                        0 => {
                            if s.put(k, k * 3).is_none() {
                                net.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        1 => {
                            if s.remove(k).is_some() {
                                net.fetch_sub(1, Ordering::Relaxed);
                            }
                        }
                        _ => {
                            if let Some(v) = s.get(k) {
                                assert_eq!(v, k * 3);
                            }
                        }
                    }
                }
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(s.len() as i64, net.load(Ordering::Relaxed));
    }

    #[test]
    fn combining_respects_ttl_expiry() {
        use crate::ttl::FakeClock;
        let clock = Arc::new(FakeClock::new());
        let mut s: KvStore<StripedOptikHashTable> =
            KvStore::with_shards_ttl(1, clock.clone(), |_| StripedOptikHashTable::new(64, 8));
        s.set_combine_mode(CombineMode::Eager);
        s.put_with_ttl(1, 10, 5);
        clock.advance(10);
        // The combined put must normalize the expired previous binding
        // exactly like the plain path: prev reports None, not Some(10).
        assert_eq!(s.put(1, 11), None);
        assert_eq!(s.get(1), Some(11));
    }

    // Concurrent batch atomicity, deadlock freedom, snapshot consistency,
    // TTL expiry under churn, and migration atomicity are exercised at
    // scale (and across shard counts and backends) by the dedicated
    // stress tier in `tests/integration_kv.rs`.

    use optik_bsts::OptikBst;
    use optik_skiplists::{HerlihyOptikSkipList, OptikSkipList2};

    #[test]
    fn ordered_sharding_partitions_contiguously() {
        let s: KvStore<OptikSkipList2> =
            KvStore::with_ordered_shards(4, 1000, |_| OptikSkipList2::new());
        assert_eq!(s.shard_of(1), 0);
        assert_eq!(s.shard_of(250), 0);
        assert_eq!(s.shard_of(251), 1);
        assert_eq!(s.shard_of(1000), 3);
        // Keys beyond max_key fall into the last shard, never out of range.
        assert_eq!(s.shard_of(u64::MAX - 1), 3);
        // Partitions are ascending: a smaller key never lands in a later
        // shard than a bigger one.
        let mut prev = 0;
        for k in 1..=1000u64 {
            let sh = s.shard_of(k);
            assert!(sh >= prev, "shard map not monotonic at {k}");
            prev = sh;
        }
    }

    #[test]
    fn range_scan_returns_sorted_window_on_both_shardings() {
        let hash: KvStore<HerlihyOptikSkipList> =
            KvStore::with_shards(4, |_| HerlihyOptikSkipList::new());
        let ordered: KvStore<HerlihyOptikSkipList> =
            KvStore::with_ordered_shards(4, 400, |_| HerlihyOptikSkipList::new());
        for s in [&hash, &ordered] {
            for k in (2..=400u64).step_by(2) {
                s.put(k, k * 10);
            }
            let win = s.range_scan(100, 200);
            let want: Vec<(u64, u64)> = (100..=200u64)
                .filter(|k| k % 2 == 0)
                .map(|k| (k, k * 10))
                .collect();
            assert_eq!(win, want);
            assert!(s.range_scan(401, 500).is_empty());
            assert!(s.range_scan(7, 7).is_empty(), "odd keys were never put");
            assert_eq!(s.range_scan(8, 8), vec![(8, 80)]);
            assert!(s.range_scan(10, 9).is_empty(), "inverted window");
        }
    }

    #[test]
    fn range_scan_works_over_bst_shards() {
        let s: KvStore<OptikBst> = KvStore::with_ordered_shards(3, 300, |_| OptikBst::new());
        for k in 1..=300u64 {
            assert_eq!(s.put(k, k + 7), None);
        }
        assert_eq!(s.put(42, 1000), Some(49), "in-place update through shard");
        let all = s.range_scan(1, 300);
        assert_eq!(all.len(), 300);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(s.range_scan(42, 42), vec![(42, 1000)]);
    }

    #[test]
    fn kv_store_is_itself_an_ordered_map() {
        // Nesting: a store of stores, ranged through the trait.
        let s: KvStore<KvStore<OptikSkipList2>> = KvStore::with_ordered_shards(2, 100, |_| {
            KvStore::with_ordered_shards(2, 100, |_| OptikSkipList2::new())
        });
        for k in [5u64, 50, 95] {
            s.put(k, k);
        }
        let got = OrderedMap::range_collect(&s, 1, 100);
        assert_eq!(got, vec![(5, 5), (50, 50), (95, 95)]);
    }

    #[test]
    fn custom_policies_plug_in() {
        // A deliberately silly policy: parity routing. The store must
        // route, batch, and scan through it like any built-in.
        struct ParityPolicy;
        impl ShardPolicy for ParityPolicy {
            fn num_shards(&self) -> usize {
                2
            }
            fn route(&self, key: Key) -> usize {
                (key % 2) as usize
            }
        }
        let s: KvStore<StripedOptikHashTable> =
            KvStore::with_policy(Box::new(ParityPolicy), |_| {
                StripedOptikHashTable::new(32, 8)
            });
        for k in 1..=40u64 {
            s.put(k, k);
        }
        assert_eq!(s.shard_of(7), 1);
        assert_eq!(s.shard_of(8), 0);
        assert_eq!(s.multi_get(&[3, 4]), vec![Some(3), Some(4)]);
        assert_eq!(s.snapshot().len(), 40);
    }
}
