//! The sharded store: per-shard OPTIK version locks over a pluggable
//! [`ConcurrentMap`] backend.

use optik::{OptikLock, OptikVersioned};
use synchro::{Backoff, CachePadded};

use optik_harness::api::{ConcurrentMap, Key, OrderedMap, Val};

/// Optimistic attempts per shard before a cross-shard read operation
/// (multi-get, scan, range scan) falls back to taking the shard lock(s).
const OPTIMISTIC_ATTEMPTS: usize = 8;

struct Shard<B> {
    /// Guards every *write* to `map` (single-key and batched) and arbitrates
    /// read-side validation: multi-gets and scans read optimistically and
    /// validate against this version, OPTIK style, instead of locking.
    lock: OptikVersioned,
    map: B,
}

/// How keys map to shards.
enum Sharding {
    /// Fibonacci-spread hashing (the default): uniform load, but a key
    /// range intersects every shard.
    Hash,
    /// Contiguous key partitions of `span` keys each (shard `i` owns
    /// `[1 + i*span, i*span + span]`, the last shard additionally owning
    /// everything above): range scans touch only the shards their window
    /// intersects, at the cost of hot ranges loading single shards.
    Range {
        /// Keys per partition.
        span: u64,
    },
}

/// A sharded key–value store over a pluggable [`ConcurrentMap`] backend.
///
/// Keys hash (Fibonacci spread, high bits) to one of N shards; each shard
/// pairs a backend map with an OPTIK version lock:
///
/// - [`KvStore::get`] goes straight to the backend, lock-free — the
///   backends are linearizable maps on their own;
/// - [`KvStore::put`] / [`KvStore::remove`] run under their shard's lock,
///   so shard versions count completed writes;
/// - batched operations ([`KvStore::multi_put`], [`KvStore::multi_remove`])
///   acquire every involved shard lock **in ascending shard order** —
///   the classic total-order claim that makes overlapping batches
///   deadlock-free — and apply the whole batch atomically;
/// - [`KvStore::multi_get`] and [`KvStore::scan`] are optimistic: read the
///   shard versions, read the data, validate — retrying (and eventually
///   falling back to sorted locking) on interference. Traversal safety
///   under concurrent removal comes from the workspace's QSBR domain
///   (`reclaim`): scanning threads are registered participants and do not
///   announce quiescence mid-scan, so retired entries stay readable.
///
/// The store itself implements [`ConcurrentMap`], so a `KvStore` can be
/// nested, benchmarked, and linearizability-checked exactly like the
/// backends it composes.
pub struct KvStore<B> {
    shards: Box<[CachePadded<Shard<B>>]>,
    sharding: Sharding,
}

/// Fibonacci spread; the *high* bits select the shard so backends that
/// bucket by `key % buckets` see an unbiased key stream per shard.
#[inline]
fn spread(key: Key) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl<B: ConcurrentMap> KvStore<B> {
    /// Creates a store with `shards` shards, building each backend with
    /// `make(shard_index)`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(shards: usize, make: impl FnMut(usize) -> B) -> Self {
        Self::build(shards, Sharding::Hash, make)
    }

    fn build(shards: usize, sharding: Sharding, mut make: impl FnMut(usize) -> B) -> Self {
        assert!(shards > 0, "need at least one shard");
        Self {
            shards: (0..shards)
                .map(|i| {
                    CachePadded::new(Shard {
                        lock: OptikVersioned::new(),
                        map: make(i),
                    })
                })
                .collect(),
            sharding,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard index for `key`.
    #[inline]
    pub fn shard_of(&self, key: Key) -> usize {
        match self.sharding {
            Sharding::Hash => ((spread(key) >> 32) % self.shards.len() as u64) as usize,
            Sharding::Range { span } => {
                (((key.saturating_sub(1)) / span) as usize).min(self.shards.len() - 1)
            }
        }
    }

    #[inline]
    fn shard(&self, key: Key) -> &Shard<B> {
        &self.shards[self.shard_of(key)]
    }

    /// Looks up `key`. Lock-free: delegates to the backend.
    #[inline]
    pub fn get(&self, key: Key) -> Option<Val> {
        self.shard(key).map.get(key)
    }

    /// Inserts or atomically updates `key → val` under the shard lock,
    /// returning the previous value.
    pub fn put(&self, key: Key, val: Val) -> Option<Val> {
        let shard = self.shard(key);
        shard.lock.lock();
        let prev = shard.map.put(key, val);
        shard.lock.unlock();
        prev
    }

    /// Removes `key` under the shard lock, returning its value.
    ///
    /// A miss releases with `revert`: the critical section modified
    /// nothing, so optimistic readers must not see a version bump.
    pub fn remove(&self, key: Key) -> Option<Val> {
        let shard = self.shard(key);
        shard.lock.lock();
        let prev = shard.map.remove(key);
        if prev.is_some() {
            shard.lock.unlock();
        } else {
            shard.lock.revert();
        }
        prev
    }

    /// Involved shard indices, ascending and deduplicated — the canonical
    /// acquisition order for every batched operation.
    fn shard_ids(&self, keys: impl Iterator<Item = Key>) -> Vec<usize> {
        let mut ids: Vec<usize> = keys.map(|k| self.shard_of(k)).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Atomically reads every key: the returned values coexisted at one
    /// linearization point, even across shards.
    ///
    /// Optimistic (no locks) in the common case: read all involved shard
    /// versions, read the values, validate every version. After
    /// eight failed rounds it degrades to locking the
    /// shards in ascending order (read-only, released with `revert`).
    pub fn multi_get(&self, keys: &[Key]) -> Vec<Option<Val>> {
        let ids = self.shard_ids(keys.iter().copied());
        let mut bo = Backoff::new();
        for _ in 0..OPTIMISTIC_ATTEMPTS {
            let versions: Vec<optik::Version> = ids
                .iter()
                .map(|&i| self.shards[i].lock.get_version_wait())
                .collect();
            let out: Vec<Option<Val>> = keys.iter().map(|&k| self.get(k)).collect();
            if ids
                .iter()
                .zip(&versions)
                .all(|(&i, &v)| self.shards[i].lock.validate(v))
            {
                return out;
            }
            bo.backoff();
        }
        // Contended fallback: sorted acquisition, guaranteed progress.
        for &i in &ids {
            self.shards[i].lock.lock();
        }
        let out = keys.iter().map(|&k| self.get(k)).collect();
        for &i in ids.iter().rev() {
            self.shards[i].lock.revert();
        }
        out
    }

    /// Atomically applies every `(key, val)` upsert, returning the previous
    /// value per entry. Entries with duplicate keys apply in order (the
    /// later previous-value observes the earlier entry).
    ///
    /// All involved shard locks are acquired in ascending shard order
    /// before the first write and released (in reverse) after the last, so
    /// concurrent batches over overlapping shard sets cannot deadlock and
    /// no *validated* reader ([`KvStore::multi_get`], [`KvStore::scan`])
    /// sees a partially applied batch. Lock-free single-key gets do not
    /// validate shard versions and may observe a batch mid-application —
    /// per-key atomicity is the most a single-key read can claim.
    pub fn multi_put(&self, entries: &[(Key, Val)]) -> Vec<Option<Val>> {
        let ids = self.shard_ids(entries.iter().map(|&(k, _)| k));
        for &i in &ids {
            self.shards[i].lock.lock();
        }
        let out = entries
            .iter()
            .map(|&(k, v)| self.shard(k).map.put(k, v))
            .collect();
        for &i in ids.iter().rev() {
            self.shards[i].lock.unlock();
        }
        out
    }

    /// Atomically removes every key, returning the removed value per key.
    /// Shards whose maps end up unmodified release with `revert`.
    pub fn multi_remove(&self, keys: &[Key]) -> Vec<Option<Val>> {
        let ids = self.shard_ids(keys.iter().copied());
        for &i in &ids {
            self.shards[i].lock.lock();
        }
        let mut modified = vec![false; ids.len()];
        let out: Vec<Option<Val>> = keys
            .iter()
            .map(|&k| {
                let removed = self.shard(k).map.remove(k);
                if removed.is_some() {
                    let slot = ids
                        .binary_search(&self.shard_of(k))
                        .expect("shard id collected above");
                    modified[slot] = true;
                }
                removed
            })
            .collect();
        for (&i, &m) in ids.iter().zip(&modified).rev() {
            if m {
                self.shards[i].lock.unlock();
            } else {
                self.shards[i].lock.revert();
            }
        }
        out
    }

    /// One shard's entries as a version-consistent snapshot: optimistic
    /// collect-and-validate, falling back to the shard lock.
    fn shard_snapshot(&self, i: usize, buf: &mut Vec<(Key, Val)>) {
        let shard = &self.shards[i];
        let mut bo = Backoff::new();
        for _ in 0..OPTIMISTIC_ATTEMPTS {
            buf.clear();
            let v = shard.lock.get_version_wait();
            shard.map.for_each(&mut |k, val| buf.push((k, val)));
            if shard.lock.validate(v) {
                return;
            }
            bo.backoff();
        }
        buf.clear();
        shard.lock.lock();
        shard.map.for_each(&mut |k, val| buf.push((k, val)));
        shard.lock.revert(); // read-only critical section
    }

    /// Streams every entry, shard by shard. Each shard's entries form a
    /// consistent snapshot (no torn writes, no half-applied batches within
    /// the shard); the store-wide view is per-shard sequential, like a
    /// QSBR-epoch scan — shards visited earlier may have mutated by the
    /// time later shards are read.
    pub fn scan(&self, mut f: impl FnMut(Key, Val)) {
        let mut buf = Vec::new();
        for i in 0..self.shards.len() {
            self.shard_snapshot(i, &mut buf);
            for &(k, v) in &buf {
                f(k, v);
            }
        }
    }

    /// Collects [`KvStore::scan`] into a key-sorted vector.
    pub fn snapshot(&self) -> Vec<(Key, Val)> {
        let mut out = Vec::new();
        self.scan(|k, v| out.push((k, v)));
        out.sort_unstable();
        out
    }

    /// Total entries across shards (O(n); exact only in quiescence).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.map.len()).sum()
    }

    /// Whether the store is empty (see [`KvStore::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// The store is itself a `ConcurrentMap`: composable (shards of shards) and
// enrolled in the registry-driven correctness tiers like any backend.
impl<B: ConcurrentMap> ConcurrentMap for KvStore<B> {
    fn get(&self, key: Key) -> Option<Val> {
        KvStore::get(self, key)
    }
    fn put(&self, key: Key, val: Val) -> Option<Val> {
        KvStore::put(self, key, val)
    }
    fn remove(&self, key: Key) -> Option<Val> {
        KvStore::remove(self, key)
    }
    fn len(&self) -> usize {
        KvStore::len(self)
    }
    fn for_each(&self, f: &mut dyn FnMut(Key, Val)) {
        // Raw backend sweep (quiescence-consistent, per the trait
        // contract); `scan` is the validated variant.
        for s in self.shards.iter() {
            s.map.for_each(f);
        }
    }
}

impl<B: OrderedMap> KvStore<B> {
    /// Creates an **ordered-sharded** store: `shards` contiguous key
    /// partitions covering `[1, max_key]` (keys above `max_key` fall into
    /// the last shard), each backed by `make(shard_index)`.
    ///
    /// Range scans on an ordered-sharded store touch only the shards the
    /// window intersects and concatenate their (already sorted) partition
    /// scans without a merge step. Point operations work exactly as under
    /// hash sharding — only the key→shard map differs — but load balance
    /// now follows the key distribution, so this layout is for
    /// range-serving stores, not skewed point workloads.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `max_key` is zero.
    pub fn with_ordered_shards(shards: usize, max_key: Key, make: impl FnMut(usize) -> B) -> Self {
        assert!(max_key > 0, "need a non-empty key space");
        let span = max_key.div_ceil(shards.max(1) as u64).max(1);
        Self::build(shards, Sharding::Range { span }, make)
    }

    /// One shard's `[lo, hi]` window as a version-consistent snapshot:
    /// optimistic collect-and-validate, falling back to the shard lock
    /// (under which the backend's range pass is exact — writers are
    /// excluded, so the backend traversal sees a quiescent structure).
    fn shard_range(&self, i: usize, lo: Key, hi: Key, buf: &mut Vec<(Key, Val)>) {
        let shard = &self.shards[i];
        let mut bo = Backoff::new();
        for _ in 0..OPTIMISTIC_ATTEMPTS {
            buf.clear();
            let v = shard.lock.get_version_wait();
            shard.map.range(lo, hi, &mut |k, val| buf.push((k, val)));
            if shard.lock.validate(v) {
                return;
            }
            bo.backoff();
        }
        buf.clear();
        shard.lock.lock();
        shard.map.range(lo, hi, &mut |k, val| buf.push((k, val)));
        shard.lock.revert(); // read-only critical section
    }

    /// Collects every entry with key in `[lo, hi]`, sorted by key, each
    /// shard's contribution a version-consistent snapshot (the same
    /// guarantee as [`KvStore::scan`], restricted to the window).
    ///
    /// Under ordered sharding only the shards intersecting the window are
    /// visited, in key order, so the result is a concatenation; under hash
    /// sharding every shard is visited and the result is sorted afterwards.
    pub fn range_scan(&self, lo: Key, hi: Key) -> Vec<(Key, Val)> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        let mut buf = Vec::new();
        match self.sharding {
            Sharding::Range { .. } => {
                let first = self.shard_of(lo);
                let last = self.shard_of(hi);
                for i in first..=last {
                    self.shard_range(i, lo, hi, &mut buf);
                    out.append(&mut buf);
                }
            }
            Sharding::Hash => {
                for i in 0..self.shards.len() {
                    self.shard_range(i, lo, hi, &mut buf);
                    out.append(&mut buf);
                }
                out.sort_unstable();
            }
        }
        out
    }
}

// An ordered-backed store is itself an `OrderedMap`: stores nest, and the
// range-observing correctness tiers drive `KvStore` and raw backends
// through one interface.
impl<B: OrderedMap> OrderedMap for KvStore<B> {
    fn range(&self, lo: Key, hi: Key, f: &mut dyn FnMut(Key, Val)) {
        for (k, v) in self.range_scan(lo, hi) {
            f(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optik_hashtables::StripedOptikHashTable;
    use optik_maps::OptikArrayMap;
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::Arc;

    fn striped_store(shards: usize) -> KvStore<StripedOptikHashTable> {
        KvStore::with_shards(shards, |_| StripedOptikHashTable::new(64, 8))
    }

    #[test]
    fn single_key_roundtrip() {
        let s = striped_store(4);
        assert_eq!(s.get(1), None);
        assert_eq!(s.put(1, 10), None);
        assert_eq!(s.put(1, 11), Some(10));
        assert_eq!(s.get(1), Some(11));
        assert_eq!(s.remove(1), Some(11));
        assert_eq!(s.remove(1), None);
        assert!(s.is_empty());
    }

    #[test]
    fn array_map_backend_works_too() {
        let s: KvStore<OptikArrayMap> = KvStore::with_shards(4, |_| OptikArrayMap::new(128));
        for k in 1..=100u64 {
            assert_eq!(s.put(k, k * 2), None);
        }
        assert_eq!(s.len(), 100);
        for k in 1..=100u64 {
            assert_eq!(s.get(k), Some(k * 2));
        }
    }

    #[test]
    fn keys_spread_across_shards() {
        let s = striped_store(8);
        let mut hit = vec![false; 8];
        for k in 1..=1_000u64 {
            hit[s.shard_of(k)] = true;
        }
        assert!(hit.iter().all(|&h| h), "some shard never selected: {hit:?}");
    }

    #[test]
    fn batched_ops_roundtrip_and_report_prev_values() {
        let s = striped_store(4);
        let entries: Vec<(u64, u64)> = (1..=20).map(|k| (k, k * 10)).collect();
        assert!(s.multi_put(&entries).iter().all(Option::is_none));
        let keys: Vec<u64> = (1..=20).collect();
        assert_eq!(
            s.multi_get(&keys),
            (1..=20).map(|k| Some(k * 10)).collect::<Vec<_>>()
        );
        // Overwrite half, remove the other half.
        let overwrite: Vec<(u64, u64)> = (1..=10).map(|k| (k, k * 100)).collect();
        assert_eq!(
            s.multi_put(&overwrite),
            (1..=10).map(|k| Some(k * 10)).collect::<Vec<_>>()
        );
        let gone: Vec<u64> = (11..=20).collect();
        assert_eq!(
            s.multi_remove(&gone),
            (11..=20).map(|k| Some(k * 10)).collect::<Vec<_>>()
        );
        assert_eq!(s.len(), 10);
        // Misses come back as None, in input order.
        assert_eq!(s.multi_get(&[5, 15, 7]), vec![Some(500), None, Some(700)]);
    }

    #[test]
    fn duplicate_keys_in_one_batch_apply_in_order() {
        let s = striped_store(2);
        let prev = s.multi_put(&[(1, 10), (1, 20), (1, 30)]);
        assert_eq!(prev, vec![None, Some(10), Some(20)]);
        assert_eq!(s.get(1), Some(30));
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let s = striped_store(4);
        for k in (1..=50u64).rev() {
            s.put(k, k + 1000);
        }
        let snap = s.snapshot();
        assert_eq!(snap.len(), 50);
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "sorted by key");
        assert!(snap.iter().all(|&(k, v)| v == k + 1000));
    }

    #[test]
    fn failed_remove_does_not_bump_shard_version() {
        let s = striped_store(1);
        s.put(1, 10);
        let v = s.shards[0].lock.get_version();
        assert_eq!(s.remove(999), None);
        assert_eq!(s.multi_remove(&[998, 997]), vec![None, None]);
        assert_eq!(
            s.shards[0].lock.get_version(),
            v,
            "read-only paths must not signal conflicts"
        );
        assert_eq!(s.remove(1), Some(10));
        assert_ne!(s.shards[0].lock.get_version(), v);
    }

    #[test]
    fn concurrent_mixed_ops_keep_exact_net_count() {
        let s = Arc::new(striped_store(4));
        let net = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = Arc::clone(&s);
            let net = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                let mut x = t.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                for _ in 0..synchro::stress::ops(20_000) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % 64 + 1;
                    match x % 3 {
                        0 => {
                            if s.put(k, k * 3).is_none() {
                                net.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        1 => {
                            if s.remove(k).is_some() {
                                net.fetch_sub(1, Ordering::Relaxed);
                            }
                        }
                        _ => {
                            if let Some(v) = s.get(k) {
                                assert_eq!(v, k * 3);
                            }
                        }
                    }
                }
            }));
        }
        reclaim::offline_while(|| {
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(s.len() as i64, net.load(Ordering::Relaxed));
    }

    // Concurrent batch atomicity, deadlock freedom, and snapshot
    // consistency are exercised at scale (and across shard counts and
    // backends) by the dedicated stress tier in `tests/integration_kv.rs`.

    use optik_bsts::OptikBst;
    use optik_skiplists::{HerlihyOptikSkipList, OptikSkipList2};

    #[test]
    fn ordered_sharding_partitions_contiguously() {
        let s: KvStore<OptikSkipList2> =
            KvStore::with_ordered_shards(4, 1000, |_| OptikSkipList2::new());
        assert_eq!(s.shard_of(1), 0);
        assert_eq!(s.shard_of(250), 0);
        assert_eq!(s.shard_of(251), 1);
        assert_eq!(s.shard_of(1000), 3);
        // Keys beyond max_key fall into the last shard, never out of range.
        assert_eq!(s.shard_of(u64::MAX - 1), 3);
        // Partitions are ascending: a smaller key never lands in a later
        // shard than a bigger one.
        let mut prev = 0;
        for k in 1..=1000u64 {
            let sh = s.shard_of(k);
            assert!(sh >= prev, "shard map not monotonic at {k}");
            prev = sh;
        }
    }

    #[test]
    fn range_scan_returns_sorted_window_on_both_shardings() {
        let hash: KvStore<HerlihyOptikSkipList> =
            KvStore::with_shards(4, |_| HerlihyOptikSkipList::new());
        let ordered: KvStore<HerlihyOptikSkipList> =
            KvStore::with_ordered_shards(4, 400, |_| HerlihyOptikSkipList::new());
        for s in [&hash, &ordered] {
            for k in (2..=400u64).step_by(2) {
                s.put(k, k * 10);
            }
            let win = s.range_scan(100, 200);
            let want: Vec<(u64, u64)> = (100..=200u64)
                .filter(|k| k % 2 == 0)
                .map(|k| (k, k * 10))
                .collect();
            assert_eq!(win, want);
            assert!(s.range_scan(401, 500).is_empty());
            assert!(s.range_scan(7, 7).is_empty(), "odd keys were never put");
            assert_eq!(s.range_scan(8, 8), vec![(8, 80)]);
            assert!(s.range_scan(10, 9).is_empty(), "inverted window");
        }
    }

    #[test]
    fn range_scan_works_over_bst_shards() {
        let s: KvStore<OptikBst> = KvStore::with_ordered_shards(3, 300, |_| OptikBst::new());
        for k in 1..=300u64 {
            assert_eq!(s.put(k, k + 7), None);
        }
        assert_eq!(s.put(42, 1000), Some(49), "in-place update through shard");
        let all = s.range_scan(1, 300);
        assert_eq!(all.len(), 300);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(s.range_scan(42, 42), vec![(42, 1000)]);
    }

    #[test]
    fn kv_store_is_itself_an_ordered_map() {
        // Nesting: a store of stores, ranged through the trait.
        let s: KvStore<KvStore<OptikSkipList2>> = KvStore::with_ordered_shards(2, 100, |_| {
            KvStore::with_ordered_shards(2, 100, |_| OptikSkipList2::new())
        });
        for k in [5u64, 50, 95] {
            s.put(k, k);
        }
        let got = OrderedMap::range_collect(&s, 1, 100);
        assert_eq!(got, vec![(5, 5), (50, 50), (95, 95)]);
    }
}
