//! The routing layer: pluggable [`ShardPolicy`] implementations deciding
//! which shard owns a key.
//!
//! Two policies ship with the store:
//!
//! - [`HashPolicy`] — Fibonacci-spread hashing (the default): uniform
//!   load, static routing (the table never changes), but a key range
//!   intersects every shard.
//! - [`RangePolicy`] — contiguous key partitions whose boundaries live in
//!   an atomic partition table guarded by an OPTIK version lock: range
//!   scans touch only the shards their window intersects, and the online
//!   rebalancer (`rebalance.rs`) migrates boundaries while the store
//!   serves traffic.
//!
//! Routing reads are the read-side OPTIK pattern one level *above* the
//! shards: [`ShardPolicy::route`] is a raw, lock-free read of the routing
//! table, and callers of a **dynamic** policy pair it with
//! [`ShardPolicy::version`] / [`ShardPolicy::validate`] (optimistic reads)
//! or with a shard-lock re-check (writes) to make the decision stable —
//! exactly how the store's data reads validate against shard versions.
//! Static policies validate trivially (and the store caches the
//! static/dynamic bit), so a hash-sharded fast path pays one indirect
//! `route` call and nothing else over the pre-layer code.

use std::sync::atomic::Ordering;

// The partition-table bounds are OPTIK validation points (optimistic
// routes read them and validate against the routing lock), so they use
// the schedulable shim type: raw atomics in normal builds, yield points
// under `--cfg optik_explore`.
use synchro::shim::AtomicU64;

use optik::{OptikLock, OptikVersioned, Version};

use optik_harness::api::Key;

/// Fibonacci spread; the *high* bits select the shard so backends that
/// bucket by `key % buckets` see an unbiased key stream per shard.
#[inline]
pub(crate) fn spread(key: Key) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Thread-to-shard affinity: the shard a given registry thread index
/// calls "home". Home threads contest the combiner role on their home
/// shards more aggressively (see `store::KvStore`'s combining mount), so
/// under steady load each hot shard tends to be drained by the same
/// thread — whose cache already holds the shard's lock word, publication
/// slots, and map head. Derived from the probe thread-index registry
/// (the same stable small-integer identity the magazines and publication
/// slots key on), not from OS thread ids.
#[inline]
pub(crate) fn home_shard(thread_index: usize, shards: usize) -> usize {
    thread_index % shards
}

/// How keys map to shards.
///
/// Implementations must route every key to a shard index below
/// [`ShardPolicy::num_shards`], even while the table is being modified —
/// a concurrent reader may act on a stale decision, never on an
/// out-of-bounds one. Dynamic policies (those whose table can change)
/// additionally expose an OPTIK version so readers can detect a routing
/// change that raced their data reads and retry.
pub trait ShardPolicy: Send + Sync {
    /// Number of shards this policy routes over.
    fn num_shards(&self) -> usize;

    /// Whether the routing table can change at runtime. Static policies
    /// let the store skip routing validation entirely.
    fn is_dynamic(&self) -> bool {
        false
    }

    /// Current routing-table version (free, i.e. not mid-update), for
    /// later [`ShardPolicy::validate`]. Static policies return a
    /// constant.
    fn version(&self) -> Version {
        0
    }

    /// Whether the routing table is unchanged since `version` was read
    /// (acquire-fenced, seqlock style). Always true for static policies.
    fn validate(&self, _version: Version) -> bool {
        true
    }

    /// Raw routing-table read: the shard owning `key` right now. For
    /// dynamic policies this is a *snapshot hint* — callers make it
    /// stable with version validation or a shard-lock re-check.
    fn route(&self, key: Key) -> usize;

    /// The contiguous shard window covering `[lo, hi]`, or `None` when
    /// the policy does not partition contiguously (a range then has to
    /// visit every shard).
    fn range_cover(&self, _lo: Key, _hi: Key) -> Option<(usize, usize)> {
        None
    }

    /// Whether ascending keys map to ascending positions *within* a
    /// shard's backend (contiguous partitions over ordered maps).
    /// Batched readers key-sort their per-shard probes only when this
    /// holds — under hashed routing the backend scatters keys anyway,
    /// so the sort would be pure cost.
    fn key_ordered_shards(&self) -> bool {
        false
    }

    /// Downcast hook for the rebalancer, which needs the partition table
    /// itself. `None` for every policy but [`RangePolicy`].
    fn as_range(&self) -> Option<&RangePolicy> {
        None
    }
}

/// Fibonacci-spread hash routing (the store default). Static: the table
/// is the hash function, so there is nothing to version.
#[derive(Debug)]
pub struct HashPolicy {
    shards: usize,
}

impl HashPolicy {
    /// A hash policy over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        Self { shards }
    }
}

impl ShardPolicy for HashPolicy {
    fn num_shards(&self) -> usize {
        self.shards
    }
    #[inline]
    fn route(&self, key: Key) -> usize {
        ((spread(key) >> 32) % self.shards as u64) as usize
    }
}

/// Contiguous key partitions behind an OPTIK version lock.
///
/// `bounds[i]` is the *inclusive* upper key of shard `i`, ascending; the
/// last bound is pinned to `u64::MAX` so every key routes somewhere.
/// Shard `i` owns `(bounds[i-1], bounds[i]]` (shard 0 owns
/// `[0, bounds[0]]`), and a partition is **empty-span** when two adjacent
/// bounds are equal — a legal state the rebalancer can both create and
/// undo.
///
/// Boundary updates happen under the crate-internal `shift` (the OPTIK
/// lock's write side, driven by `KvStore::shift_boundary`); lookups read
/// the atomic bounds lock-free and validate against the lock version
/// when they need a stable decision.
pub struct RangePolicy {
    lock: OptikVersioned,
    bounds: Box<[AtomicU64]>,
}

impl RangePolicy {
    /// `shards` contiguous partitions of `max_key.div_ceil(shards)` keys
    /// each, the last partition additionally owning everything above
    /// `max_key`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `max_key` is zero.
    pub fn contiguous(shards: usize, max_key: Key) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(max_key > 0, "need a non-empty key space");
        let span = max_key.div_ceil(shards as u64).max(1);
        let bounds: Box<[AtomicU64]> = (0..shards)
            .map(|i| {
                if i + 1 == shards {
                    AtomicU64::new(u64::MAX)
                } else {
                    AtomicU64::new(span.saturating_mul(i as u64 + 1))
                }
            })
            .collect();
        Self {
            lock: OptikVersioned::new(),
            bounds,
        }
    }

    /// The inclusive upper bound of shard `i`, as currently published.
    /// Stable only while the caller excludes rebalancing (e.g. holds the
    /// shard locks flanking the boundary) or validates the version.
    pub(crate) fn bound(&self, i: usize) -> Key {
        self.bounds[i].load(Ordering::Acquire)
    }

    /// Publishes `new_bound` as shard `i`'s upper bound, under the
    /// routing lock (one version bump per shift, so racing optimistic
    /// routes retry). The caller (the rebalancer) must already hold the
    /// locks of the shards flanking the boundary and must keep the bounds
    /// ascending; the last bound is immutable.
    pub(crate) fn shift(&self, i: usize, new_bound: Key) {
        assert!(i + 1 < self.bounds.len(), "last bound is pinned to MAX");
        self.lock.lock();
        self.bounds[i].store(new_bound, Ordering::Release);
        self.lock.unlock();
    }

    /// A validated snapshot of the partition table (ascending, last entry
    /// `u64::MAX`).
    pub fn snapshot_bounds(&self) -> Vec<Key> {
        loop {
            let v = self.lock.get_version_wait();
            let out: Vec<Key> = self
                .bounds
                .iter()
                .map(|b| b.load(Ordering::Acquire))
                .collect();
            if self.lock.validate(v) {
                return out;
            }
            synchro::relax();
        }
    }
}

impl ShardPolicy for RangePolicy {
    fn num_shards(&self) -> usize {
        self.bounds.len()
    }
    fn is_dynamic(&self) -> bool {
        true
    }
    fn key_ordered_shards(&self) -> bool {
        true
    }
    fn version(&self) -> Version {
        self.lock.get_version_wait()
    }
    fn validate(&self, version: Version) -> bool {
        self.lock.validate(version)
    }
    #[inline]
    fn route(&self, key: Key) -> usize {
        // First shard whose inclusive upper bound covers the key. The
        // last bound is u64::MAX, so the search always lands in range
        // even when a concurrent shift tears the snapshot (callers
        // validate when they need the decision to be stable).
        let n = self.bounds.len();
        let (mut lo, mut hi) = (0usize, n - 1);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if key <= self.bounds[mid].load(Ordering::Acquire) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }
    fn range_cover(&self, lo: Key, hi: Key) -> Option<(usize, usize)> {
        Some((self.route(lo), self.route(hi)))
    }
    fn as_range(&self) -> Option<&RangePolicy> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_policy_routes_in_range_and_spreads() {
        let p = HashPolicy::new(8);
        let mut hit = vec![false; 8];
        for k in 1..=1_000u64 {
            let s = p.route(k);
            assert!(s < 8);
            hit[s] = true;
        }
        assert!(hit.iter().all(|&h| h), "some shard never selected: {hit:?}");
        assert!(!p.is_dynamic());
        assert!(p.validate(p.version()));
        assert!(p.range_cover(1, 10).is_none());
    }

    #[test]
    fn range_policy_partitions_contiguously() {
        let p = RangePolicy::contiguous(4, 1000);
        assert_eq!(p.snapshot_bounds(), vec![250, 500, 750, u64::MAX]);
        assert_eq!(p.route(1), 0);
        assert_eq!(p.route(250), 0);
        assert_eq!(p.route(251), 1);
        assert_eq!(p.route(1000), 3);
        assert_eq!(p.route(u64::MAX - 1), 3);
        assert_eq!(p.route(u64::MAX), 3);
        assert_eq!(p.range_cover(100, 600), Some((0, 2)));
        assert_eq!(p.range_cover(900, u64::MAX), Some((3, 3)));
    }

    #[test]
    fn shift_moves_the_boundary_and_bumps_the_version() {
        let p = RangePolicy::contiguous(4, 400);
        let v = p.version();
        assert_eq!(p.route(150), 1);
        p.shift(0, 150);
        assert!(!p.validate(v), "a shift must invalidate optimistic routes");
        assert_eq!(p.route(150), 0);
        assert_eq!(p.route(151), 1);
        // Empty-span partition: shard 1 owns (150, 150] = nothing.
        p.shift(1, 150);
        assert_eq!(p.route(151), 2);
        assert_eq!(p.snapshot_bounds(), vec![150, 150, 300, u64::MAX]);
    }

    #[test]
    #[should_panic(expected = "last bound is pinned")]
    fn last_bound_is_immutable() {
        let p = RangePolicy::contiguous(2, 100);
        p.shift(1, 10);
    }
}
