//! The TTL layer: per-entry expiry deadlines over a pluggable [`Clock`].
//!
//! A TTL-enabled store ([`KvStore::with_shards_ttl`],
//! [`KvStore::with_ordered_shards_ttl`]) pairs every shard's backend map
//! with a **companion deadline table of the same backend type**: deadlines
//! are `key → absolute expiry tick` entries, written under the shard lock
//! exactly like data writes, and read lock-free exactly like data reads.
//! Reusing the backend for the side table means deadline reads inherit the
//! backend's lock-free lookup and QSBR-safe traversal for free, and the
//! shard's OPTIK version covers the *(value, deadline)* pair — a TTL read
//! validates the shard version around both lookups, so it can never pair a
//! fresh value with a stale deadline (or vice versa).
//!
//! Expiry is **lazy**: a read that finds `deadline <= now` reports a miss
//! (the entry is logically gone the instant the clock passes its
//! deadline), and write paths physically drop an expired entry before
//! acting (so a `put` over an expired key reports `prev = None`). The
//! physical reclaim happens through [`KvStore::sweep_expired`], an
//! incremental sweeper that collects expired candidates per shard and
//! removes them under the shard lock — the backend `remove` retires nodes
//! through the workspace QSBR domain, so sweeping composes with
//! concurrent optimistic readers like any other removal.
//!
//! Clock ticks are opaque `u64`s: [`SystemClock`] counts milliseconds,
//! [`FakeClock`] is a hand-advanced counter for deterministic tests and
//! the linearizability tier (whose TTL spec replays `Advance` operations
//! against recorded histories).

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

// The fake clock's tick counter and the sweeper's cursor participate in
// the TTL validation points (expiry-vs-put races pivot on when `now`
// advances relative to a shard's lock window), so both use the
// schedulable shim atomics — raw in normal builds, yield points under
// `--cfg optik_explore`.
use synchro::shim::{AtomicU64, AtomicUsize};

use optik::OptikLock;
use optik_harness::api::{ConcurrentMap, Key, Val};

use crate::store::KvStore;

/// A monotonic tick source for TTL deadlines. Ticks are opaque; the only
/// contract is monotonicity (`now` never decreases) and that deadlines
/// stay below `u64::MAX` (the store clamps, so backends that reserve
/// `u64::MAX` — fraser's `FROZEN` tombstone — can hold deadline tables).
pub trait Clock: Send + Sync {
    /// The current tick.
    fn now(&self) -> u64;
}

/// Wall-clock ticks: milliseconds since the clock was created.
#[derive(Debug)]
pub struct SystemClock {
    start: Instant,
}

impl SystemClock {
    /// A clock starting at tick 0.
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

/// A hand-advanced clock for deterministic TTL tests: time moves only
/// when a test calls [`FakeClock::advance`] (or [`FakeClock::set`]).
#[derive(Debug, Default)]
pub struct FakeClock {
    now: AtomicU64,
}

impl FakeClock {
    /// A fake clock at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ticks`, returning the new now.
    pub fn advance(&self, ticks: u64) -> u64 {
        self.now.fetch_add(ticks, Ordering::SeqCst) + ticks
    }

    /// Jumps the clock to `now` (must not move backwards).
    pub fn set(&self, now: u64) {
        self.now.fetch_max(now, Ordering::SeqCst);
    }
}

impl Clock for FakeClock {
    fn now(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

/// Per-store TTL state: the clock and the sweeper's shard cursor.
pub(crate) struct TtlState {
    pub(crate) clock: Arc<dyn Clock>,
    /// Round-robin shard cursor so consecutive [`KvStore::sweep_expired`]
    /// calls resume where the previous budget ran out.
    pub(crate) cursor: AtomicUsize,
}

impl<B: ConcurrentMap> KvStore<B> {
    fn ttl_state(&self) -> &TtlState {
        self.ttl.as_ref().expect(
            "TTL operation on a store built without a clock \
             (use with_shards_ttl / with_ordered_shards_ttl)",
        )
    }

    /// The store's clock, when TTL-enabled.
    pub fn ttl_clock(&self) -> Option<&Arc<dyn Clock>> {
        self.ttl.as_ref().map(|t| &t.clock)
    }

    /// Inserts or atomically updates `key → val` with an expiry deadline
    /// of `now + ttl` ticks, returning the previous **live** value (an
    /// expired prior binding reports `None` and is physically dropped).
    ///
    /// # Panics
    ///
    /// Panics if the store was built without a clock, or if `ttl` is zero
    /// (the entry would be born expired).
    pub fn put_with_ttl(&self, key: Key, val: Val, ttl: u64) -> Option<Val> {
        assert!(ttl > 0, "a zero TTL would expire the entry at birth");
        self.ttl_state(); // fail fast before taking the lock
        self.write_shard(key, |shard, now| {
            // `now` is sampled under the shard lock (see `write_shard`),
            // so the deadline and the expiry decision share the write's
            // linearization point. Clamp below MAX so the deadline is
            // storable in any backend (fraser reserves u64::MAX) —
            // saturation means "practically never".
            let now = now.expect("ttl store always passes now");
            let deadline = now.saturating_add(ttl).min(u64::MAX - 1);
            shard.drop_expired(key, now);
            let prev = shard.map.put(key, val);
            shard
                .deadlines
                .as_ref()
                .expect("ttl state implies deadline tables")
                .put(key, deadline);
            (prev, true)
        })
    }

    /// Re-arms (or arms) the expiry of an existing live entry to `now +
    /// ttl` ticks. Returns whether a live entry was found; an expired or
    /// absent key reports `false` (the expired entry is dropped).
    ///
    /// # Panics
    ///
    /// Panics if the store was built without a clock, or if `ttl` is zero.
    pub fn expire_after(&self, key: Key, ttl: u64) -> bool {
        assert!(ttl > 0, "a zero TTL would expire the entry at birth");
        self.ttl_state(); // fail fast before taking the lock
        self.write_shard(key, |shard, now| {
            let now = now.expect("ttl store always passes now");
            let deadline = now.saturating_add(ttl).min(u64::MAX - 1);
            let dropped = shard.drop_expired(key, now);
            if shard.map.get(key).is_some() {
                shard
                    .deadlines
                    .as_ref()
                    .expect("ttl state implies deadline tables")
                    .put(key, deadline);
                (true, true)
            } else {
                (false, dropped)
            }
        })
    }

    /// Incremental expiry sweep: visits shards round-robin (resuming at
    /// the cursor the previous call left), collects candidates whose
    /// deadline has passed, re-checks each under the shard lock, and
    /// physically removes the expired ones — the backend `remove` retires
    /// through QSBR, so the reclaimed nodes stay readable to in-flight
    /// optimistic scans. Examines at most `budget` candidates; returns
    /// how many entries were reclaimed.
    ///
    /// # Panics
    ///
    /// Panics if the store was built without a clock, or if `budget` is
    /// zero.
    pub fn sweep_expired(&self, budget: usize) -> u64 {
        assert!(budget > 0, "a zero budget sweeps nothing");
        optik_probe::count(optik_probe::Event::TtlSweep);
        let _span = optik_probe::trace::span(optik_probe::trace::SpanKind::TtlSweep);
        let ttl = self.ttl_state();
        // Unlike the read/write paths, sampling the clock once up front
        // is sound here: the sweep only *removes*, and the under-lock
        // re-check `d <= now` with a stale (smaller) `now` can only keep
        // an entry the current clock would also call expired — it can
        // never reclaim a live one. Physical reclaim of an expired entry
        // is logically invisible at any instant.
        let now = ttl.clock.now();
        let shards = self.shards.len();
        let mut removed = 0u64;
        let mut examined = 0usize;
        let mut candidates: Vec<Key> = Vec::new();
        for _ in 0..shards {
            // Relaxed is sound: the cursor is pure work-distribution
            // state. Its only invariant is that the RMW itself is atomic
            // (two racing sweepers still claim distinct values); no other
            // memory is published through it, and a stale start shard
            // merely re-scans — every expired entry is still re-verified
            // under the shard lock below.
            let i = ttl.cursor.fetch_add(1, Ordering::Relaxed) % shards;
            let shard = &self.shards[i];
            let dl = shard
                .deadlines
                .as_ref()
                .expect("ttl state implies deadline tables");
            // Candidate collection is a raw (quiescence-consistent)
            // sweep; each candidate is re-decided under the lock.
            candidates.clear();
            dl.for_each(&mut |k, d| {
                if d <= now {
                    candidates.push(k);
                }
            });
            if !candidates.is_empty() {
                shard.lock.lock();
                let mut modified = false;
                for &k in &candidates {
                    if examined >= budget {
                        break;
                    }
                    examined += 1;
                    // A candidate may have been re-armed, re-put, swept
                    // by a racing sweeper, or migrated away since the
                    // collection pass.
                    if dl.get(k).is_some_and(|d| d <= now) {
                        shard.map.remove(k);
                        dl.remove(k);
                        modified = true;
                        removed += 1;
                    }
                }
                if modified {
                    shard.lock.unlock();
                } else {
                    shard.lock.revert();
                }
            }
            if examined >= budget {
                break;
            }
        }
        optik_probe::count_n(optik_probe::Event::TtlExpired, removed);
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optik_hashtables::StripedOptikHashTable;

    fn ttl_store(clock: Arc<FakeClock>) -> KvStore<StripedOptikHashTable> {
        KvStore::with_shards_ttl(4, clock, |_| StripedOptikHashTable::new(64, 8))
    }

    #[test]
    fn entries_expire_lazily_on_read() {
        let clock = Arc::new(FakeClock::new());
        let s = ttl_store(Arc::clone(&clock));
        assert_eq!(s.put_with_ttl(1, 10, 5), None);
        s.put(2, 20); // no TTL: lives forever
        assert_eq!(s.get(1), Some(10));
        clock.advance(4);
        assert_eq!(s.get(1), Some(10), "deadline not yet reached");
        clock.advance(1);
        assert_eq!(s.get(1), None, "deadline tick itself is expired");
        assert_eq!(s.get(2), Some(20), "plain puts never expire");
    }

    #[test]
    fn writes_normalize_expired_entries() {
        let clock = Arc::new(FakeClock::new());
        let s = ttl_store(Arc::clone(&clock));
        s.put_with_ttl(1, 10, 5);
        clock.advance(5);
        // A put over an expired key is a fresh insert…
        assert_eq!(s.put(1, 11), None, "expired previous binding is invisible");
        assert_eq!(s.get(1), Some(11));
        clock.advance(100);
        assert_eq!(s.get(1), Some(11), "plain put cleared the deadline");
        // …and a remove of an expired key is a miss.
        s.put_with_ttl(2, 20, 3);
        clock.advance(3);
        assert_eq!(s.remove(2), None);
        // put_with_ttl over an expired key likewise reports fresh.
        s.put_with_ttl(3, 30, 2);
        clock.advance(2);
        assert_eq!(s.put_with_ttl(3, 31, 2), None);
        assert_eq!(s.get(3), Some(31));
    }

    #[test]
    fn expire_after_arms_and_rearms() {
        let clock = Arc::new(FakeClock::new());
        let s = ttl_store(Arc::clone(&clock));
        s.put(1, 10);
        assert!(s.expire_after(1, 5), "live entry found");
        clock.advance(4);
        assert!(s.expire_after(1, 10), "re-arm before expiry");
        clock.advance(9);
        assert_eq!(s.get(1), Some(10), "re-armed deadline holds");
        clock.advance(1);
        assert_eq!(s.get(1), None);
        assert!(!s.expire_after(1, 5), "expired entry is not re-armable");
        assert!(!s.expire_after(999, 5), "absent key");
    }

    #[test]
    fn sweeper_reclaims_expired_entries_within_budget() {
        let clock = Arc::new(FakeClock::new());
        let s = ttl_store(Arc::clone(&clock));
        for k in 1..=32u64 {
            s.put_with_ttl(k, k, 4);
        }
        for k in 33..=40u64 {
            s.put(k, k);
        }
        assert_eq!(s.sweep_expired(1024), 0, "nothing expired yet");
        clock.advance(4);
        assert_eq!(s.len(), 40, "expiry is lazy: physical entries remain");
        let mut swept = 0;
        // Budgeted sweeps make incremental progress until drained.
        loop {
            let n = s.sweep_expired(8);
            if n == 0 {
                break;
            }
            assert!(n <= 8, "budget bounds each sweep");
            swept += n;
        }
        assert_eq!(swept, 32);
        assert_eq!(s.len(), 8, "unexpired entries survive");
        for k in 33..=40u64 {
            assert_eq!(s.get(k), Some(k));
        }
    }

    #[test]
    fn multi_ops_and_scans_see_only_live_entries() {
        let clock = Arc::new(FakeClock::new());
        let s = ttl_store(Arc::clone(&clock));
        s.put_with_ttl(1, 10, 5);
        s.put_with_ttl(2, 20, 50);
        s.put(3, 30);
        clock.advance(10);
        assert_eq!(
            s.multi_get(&[1, 2, 3]),
            vec![None, Some(20), Some(30)],
            "multi_get filters expired entries"
        );
        assert_eq!(s.snapshot(), vec![(2, 20), (3, 30)], "scan filters too");
        // multi_put resurrects expired keys as fresh inserts.
        assert_eq!(s.multi_put(&[(1, 11), (2, 21)]), vec![None, Some(20)]);
        // multi_remove of an expired key is a miss.
        s.put_with_ttl(4, 40, 1);
        clock.advance(1);
        assert_eq!(s.multi_remove(&[4, 3]), vec![None, Some(30)]);
    }

    #[test]
    #[should_panic(expected = "built without a clock")]
    fn ttl_ops_need_a_clock() {
        let s: KvStore<StripedOptikHashTable> =
            KvStore::with_shards(2, |_| StripedOptikHashTable::new(16, 4));
        s.put_with_ttl(1, 1, 10);
    }

    #[test]
    fn fake_clock_is_monotonic() {
        let c = FakeClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(5), 5);
        c.set(3); // backwards jumps are ignored
        assert_eq!(c.now(), 5);
        c.set(9);
        assert_eq!(c.now(), 9);
    }
}
