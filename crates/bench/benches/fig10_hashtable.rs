//! Criterion bench for Figure 10: the six hash tables.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use optik_bench::crit;
use optik_hashtables::{
    LazyGlHashTable, OptikGlHashTable, OptikHashTable, OptikMapHashTable, StripedHashTable,
    StripedOptikHashTable,
};

const SIZE: u64 = 4096;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_hashtables");
    g.sample_size(10).throughput(Throughput::Elements(1));
    let buckets = SIZE as usize;
    macro_rules! case {
        ($name:literal, $make:expr) => {
            g.bench_function($name, |b| {
                b.iter_custom(|iters| {
                    let (ops, wall) = crit::set_window($make, SIZE, 20, false);
                    crit::scale(iters, ops, wall)
                })
            });
        };
    }
    case!("lazy-gl", || LazyGlHashTable::new(buckets));
    case!("java", || StripedHashTable::with_default_segments(buckets));
    case!("java-optik", || {
        StripedOptikHashTable::with_default_segments(buckets)
    });
    case!("optik", || OptikHashTable::new(buckets));
    case!("optik-gl", || OptikGlHashTable::new(buckets));
    case!("optik-map", || OptikMapHashTable::with_bucket_capacity(
        buckets, 8
    ));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
