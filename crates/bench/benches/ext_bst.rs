//! Criterion bench for the BST extension: the three external trees,
//! small + large (see `src/bin/ext_bst.rs` for the full sweep).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use optik_bench::crit;
use optik_bsts::{GlobalLockBst, OptikBst, OptikGlBst};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ext_bsts");
    g.sample_size(10).throughput(Throughput::Elements(1));
    for (label, size) in [("small128", 128u64), ("large16384", 16384)] {
        macro_rules! case {
            ($name:literal, $make:expr) => {
                g.bench_function(format!("{}/{label}", $name), |b| {
                    b.iter_custom(|iters| {
                        let (ops, wall) = crit::set_window($make, size, 20, false);
                        crit::scale(iters, ops, wall)
                    })
                });
            };
        }
        case!("mcs-gl", GlobalLockBst::new);
        case!("optik-gl", OptikGlBst::<optik::OptikVersioned>::new);
        case!("optik-tk", OptikBst::new);
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
