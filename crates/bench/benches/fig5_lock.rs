//! Criterion bench for Figure 5: validated lock acquisitions.
//!
//! Scaled-down companion of `cargo run -p optik-bench --bin fig5_lock`;
//! reports per-acquisition time for each lock at a contended thread count.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use optik::{OptikLock, OptikTicket, OptikVersioned, ValidatedLock};
use optik_harness::runner::run_workers;

const THREADS: usize = 8;
const WINDOW: Duration = Duration::from_millis(80);

/// Runs a fixed window of contended validated acquisitions and returns the
/// implied duration of `iters` operations.
fn window_time_per_op(iters: u64, total_ops: u64, window: Duration) -> Duration {
    let per_op = window.as_secs_f64() / total_ops.max(1) as f64;
    Duration::from_secs_f64(per_op * iters as f64)
}

fn optik_ops<L: OptikLock>() -> u64 {
    let lock = L::default();
    run_workers(THREADS, WINDOW, |ctx| {
        let mut ops = 0u64;
        while !ctx.should_stop() {
            loop {
                let v = lock.get_version();
                if L::is_locked_version(v) {
                    synchro::relax();
                    continue;
                }
                if lock.try_lock_version(v) {
                    lock.unlock();
                    break;
                }
            }
            ops += 1;
        }
        ops
    })
    .iter()
    .sum()
}

fn ttas_ops() -> u64 {
    let lock = ValidatedLock::new();
    run_workers(THREADS, WINDOW, |ctx| {
        let mut ops = 0u64;
        while !ctx.should_stop() {
            loop {
                let v = lock.get_version();
                if lock.lock_and_validate(v) {
                    lock.commit_unlock();
                    break;
                }
            }
            ops += 1;
        }
        ops
    })
    .iter()
    .sum()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_validated_acquisition");
    g.sample_size(10).throughput(Throughput::Elements(1));
    g.bench_function("ttas", |b| {
        b.iter_custom(|iters| {
            let t0 = Instant::now();
            let ops = ttas_ops();
            window_time_per_op(iters, ops, t0.elapsed())
        })
    });
    g.bench_function("optik-ticket", |b| {
        b.iter_custom(|iters| {
            let t0 = Instant::now();
            let ops = optik_ops::<OptikTicket>();
            window_time_per_op(iters, ops, t0.elapsed())
        })
    });
    g.bench_function("optik-versioned", |b| {
        b.iter_custom(|iters| {
            let t0 = Instant::now();
            let ops = optik_ops::<OptikVersioned>();
            window_time_per_op(iters, ops, t0.elapsed())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
