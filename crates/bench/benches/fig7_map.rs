//! Criterion bench for Figure 7: mcs vs optik array map, small and large.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use optik_bench::crit;
use optik_harness::api::{ConcurrentSet, Key, Val};
use optik_maps::{ArrayMap, LockArrayMap, OptikArrayMap};

/// ArrayMap → ConcurrentSet adapter for the harness.
struct AsSet<M: ArrayMap>(M);
impl<M: ArrayMap> ConcurrentSet for AsSet<M> {
    fn search(&self, key: Key) -> Option<Val> {
        self.0.search(key)
    }
    fn insert(&self, key: Key, val: Val) -> bool {
        self.0.insert(key, val)
    }
    fn delete(&self, key: Key) -> Option<Val> {
        self.0.delete(key)
    }
    fn len(&self) -> usize {
        self.0.len()
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_array_map");
    g.sample_size(10).throughput(Throughput::Elements(1));
    for (label, slots) in [("small4", 4u64), ("large1024", 1024)] {
        g.bench_function(format!("mcs/{label}"), |b| {
            b.iter_custom(|iters| {
                let (ops, wall) = crit::set_window(
                    || AsSet(LockArrayMap::new(slots as usize)),
                    slots,
                    10,
                    false,
                );
                crit::scale(iters, ops, wall)
            })
        });
        g.bench_function(format!("optik/{label}"), |b| {
            b.iter_custom(|iters| {
                let (ops, wall) = crit::set_window(
                    || AsSet(OptikArrayMap::<optik::OptikVersioned>::new(slots as usize)),
                    slots,
                    10,
                    false,
                );
                crit::scale(iters, ops, wall)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
