//! Criterion bench for Figure 9: the seven list algorithms, small + large.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use optik_bench::crit;
use optik_lists::{
    GlobalLockList, HarrisList, LazyCacheList, LazyList, OptikCacheList, OptikGlList, OptikList,
};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_lists");
    g.sample_size(10).throughput(Throughput::Elements(1));
    for (label, size) in [("small64", 64u64), ("large8192", 8192)] {
        macro_rules! case {
            ($name:literal, $make:expr) => {
                g.bench_function(format!("{}/{label}", $name), |b| {
                    b.iter_custom(|iters| {
                        let (ops, wall) = crit::set_window($make, size, 20, false);
                        crit::scale(iters, ops, wall)
                    })
                });
            };
        }
        case!("harris", HarrisList::new);
        case!("lazy", LazyList::new);
        case!("lazy-cache", LazyCacheList::new);
        case!("mcs-gl-opt", GlobalLockList::new);
        case!("optik-gl", OptikGlList::<optik::OptikVersioned>::new);
        case!("optik", OptikList::new);
        case!("optik-cache", OptikCacheList::new);
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
