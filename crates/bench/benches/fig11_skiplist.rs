//! Criterion bench for Figure 11: the five skip lists (skewed workload).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use optik_bench::crit;
use optik_skiplists::{
    FraserSkipList, HerlihyOptikSkipList, HerlihySkipList, OptikSkipList1, OptikSkipList2,
};

const SIZE: u64 = 1024;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_skiplists");
    g.sample_size(10).throughput(Throughput::Elements(1));
    macro_rules! case {
        ($name:literal, $make:expr) => {
            g.bench_function($name, |b| {
                b.iter_custom(|iters| {
                    let (ops, wall) = crit::set_window($make, SIZE, 20, true);
                    crit::scale(iters, ops, wall)
                })
            });
        };
    }
    case!("fraser", FraserSkipList::new);
    case!("herlihy", HerlihySkipList::new);
    case!("herl-optik", HerlihyOptikSkipList::new);
    case!("optik1", OptikSkipList1::new);
    case!("optik2", OptikSkipList2::new);
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
