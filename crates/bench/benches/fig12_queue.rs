//! Criterion bench for Figure 12: the six queues, stable-size mix.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use optik_bench::crit;
use optik_queues::{MsLbQueue, MsLfQueue, OptikQueue0, OptikQueue1, OptikQueue2, VictimQueue};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_queues");
    g.sample_size(10).throughput(Throughput::Elements(1));
    macro_rules! case {
        ($name:literal, $make:expr) => {
            g.bench_function($name, |b| {
                b.iter_custom(|iters| {
                    let (ops, wall) = crit::queue_window($make, 50);
                    crit::scale(iters, ops, wall)
                })
            });
        };
    }
    case!("ms-lf", MsLfQueue::new);
    case!("ms-lb", MsLbQueue::new);
    case!("optik0", OptikQueue0::new);
    case!("optik1", OptikQueue1::new);
    case!("optik2", OptikQueue2::new);
    case!("optik3", VictimQueue::new);
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
