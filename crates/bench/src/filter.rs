//! A minimal regular-expression engine for `bench_all --filter`.
//!
//! The workspace builds offline (no `regex` crate), and scenario names are
//! short dotted identifiers, so a small engine covers every realistic
//! filter. Supported syntax:
//!
//! - literals, `.` (any char), `\x` escapes (the escaped char, literally);
//! - postfix `*`, `+`, `?`;
//! - alternation `|` and grouping `(...)`;
//! - character classes `[abc]`, `[a-z0-9]`, negated `[^...]` (a `]` first
//!   in the class and a `-` first/last are literals);
//! - `^` anchoring the start and `$` the end — only at the very start/end
//!   of the pattern (anywhere else is rejected). An unanchored pattern
//!   matches anywhere in the name, like `grep`. Because this engine binds
//!   a boundary anchor to the *whole* pattern, an anchored top-level
//!   alternation (`^a|b`, where grep would anchor only the first branch)
//!   is rejected rather than silently reinterpreted — group it
//!   explicitly: `^(a|b)`.
//!
//! Patterns compile to a Thompson NFA simulated breadth-first, so matching
//! is linear in `pattern × text` with no backtracking blowups.

/// One parsed sub-expression.
enum Ast {
    /// Ordered alternatives (`a|b|c`).
    Alt(Vec<Ast>),
    /// Concatenation.
    Seq(Vec<Ast>),
    /// `x*`.
    Star(Box<Ast>),
    /// `x+`.
    Plus(Box<Ast>),
    /// `x?`.
    Opt(Box<Ast>),
    /// A single-character matcher.
    One(Matcher),
}

/// A single-character test.
#[derive(Clone)]
enum Matcher {
    Lit(char),
    Any,
    Class {
        neg: bool,
        ranges: Vec<(char, char)>,
    },
}

impl Matcher {
    fn matches(&self, c: char) -> bool {
        match self {
            Matcher::Lit(l) => *l == c,
            Matcher::Any => true,
            Matcher::Class { neg, ranges } => {
                ranges.iter().any(|&(a, b)| (a..=b).contains(&c)) != *neg
            }
        }
    }
}

/// NFA node.
enum Node {
    /// Consume one char matching `m`, go to `next`.
    Char { m: Matcher, next: usize },
    /// Epsilon-split.
    Split { a: usize, b: usize },
    /// Accepting state.
    Accept,
}

/// A compiled filter pattern.
pub struct Filter {
    nodes: Vec<Node>,
    start: usize,
}

impl Filter {
    /// Compiles `pattern`; errors describe the first offending construct.
    pub fn new(pattern: &str) -> Result<Filter, String> {
        let mut chars: Vec<char> = pattern.chars().collect();
        let anchored_start = chars.first() == Some(&'^');
        if anchored_start {
            chars.remove(0);
        }
        let anchored_end = {
            // A trailing `\$` is a literal dollar, not an anchor.
            let n = chars.len();
            n > 0 && chars[n - 1] == '$' && !(n > 1 && chars[n - 2] == '\\')
        };
        if anchored_end {
            chars.pop();
        }
        let mut p = Parser { chars, pos: 0 };
        let mut ast = p.parse_alt()?;
        if p.pos != p.chars.len() {
            return Err(format!("unexpected `{}`", p.chars[p.pos]));
        }
        if (anchored_start || anchored_end) && matches!(ast, Ast::Alt(_)) {
            // `^a|b` would anchor only the first branch under standard
            // regex precedence; this engine anchors the whole pattern.
            // Refusing the ambiguous form beats silently running a
            // different scenario selection than the user asked for.
            return Err("anchors bind the whole pattern here; group a top-level \
                 alternation explicitly, e.g. `^(a|b)`"
                .into());
        }
        // Unanchored sides get an implicit `.*`.
        let mut seq = Vec::new();
        if !anchored_start {
            seq.push(Ast::Star(Box::new(Ast::One(Matcher::Any))));
        }
        seq.push(std::mem::replace(&mut ast, Ast::Seq(Vec::new())));
        if !anchored_end {
            seq.push(Ast::Star(Box::new(Ast::One(Matcher::Any))));
        }
        let ast = Ast::Seq(seq);
        let mut nodes = vec![Node::Accept];
        let start = compile(&ast, &mut nodes, 0);
        Ok(Filter { nodes, start })
    }

    /// Whether `text` matches the pattern (anywhere, unless anchored).
    pub fn is_match(&self, text: &str) -> bool {
        let mut current = vec![false; self.nodes.len()];
        self.add(&mut current, self.start);
        for c in text.chars() {
            let mut next = vec![false; self.nodes.len()];
            for (i, active) in current.iter().enumerate() {
                if !active {
                    continue;
                }
                if let Node::Char { m, next: n } = &self.nodes[i] {
                    if m.matches(c) {
                        self.add(&mut next, *n);
                    }
                }
            }
            current = next;
        }
        current
            .iter()
            .enumerate()
            .any(|(i, &a)| a && matches!(self.nodes[i], Node::Accept))
    }

    /// Adds `state` and its epsilon closure to `set`.
    fn add(&self, set: &mut [bool], state: usize) {
        if set[state] {
            return;
        }
        set[state] = true;
        if let Node::Split { a, b } = self.nodes[state] {
            self.add(set, a);
            self.add(set, b);
        }
    }
}

/// Compiles `ast` so that it matches into continuation state `cont`;
/// returns the entry state.
fn compile(ast: &Ast, nodes: &mut Vec<Node>, cont: usize) -> usize {
    match ast {
        Ast::One(m) => {
            nodes.push(Node::Char {
                m: m.clone(),
                next: cont,
            });
            nodes.len() - 1
        }
        Ast::Seq(items) => {
            let mut c = cont;
            for item in items.iter().rev() {
                c = compile(item, nodes, c);
            }
            c
        }
        Ast::Alt(branches) => {
            let starts: Vec<usize> = branches.iter().map(|b| compile(b, nodes, cont)).collect();
            let mut entry = starts[0];
            for &s in &starts[1..] {
                nodes.push(Node::Split { a: entry, b: s });
                entry = nodes.len() - 1;
            }
            entry
        }
        Ast::Star(inner) => {
            nodes.push(Node::Split { a: 0, b: 0 }); // patched below
            let split = nodes.len() - 1;
            let inner_start = compile(inner, nodes, split);
            nodes[split] = Node::Split {
                a: inner_start,
                b: cont,
            };
            split
        }
        Ast::Plus(inner) => {
            nodes.push(Node::Split { a: 0, b: 0 }); // patched below
            let split = nodes.len() - 1;
            let inner_start = compile(inner, nodes, split);
            nodes[split] = Node::Split {
                a: inner_start,
                b: cont,
            };
            inner_start
        }
        Ast::Opt(inner) => {
            let inner_start = compile(inner, nodes, cont);
            nodes.push(Node::Split {
                a: inner_start,
                b: cont,
            });
            nodes.len() - 1
        }
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn parse_alt(&mut self) -> Result<Ast, String> {
        let mut branches = vec![self.parse_seq()?];
        while self.peek() == Some('|') {
            self.pos += 1;
            branches.push(self.parse_seq()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alt(branches)
        })
    }

    fn parse_seq(&mut self) -> Result<Ast, String> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_piece()?);
        }
        Ok(Ast::Seq(items))
    }

    fn parse_piece(&mut self) -> Result<Ast, String> {
        let atom = self.parse_atom()?;
        Ok(match self.peek() {
            Some('*') => {
                self.pos += 1;
                Ast::Star(Box::new(atom))
            }
            Some('+') => {
                self.pos += 1;
                Ast::Plus(Box::new(atom))
            }
            Some('?') => {
                self.pos += 1;
                Ast::Opt(Box::new(atom))
            }
            _ => atom,
        })
    }

    fn parse_atom(&mut self) -> Result<Ast, String> {
        let c = self.peek().ok_or("pattern ended unexpectedly")?;
        self.pos += 1;
        match c {
            '(' => {
                let inner = self.parse_alt()?;
                if self.peek() != Some(')') {
                    return Err("unclosed `(`".into());
                }
                self.pos += 1;
                Ok(inner)
            }
            '[' => self.parse_class(),
            '.' => Ok(Ast::One(Matcher::Any)),
            '\\' => {
                let e = self.peek().ok_or("dangling `\\`")?;
                self.pos += 1;
                Ok(Ast::One(Matcher::Lit(e)))
            }
            '^' | '$' => Err(format!("`{c}` is only supported at the pattern boundary")),
            '*' | '+' | '?' => Err(format!("`{c}` needs something to repeat")),
            _ => Ok(Ast::One(Matcher::Lit(c))),
        }
    }

    fn parse_class(&mut self) -> Result<Ast, String> {
        let neg = self.peek() == Some('^');
        if neg {
            self.pos += 1;
        }
        let mut ranges = Vec::new();
        let mut first = true;
        loop {
            let c = self.peek().ok_or("unclosed `[`")?;
            if c == ']' && !first {
                self.pos += 1;
                break;
            }
            first = false;
            self.pos += 1;
            let lo = if c == '\\' {
                let e = self.peek().ok_or("dangling `\\` in class")?;
                self.pos += 1;
                e
            } else {
                c
            };
            // `a-z` range (a trailing `-` is a literal).
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.pos += 1;
                let hi = self.peek().ok_or("unclosed range in class")?;
                self.pos += 1;
                if hi < lo {
                    return Err(format!("inverted range `{lo}-{hi}`"));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        if ranges.is_empty() {
            return Err("empty character class".into());
        }
        Ok(Ast::One(Matcher::Class { neg, ranges }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Filter::new(pat).unwrap().is_match(text)
    }

    #[test]
    fn literals_match_anywhere_unless_anchored() {
        assert!(m("range", "kv.range.fraser"));
        assert!(m("^kv", "kv.range.fraser"));
        assert!(!m("^range", "kv.range.fraser"));
        assert!(m("fraser$", "kv.range.fraser"));
        assert!(!m("range$", "kv.range.fraser"));
        assert!(m("^kv\\.range\\.fraser$", "kv.range.fraser"));
    }

    #[test]
    fn dot_star_plus_opt() {
        assert!(m("^kv\\..*optik$", "kv.range.herl-optik"));
        assert!(m("o+k", "book"));
        assert!(m("^a+$", "aaa"));
        assert!(!m("^a+$", ""));
        assert!(m("^a?b$", "b"));
        assert!(m("^a?b$", "ab"));
        assert!(!m("^a?b$", "aab"));
        // `.` unescaped crosses the dot; escaped does not.
        assert!(m("^kv.range", "kvxrange.y"));
        assert!(!m("^kv\\.range", "kvxrange.y"));
    }

    #[test]
    fn alternation_and_groups() {
        let f = Filter::new("^(kv\\.range|map\\.ordered)").unwrap();
        assert!(f.is_match("kv.range.fraser"));
        assert!(f.is_match("map.ordered.optik2"));
        assert!(!f.is_match("kv.scan.striped"));
        assert!(!f.is_match("fig9.large.harris"));
        assert!(m("^(a|b)+$", "abba"));
        assert!(!m("^(a|b)+$", "abca"));
    }

    #[test]
    fn classes() {
        assert!(m("^fig[0-9]+\\.", "fig11.small-skew.optik1"));
        assert!(!m("^fig[0-9]+\\.", "figx.small"));
        assert!(m("[^.]+$", "a.b.series"));
        assert!(m("^[a-z-]+$", "herl-optik"));
        assert!(!m("^[a-z]+$", "herl-optik"));
    }

    #[test]
    fn empty_pattern_matches_everything() {
        assert!(m("", "anything"));
        assert!(m("", ""));
    }

    #[test]
    fn errors_are_reported() {
        assert!(Filter::new("a(b").is_err());
        assert!(Filter::new("*a").is_err());
        assert!(Filter::new("[").is_err());
        assert!(Filter::new("[z-a]").is_err());
        assert!(Filter::new("a^b").is_err());
        assert!(Filter::new("a$b").is_err());
    }

    #[test]
    fn anchored_top_level_alternation_is_rejected_not_reinterpreted() {
        // grep reads `^kv|ordered` as `(^kv)|ordered`; this engine would
        // anchor both branches, silently dropping matches — so it errors.
        assert!(Filter::new("^kv|ordered").is_err());
        assert!(Filter::new("kv|ordered$").is_err());
        // The grouped spelling is unambiguous and accepted.
        assert!(Filter::new("^(kv|ordered)").is_ok());
        // Unanchored top-level alternation is fine.
        assert!(m("kv|ordered", "map.ordered.fraser"));
    }
}
