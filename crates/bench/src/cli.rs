//! Shared command-line driving for the benchmark binaries.
//!
//! Each `fig*`/`ablate_*` binary is a thin shim over [`run_family`]: select
//! the family's scenarios from the registry, sweep them through
//! [`optik_harness::driver`], and print one aligned table per group
//! (plus extra-metric and latency tables where the scenarios record them).
//! `bench_all` composes the same pieces across families and adds JSON
//! reports + baseline comparison.

use optik_harness::driver::{run_scenarios, ScenarioReport, SweepConfig};
use optik_harness::scenario::{Registry, Scenario};
use optik_harness::table::{fmt_mops, Table};
use optik_harness::Percentiles;

use crate::filter::Filter;
use crate::scenarios::{self, group_blurb};

/// Pretty header shared by the binaries.
pub fn banner(fig: &str, what: &str, cfg: &SweepConfig) {
    println!("== {fig}: {what}");
    println!(
        "   threads={:?} duration={:?} reps={} seed={}",
        cfg.threads, cfg.duration, cfg.reps, cfg.seed
    );
    println!();
}

/// Formats a latency percentile row: `p5/p25/p50/p75/p95/p99 (n)`.
pub fn fmt_percentiles(p: &Percentiles) -> String {
    format!(
        "{}/{}/{}/{}/{}/{} (n={})",
        p.p5, p.p25, p.p50, p.p75, p.p95, p.p99, p.count
    )
}

/// Runs one family (`fig9`, `ablate-victim`, ...) group by group, printing
/// each group's tables as it completes, and returns all reports (for
/// binaries that append derived tables, e.g. ratios).
///
/// With `latency` set, per-operation latencies are recorded at the
/// configured thread count closest to 10 (the paper's latency plots) and
/// printed as a boxplot table per group.
pub fn run_family(family: &str, what: &str, latency: bool) -> Vec<ScenarioReport> {
    let cfg = SweepConfig::from_env();
    banner(family, what, &cfg);
    let reg = scenarios::registry();
    run_selection(&reg, &[family.to_string()], None, &cfg, latency)
}

/// The one definition of "which scenarios does this invocation run":
/// pattern selection (see [`Registry::select`]) narrowed by an optional
/// compiled name [`Filter`]. `bench_all`'s pre-flight count and
/// [`run_selection`] both go through here, so they can never diverge.
pub fn select_filtered<'r>(
    reg: &'r Registry,
    patterns: &[String],
    filter: Option<&Filter>,
) -> Vec<&'r Scenario> {
    let mut sel = reg.select(patterns);
    if let Some(f) = filter {
        sel.retain(|s| f.is_match(s.name()));
    }
    sel
}

/// [`run_family`] over an arbitrary pattern selection (see
/// [`select_filtered`]); used by `bench_all`.
pub fn run_selection(
    reg: &Registry,
    patterns: &[String],
    filter: Option<&Filter>,
    cfg: &SweepConfig,
    latency: bool,
) -> Vec<ScenarioReport> {
    let sel = select_filtered(reg, patterns, filter);
    assert!(
        !sel.is_empty(),
        "no scenarios match {patterns:?}; try `bench_all --list`"
    );
    let latency_at = latency.then(|| cfg.latency_threads());
    let mut groups: Vec<&str> = Vec::new();
    for s in &sel {
        if !groups.contains(&s.group()) {
            groups.push(s.group());
        }
    }
    let mut all = Vec::with_capacity(sel.len());
    for group in groups {
        let scen: Vec<&Scenario> = sel.iter().filter(|s| s.group() == group).copied().collect();
        let reports = run_scenarios(&scen, cfg, latency_at, |_| {});
        print_group(group, &reports, latency_at);
        all.extend(reports);
    }
    all
}

/// Prints the throughput table (and any extra-metric / latency tables) of
/// one completed group.
pub fn print_group(group: &str, reports: &[ScenarioReport], latency_at: Option<usize>) {
    let blurb = group_blurb(group);
    if blurb.is_empty() {
        println!("{group} — throughput (Mops/s):");
    } else {
        println!("{group}: {blurb} — throughput (Mops/s):");
    }
    mops_table(reports).print();
    for key in extra_keys(reports) {
        println!();
        println!("{group} — {key}:");
        extra_table(reports, &key).print();
    }
    for key in internals_keys(reports) {
        println!();
        println!("{group} — internals.{key}:");
        internals_table(reports, &key).print();
    }
    if let Some(threads) = latency_at {
        if let Some(t) = latency_table(reports, threads) {
            println!();
            println!("{group} — latency at {threads} threads (cycles, p5/p25/p50/p75/p95/p99):");
            t.print();
        }
    }
    println!();
}

/// Thread-sweep throughput table: one column per series, one row per
/// thread count.
pub fn mops_table(reports: &[ScenarioReport]) -> Table {
    let mut headers = vec!["threads".to_string()];
    headers.extend(reports.iter().map(|r| r.series.clone()));
    let mut t = Table::new(headers);
    for (i, p) in reports
        .first()
        .map(|r| r.points.as_slice())
        .unwrap_or(&[])
        .iter()
        .enumerate()
    {
        let mut row = vec![p.threads.to_string()];
        for r in reports {
            row.push(
                r.points
                    .get(i)
                    .map(|p| fmt_mops(p.mops))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        t.row(row);
    }
    t
}

/// Extra-metric keys present anywhere in the group, in first-seen order.
pub fn extra_keys(reports: &[ScenarioReport]) -> Vec<String> {
    let mut keys = Vec::new();
    for r in reports {
        for p in &r.points {
            for (k, _) in &p.extra {
                if !keys.contains(k) {
                    keys.push(k.clone());
                }
            }
        }
    }
    keys
}

/// Thread-sweep table of one extra metric (e.g. `cas_per_validation`).
pub fn extra_table(reports: &[ScenarioReport], key: &str) -> Table {
    let mut headers = vec!["threads".to_string()];
    headers.extend(reports.iter().map(|r| r.series.clone()));
    let mut t = Table::new(headers);
    for (i, p) in reports
        .first()
        .map(|r| r.points.as_slice())
        .unwrap_or(&[])
        .iter()
        .enumerate()
    {
        let mut row = vec![p.threads.to_string()];
        for r in reports {
            let cell = r
                .points
                .get(i)
                .and_then(|p| p.extra.iter().find(|(k, _)| k == key))
                .map(|(_, v)| format!("{v:.2}"))
                .unwrap_or_else(|| "-".into());
            row.push(cell);
        }
        t.row(row);
    }
    t
}

/// Probe-internal metric keys present anywhere in the group, in first-seen
/// order. Empty unless the workspace was built with `--features probe`.
pub fn internals_keys(reports: &[ScenarioReport]) -> Vec<String> {
    let mut keys = Vec::new();
    for r in reports {
        for p in &r.points {
            for (k, _) in &p.internals {
                if !keys.contains(k) {
                    keys.push(k.clone());
                }
            }
        }
    }
    keys
}

/// Thread-sweep table of one probe-internal metric (e.g.
/// `validation_fail_per_op`).
pub fn internals_table(reports: &[ScenarioReport], key: &str) -> Table {
    let mut headers = vec!["threads".to_string()];
    headers.extend(reports.iter().map(|r| r.series.clone()));
    let mut t = Table::new(headers);
    for (i, p) in reports
        .first()
        .map(|r| r.points.as_slice())
        .unwrap_or(&[])
        .iter()
        .enumerate()
    {
        let mut row = vec![p.threads.to_string()];
        for r in reports {
            let cell = r
                .points
                .get(i)
                .and_then(|p| p.internals.iter().find(|(k, _)| k == key))
                .map(|(_, v)| format!("{v:.3}"))
                .unwrap_or_else(|| "-".into());
            row.push(cell);
        }
        t.row(row);
    }
    t
}

/// Latency boxplot table at `threads`: one column per series, one row per
/// operation kind. `None` if no series recorded latency there.
pub fn latency_table(reports: &[ScenarioReport], threads: usize) -> Option<Table> {
    let mut kinds: Vec<&str> = Vec::new();
    for r in reports {
        if let Some(p) = r.at(threads) {
            for (k, _) in &p.latency {
                if !kinds.contains(&k.as_str()) {
                    kinds.push(k);
                }
            }
        }
    }
    if kinds.is_empty() {
        return None;
    }
    let mut headers = vec!["op".to_string()];
    headers.extend(reports.iter().map(|r| r.series.clone()));
    let mut t = Table::new(headers);
    for kind in kinds {
        let mut row = vec![kind.to_string()];
        for r in reports {
            let cell = r
                .at(threads)
                .and_then(|p| p.latency.iter().find(|(k, _)| k == kind))
                .map(|(_, q)| fmt_percentiles(q))
                .unwrap_or_else(|| "-".into());
            row.push(cell);
        }
        t.row(row);
    }
    Some(t)
}

/// `num/den` throughput-ratio table for one group (e.g. Figure 7's
/// `optik/mcs` column).
pub fn ratio_table(reports: &[ScenarioReport], group: &str, num: &str, den: &str) -> Option<Table> {
    let num_r = reports
        .iter()
        .find(|r| r.group == group && r.series == num)?;
    let den_r = reports
        .iter()
        .find(|r| r.group == group && r.series == den)?;
    let mut t = Table::new(["threads".to_string(), format!("{num}/{den}")]);
    for p in &num_r.points {
        let d = den_r.at(p.threads)?;
        t.row([
            p.threads.to_string(),
            format!("{:.2}x", p.mops / d.mops.max(1e-9)),
        ]);
    }
    Some(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optik_harness::driver::Point;

    fn report(group: &str, series: &str, mops: &[f64]) -> ScenarioReport {
        ScenarioReport {
            scenario: format!("{group}.{series}"),
            group: group.to_string(),
            series: series.to_string(),
            points: mops
                .iter()
                .enumerate()
                .map(|(i, &m)| Point {
                    threads: 1 << i,
                    mops: m,
                    extra: vec![("cas".into(), m * 2.0)],
                    latency: Vec::new(),
                    internals: vec![("lock_acquires_per_op".into(), 1.0)],
                })
                .collect(),
        }
    }

    #[test]
    fn mops_table_has_one_column_per_series() {
        let rs = vec![
            report("g.a", "x", &[1.0, 2.0]),
            report("g.a", "y", &[3.0, 4.0]),
        ];
        let t = mops_table(&rs);
        let rendered = t.render();
        assert!(rendered.contains("threads"));
        assert!(rendered.contains('x') && rendered.contains('y'));
        assert_eq!(t.len(), 2, "one row per thread count");
    }

    #[test]
    fn extra_tables_and_keys() {
        let rs = vec![report("g.a", "x", &[1.0])];
        assert_eq!(extra_keys(&rs), vec!["cas".to_string()]);
        assert!(extra_table(&rs, "cas").render().contains("2.00"));
    }

    #[test]
    fn internals_tables_and_keys() {
        let rs = vec![report("g.a", "x", &[1.0])];
        assert_eq!(
            internals_keys(&rs),
            vec!["lock_acquires_per_op".to_string()]
        );
        assert!(internals_table(&rs, "lock_acquires_per_op")
            .render()
            .contains("1.000"));
    }

    #[test]
    fn ratio_table_divides_matching_points() {
        let rs = vec![
            report("g.a", "x", &[2.0, 8.0]),
            report("g.a", "y", &[1.0, 2.0]),
        ];
        let t = ratio_table(&rs, "g.a", "x", "y").unwrap();
        let s = t.render();
        assert!(s.contains("2.00x") && s.contains("4.00x"), "{s}");
        assert!(ratio_table(&rs, "g.a", "x", "missing").is_none());
    }

    #[test]
    fn latency_table_absent_without_samples() {
        let rs = vec![report("g.a", "x", &[1.0])];
        assert!(latency_table(&rs, 1).is_none());
    }
}
