//! Figure 11: throughput of skip-list algorithms.
//!
//! Workloads (20% effective updates): large-skewed (65536, zipf a=0.9) and
//! small-skewed (1024, zipf). Algorithms: fraser, herlihy, herl-optik,
//! optik1, optik2.
//!
//! Paper shape: all ≈equal at low contention; herl-optik ≥ herlihy (fewer
//! restarts); optik2 > optik1 under skew and ~10% over fraser at peak, but
//! optik2 drops under multiprogramming while fraser sustains.

use optik_bench::{banner, Config};
use optik_harness::runner::run_set_workload;
use optik_harness::table::{fmt_mops, Table};
use optik_harness::{stats, ConcurrentSet, Workload};
use optik_skiplists::{
    FraserSkipList, HerlihyOptikSkipList, HerlihySkipList, OptikSkipList1, OptikSkipList2,
};

fn measure<S: ConcurrentSet>(
    make: impl Fn() -> S,
    w: &Workload,
    threads: usize,
    cfg: &Config,
) -> f64 {
    let mut mops = Vec::new();
    for rep in 0..cfg.reps {
        let set = make();
        w.initial_fill(cfg.seed + rep as u64, |k, v| set.insert(k, v));
        let res = run_set_workload(
            threads,
            cfg.duration,
            w,
            cfg.seed + rep as u64,
            false,
            |_| &set,
        );
        mops.push(res.mops());
    }
    stats::median(&mops)
}

fn main() {
    let cfg = Config::from_env();
    banner("Figure 11", "skip lists on two skewed workloads", &cfg);

    let workloads: [(&str, u64); 2] = [
        ("Large skewed (65536 elements)", 65536),
        ("Small skewed (1024 elements)", 1024),
    ];

    for (label, size) in workloads {
        let w = Workload::paper(size, 20, true);
        println!("{label}, 20% effective updates — throughput (Mops/s):");
        let mut t = Table::new([
            "threads",
            "fraser",
            "herlihy",
            "herl-optik",
            "optik1",
            "optik2",
        ]);
        for &n in &cfg.threads {
            t.row([
                n.to_string(),
                fmt_mops(measure(FraserSkipList::new, &w, n, &cfg)),
                fmt_mops(measure(HerlihySkipList::new, &w, n, &cfg)),
                fmt_mops(measure(HerlihyOptikSkipList::new, &w, n, &cfg)),
                fmt_mops(measure(OptikSkipList1::new, &w, n, &cfg)),
                fmt_mops(measure(OptikSkipList2::new, &w, n, &cfg)),
            ]);
        }
        t.print();
        println!();
    }
}
