//! Figure 11: throughput of skip-list algorithms.
//!
//! Workloads (20% effective updates): large-skewed (65536, zipf a=0.9) and
//! small-skewed (1024, zipf). Algorithms: fraser, herlihy, herl-optik,
//! optik1, optik2.
//!
//! Paper shape: all ≈equal at low contention; herl-optik ≥ herlihy (fewer
//! restarts); optik2 > optik1 under skew and ~10% over fraser at peak, but
//! optik2 drops under multiprogramming while fraser sustains.
//!
//! Scenarios: `fig11.*` in the registry (`bench_all --list`).

fn main() {
    optik_bench::cli::run_family("fig11", "skip lists on two skewed workloads", false);
}
