//! Figure 5: locking and validation with and without OPTIK locks.
//!
//! A single lock; every "operation" is one validated acquisition: read the
//! version, then lock-and-validate, retrying until success, then unlock.
//! Reproduces both panels: throughput (Mops/s) and the average number of
//! CAS instructions per successful validation (the automatic
//! `cas_per_validation` extra table).
//!
//! Paper shape: the two OPTIK implementations are identical and >10×
//! faster than the TTAS+version straw man on average, whose CAS count
//! per validation grows with contention while OPTIK's stays near 1.
//!
//! Scenarios: `fig5.*` in the registry (`bench_all --list`).

fn main() {
    optik_bench::cli::run_family(
        "fig5",
        "validated lock acquisitions: ttas vs optik-ticket vs optik-versioned",
        false,
    );
}
