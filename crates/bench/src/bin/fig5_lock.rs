//! Figure 5: locking and validation with and without OPTIK locks.
//!
//! A single lock; every "operation" is one validated acquisition: read the
//! version, then lock-and-validate, retrying until success, then unlock.
//! Reproduces both panels: throughput (Mops/s) and the average number of
//! CAS instructions per successful validation.
//!
//! Paper shape: the two OPTIK implementations are identical and >10×
//! faster than the TTAS+version straw man on average, whose CAS count
//! per validation grows with contention while OPTIK's stays near 1.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use optik::{OptikLock, OptikTicket, OptikVersioned, ValidatedLock};
use optik_bench::{banner, Config};
use optik_harness::runner::run_workers;
use optik_harness::stats;
use optik_harness::table::{fmt_mops, Table};

struct Point {
    mops: f64,
    cas_per_validation: f64,
}

fn measure_optik<L: OptikLock>(threads: usize, duration: Duration) -> Point {
    let lock = L::default();
    let casses = AtomicU64::new(0);
    let results = run_workers(threads, duration, |ctx| {
        let mut ops = 0u64;
        let mut cas = 0u64;
        while !ctx.should_stop() {
            loop {
                let v = lock.get_version();
                if L::is_locked_version(v) {
                    synchro::relax();
                    continue;
                }
                let (ok, c) = lock.try_lock_version_counting(v);
                cas += u64::from(c);
                if ok {
                    lock.unlock();
                    break;
                }
            }
            ops += 1;
        }
        (ops, cas)
    });
    let ops: u64 = results.iter().map(|r| r.0).sum();
    casses.fetch_add(results.iter().map(|r| r.1).sum(), Ordering::Relaxed);
    Point {
        mops: ops as f64 / duration.as_secs_f64() / 1e6,
        cas_per_validation: casses.load(Ordering::Relaxed) as f64 / ops.max(1) as f64,
    }
}

fn measure_ttas(threads: usize, duration: Duration) -> Point {
    let lock = ValidatedLock::new();
    let results = run_workers(threads, duration, |ctx| {
        let mut ops = 0u64;
        let mut cas = 0u64;
        while !ctx.should_stop() {
            loop {
                let v = lock.get_version();
                let (ok, c) = lock.lock_and_validate_counting(v);
                cas += u64::from(c);
                if ok {
                    lock.commit_unlock();
                    break;
                }
            }
            ops += 1;
        }
        (ops, cas)
    });
    let ops: u64 = results.iter().map(|r| r.0).sum();
    let cas: u64 = results.iter().map(|r| r.1).sum();
    Point {
        mops: ops as f64 / duration.as_secs_f64() / 1e6,
        cas_per_validation: cas as f64 / ops.max(1) as f64,
    }
}

fn main() {
    let cfg = Config::from_env();
    banner(
        "Figure 5",
        "validated lock acquisitions: ttas vs optik-ticket vs optik-versioned",
        &cfg,
    );

    let mut thr = Table::new(["threads", "ttas", "optik-ticket", "optik-versioned"]);
    let mut cas = Table::new(["threads", "ttas", "optik-ticket", "optik-versioned"]);
    for &t in &cfg.threads {
        let mut pts = Vec::new();
        for name in 0..3 {
            let series: Vec<Point> = (0..cfg.reps)
                .map(|_| match name {
                    0 => measure_ttas(t, cfg.duration),
                    1 => measure_optik::<OptikTicket>(t, cfg.duration),
                    _ => measure_optik::<OptikVersioned>(t, cfg.duration),
                })
                .collect();
            let mops = stats::median(&series.iter().map(|p| p.mops).collect::<Vec<_>>());
            let cpv = stats::median(
                &series
                    .iter()
                    .map(|p| p.cas_per_validation)
                    .collect::<Vec<_>>(),
            );
            pts.push((mops, cpv));
        }
        thr.row([
            t.to_string(),
            fmt_mops(pts[0].0),
            fmt_mops(pts[1].0),
            fmt_mops(pts[2].0),
        ]);
        cas.row([
            t.to_string(),
            format!("{:.2}", pts[0].1),
            format!("{:.2}", pts[1].1),
            format!("{:.2}", pts[2].1),
        ]);
    }
    println!("Throughput (Mops/s):");
    thr.print();
    println!();
    println!("# CAS per successful validation:");
    cas.print();
}
