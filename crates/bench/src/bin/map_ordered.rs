//! Extension: the ordered structures (skip lists, BSTs) as value-carrying
//! maps with validated range scans.
//!
//! Workload (1024 entries, zipf a=0.9): 10% in-place upserts, 10%
//! removes, 2% 64-key range scans, the rest gets. Series: the five
//! Figure-11 skip lists plus the two OPTIK BSTs, all through their
//! `OrderedMap` impls.
//!
//! Expected shape: point-op ordering mirrors fig11/bst; range scans add a
//! per-step validation cost to the OPTIK designs that fraser's marked
//! pointers get for free; `keys_per_range` reports observed window
//! density.
//!
//! Scenarios: `map.ordered.*` in the registry (`bench_all --list`).

fn main() {
    optik_bench::cli::run_family(
        "map",
        "ordered structures as value-carrying maps with range scans",
        false,
    );
}
