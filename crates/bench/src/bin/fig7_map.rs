//! Figure 7: lock-based (MCS) vs OPTIK-based array map.
//!
//! Two workloads at 10% effective updates — *small* (4 slots) and *large*
//! (1024 slots) — plus the latency distributions at ~10 threads.
//!
//! Paper shape: optik beats mcs everywhere; ≈4.7× on the small map and
//! ≈1.4× on the large one (excluding multiprogramming), mostly from
//! lock-free searches and unsynchronized infeasible updates.
//!
//! Scenarios: `fig7.*` in the registry (`bench_all --list`).

use optik_bench::cli;

fn main() {
    let reports = cli::run_family(
        "fig7",
        "array maps: mcs (global MCS lock) vs optik (OPTIK pattern)",
        true,
    );
    for group in ["fig7.small", "fig7.large"] {
        if let Some(t) = cli::ratio_table(&reports, group, "optik", "mcs") {
            println!("{group} — speedup:");
            t.print();
            println!();
        }
    }
}
