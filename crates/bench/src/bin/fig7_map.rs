//! Figure 7: lock-based (MCS) vs OPTIK-based array map.
//!
//! Two workloads at 10% effective updates — *small* (4 slots) and *large*
//! (1024 slots) — plus the latency distributions at 10 threads.
//!
//! Paper shape: optik beats mcs everywhere; ≈4.7× on the small map and
//! ≈1.4× on the large one (excluding multiprogramming), mostly from
//! lock-free searches and unsynchronized infeasible updates.

use optik_bench::{banner, fmt_percentiles, Config};
use optik_harness::runner::run_set_workload;
use optik_harness::table::{fmt_mops, Table};
use optik_harness::{stats, OpKind, Workload};
use optik_maps::{ArrayMap, LockArrayMap, OptikArrayMap};

/// Adapter: expose an [`ArrayMap`] through the harness `SetHandle`.
struct MapRef<'a, M: ArrayMap>(&'a M);

impl<M: ArrayMap> optik_harness::SetHandle for MapRef<'_, M> {
    fn search(&mut self, key: u64) -> Option<u64> {
        self.0.search(key)
    }
    fn insert(&mut self, key: u64, val: u64) -> bool {
        self.0.insert(key, val)
    }
    fn delete(&mut self, key: u64) -> Option<u64> {
        self.0.delete(key)
    }
}

fn run_point<M: ArrayMap>(
    make: impl Fn() -> M,
    slots: u64,
    threads: usize,
    cfg: &Config,
    latency: bool,
) -> (f64, optik_harness::LatencyRecorder) {
    // Workload: key range = 2x the slot count, 10% effective updates.
    let w = Workload::paper(slots, 10, false);
    let mut mops = Vec::new();
    let mut lat = optik_harness::LatencyRecorder::new();
    for rep in 0..cfg.reps {
        let map = make();
        w.initial_fill(cfg.seed + rep as u64, |k, v| map.insert(k, v));
        let res = run_set_workload(
            threads,
            cfg.duration,
            &w,
            cfg.seed + rep as u64,
            latency,
            |_| MapRef(&map),
        );
        mops.push(res.mops());
        lat.merge(&res.latency);
    }
    (stats::median(&mops), lat)
}

fn main() {
    let cfg = Config::from_env();
    banner(
        "Figure 7",
        "array maps: mcs (global MCS lock) vs optik (OPTIK pattern)",
        &cfg,
    );

    for (label, slots) in [
        ("Small map (4 slots)", 4u64),
        ("Large map (1024 slots)", 1024),
    ] {
        println!("{label}, 10% effective updates — throughput (Mops/s):");
        let mut t = Table::new(["threads", "mcs", "optik", "optik/mcs"]);
        for &n in &cfg.threads {
            let (mcs, _) = run_point(|| LockArrayMap::new(slots as usize), slots, n, &cfg, false);
            let (opt, _) = run_point(
                || OptikArrayMap::<optik::OptikVersioned>::new(slots as usize),
                slots,
                n,
                &cfg,
                false,
            );
            t.row([
                n.to_string(),
                fmt_mops(mcs),
                fmt_mops(opt),
                format!("{:.2}x", opt / mcs.max(1e-9)),
            ]);
        }
        t.print();
        println!();
    }

    // Latency distributions at 10 threads (or the closest configured).
    let lat_threads = cfg
        .threads
        .iter()
        .copied()
        .min_by_key(|&t| t.abs_diff(10))
        .unwrap_or(10);
    println!(
        "Latency distribution at {lat_threads} threads, small map (cycles, p5/p25/p50/p75/p95):"
    );
    let mut t = Table::new(["op", "mcs", "optik"]);
    let (_, lat_mcs) = run_point(|| LockArrayMap::new(4), 4, lat_threads, &cfg, true);
    let (_, lat_opt) = run_point(
        || OptikArrayMap::<optik::OptikVersioned>::new(4),
        4,
        lat_threads,
        &cfg,
        true,
    );
    for kind in OpKind::ALL {
        let m = lat_mcs
            .percentiles(kind)
            .map(|p| fmt_percentiles(&p))
            .unwrap_or_else(|| "-".into());
        let o = lat_opt
            .percentiles(kind)
            .map(|p| fmt_percentiles(&p))
            .unwrap_or_else(|| "-".into());
        t.row([kind.label().to_string(), m, o]);
    }
    t.print();
}
