//! The `optik-kv` sharded key-value store: system-level workloads over the
//! OPTIK map backends.
//!
//! Workloads (8 shards unless ablated): read-heavy zipfian (90% gets),
//! write-heavy uniform (60% updates), batched (8-key multi-get/multi-put
//! with sorted-shard acquisition), snapshot scans (1% validated scans under
//! 20% updates), a small store with raw array-map shards, and a 1..32
//! shard-count ablation.
//!
//! Expected shapes: gets are lock-free so read-heavy scales with readers;
//! write scaling follows min(threads, shards); batching amortizes shard
//! locking; scans dip but do not collapse update throughput.
//!
//! Scenarios: `kv.*` in the registry (`bench_all --list`).

fn main() {
    optik_bench::cli::run_family("kv", "sharded key-value store workloads", true);
}
