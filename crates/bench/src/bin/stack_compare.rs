//! §5.5's stack experiment: Treiber vs OPTIK stack.
//!
//! Paper: "The original and the OPTIK-based variants behave similarly" —
//! the stack's single point of contention offers no optimistic prefix.

use optik_bench::{banner, Config};
use optik_harness::runner::run_workers;
use optik_harness::table::{fmt_mops, Table};
use optik_harness::{stats, FastRng};
use optik_stacks::{ConcurrentStack, EliminationStack, OptikStack, TreiberStack};

fn measure<S: ConcurrentStack>(make: impl Fn() -> S, threads: usize, cfg: &Config) -> f64 {
    let mut mops = Vec::new();
    for rep in 0..cfg.reps {
        let s = make();
        for i in 0..1024u64 {
            s.push(i);
        }
        let results = run_workers(threads, cfg.duration, |ctx| {
            let mut rng = FastRng::for_thread(cfg.seed + rep as u64, ctx.tid);
            let mut ops = 0u64;
            while !ctx.should_stop() {
                if rng.next_u64() % 2 == 0 {
                    s.push(ops);
                } else {
                    let _ = s.pop();
                }
                ops += 1;
            }
            ops
        });
        let total: u64 = results.iter().sum();
        mops.push(total as f64 / cfg.duration.as_secs_f64() / 1e6);
    }
    stats::median(&mops)
}

fn main() {
    let cfg = Config::from_env();
    banner(
        "§5.5 stacks",
        "Treiber vs OPTIK vs elimination stack (50/50 push/pop)",
        &cfg,
    );
    let mut t = Table::new([
        "threads",
        "treiber",
        "optik",
        "elim",
        "optik/treiber",
        "elim/treiber",
    ]);
    for &n in &cfg.threads {
        let tr = measure(TreiberStack::new, n, &cfg);
        let op = measure(OptikStack::new, n, &cfg);
        let el = measure(EliminationStack::new, n, &cfg);
        t.row([
            n.to_string(),
            fmt_mops(tr),
            fmt_mops(op),
            fmt_mops(el),
            format!("{:.2}x", op / tr.max(1e-9)),
            format!("{:.2}x", el / tr.max(1e-9)),
        ]);
    }
    t.print();
}
