//! §5.5's stack experiment: Treiber vs OPTIK vs elimination stack.
//!
//! Paper: "The original and the OPTIK-based variants behave similarly" —
//! the stack's single point of contention offers no optimistic prefix.
//!
//! Scenarios: `stacks.*` in the registry (`bench_all --list`).

use optik_bench::cli;

fn main() {
    let reports = cli::run_family(
        "stacks",
        "Treiber vs OPTIK vs elimination stack (50/50 push/pop)",
        false,
    );
    for num in ["optik", "elim"] {
        if let Some(t) = cli::ratio_table(&reports, "stacks", num, "treiber") {
            println!("stacks — {num} vs treiber:");
            t.print();
            println!();
        }
    }
}
