//! `bench_all` — run any subset of the scenario registry, write JSON
//! reports, and compare against a baseline.
//!
//! ```text
//! bench_all --list                 # enumerate every registered scenario
//! bench_all                        # run everything, write BENCH_<family>.json
//! bench_all fig9 fig12.stable      # run by family/group/scenario name
//! bench_all fig9 --json out.json   # single combined report instead
//! bench_all --baseline BENCH_baseline.json --tolerance 25
//!                                  # exit 1 on >25% throughput regression
//! bench_all --digest               # regenerate EXPERIMENTS.md from the
//!                                  # BENCH_*.json files in --out-dir
//! bench_all kv --probe             # require probe internals in reports
//!                                  # (build with --features probe)
//! bench_all kv --trace-out traces/ # dump Chrome trace-event JSON spans
//! ```
//!
//! Sweep knobs come from the usual environment variables
//! (`BENCH_THREADS`, `BENCH_DUR_MS`, `BENCH_REPS`, `BENCH_SEED`); the
//! machine class recorded in the report can be overridden with
//! `BENCH_MACHINE`.

use std::path::PathBuf;
use std::process::ExitCode;

use optik_bench::cli;
use optik_bench::scenarios;
use optik_harness::driver::SweepConfig;
use optik_harness::report::{compare, Report};
use optik_harness::table::Table;

struct Args {
    patterns: Vec<String>,
    filter: Option<String>,
    ab: Option<(String, String)>,
    list: bool,
    digest: bool,
    json: Option<PathBuf>,
    out_dir: PathBuf,
    baseline: Option<PathBuf>,
    tolerance_pct: f64,
    latency: bool,
    probe: bool,
    trace_out: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_all [PATTERN ...] [--list] [--json FILE] [--out-dir DIR]\n\
         \x20                [--baseline FILE] [--tolerance PCT] [--no-latency]\n\
         \x20                [--filter REGEX] [--digest] [--probe]\n\
         \x20                [--trace-out DIR] [--ab LEFT,RIGHT]\n\
         \n\
         PATTERN selects scenarios by exact name or dot-boundary prefix\n\
         (family or group); no patterns = the whole registry.\n\
         --ab LEFT,RIGHT runs an interleaved A/B comparison of two exact\n\
         scenario names: BENCH_REPS pairs per thread count, run\n\
         left,right,left,right back to back, reporting the median of the\n\
         per-pair right/left throughput ratios (drift cancels per pair).\n\
         Runs nothing else and writes no reports.\n\
         --filter REGEX narrows any selection to scenario names matching\n\
         the regex (anchors, classes, alternation; `--list` shows names),\n\
         e.g. --filter '^(kv\\.range|map\\.ordered)'.\n\
         --digest runs no benchmarks: it loads every BENCH_*.json in\n\
         --out-dir (newest first, so re-recorded reports win duplicate\n\
         scenarios; an explicit --baseline outranks all) and regenerates\n\
         EXPERIMENTS.md from them.\n\
         --probe and --trace-out need a probe-enabled build\n\
         (`cargo run -p optik-bench --features probe --bin bench_all`):\n\
         --probe fails the run unless every kv.*/fig10.* scenario report\n\
         carries probe internals; --trace-out DIR writes the recorded\n\
         spans as Chrome trace-event JSON (Perfetto-loadable)."
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        patterns: Vec::new(),
        filter: None,
        ab: None,
        list: false,
        digest: false,
        json: None,
        out_dir: PathBuf::from("."),
        baseline: None,
        tolerance_pct: 25.0,
        latency: true,
        probe: false,
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => args.list = true,
            "--ab" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let (l, r) = spec.split_once(',').unwrap_or_else(|| usage());
                if l.is_empty() || r.is_empty() {
                    usage();
                }
                args.ab = Some((l.to_string(), r.to_string()));
            }
            "--filter" => args.filter = Some(it.next().unwrap_or_else(|| usage())),
            "--digest" => args.digest = true,
            "--json" => args.json = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--out-dir" => {
                args.out_dir = PathBuf::from(it.next().unwrap_or_else(|| usage()));
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--tolerance" => {
                args.tolerance_pct = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--no-latency" => args.latency = false,
            "--probe" => args.probe = true,
            "--trace-out" => {
                args.trace_out = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--help" | "-h" => usage(),
            p if p.starts_with('-') => usage(),
            p => args.patterns.push(p.to_string()),
        }
    }
    args
}

/// `--digest`: load reports, render `EXPERIMENTS.md`, run nothing.
fn write_digest(args: &Args, reg: &optik_harness::Registry) -> ExitCode {
    let mut reports = Vec::new();
    // The baseline (if given) goes first: on duplicate scenario names the
    // digest keeps the first occurrence, so the checked-in numbers win.
    if let Some(path) = &args.baseline {
        match Report::load(path) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("failed to load {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let mut json_files: Vec<PathBuf> = match std::fs::read_dir(&args.out_dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect(),
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.out_dir.display());
            return ExitCode::FAILURE;
        }
    };
    // Newest first: the digest keeps the first occurrence of each
    // scenario, so a freshly recorded BENCH_fig5.json must beat a stale
    // checked-in BENCH_baseline.json sitting in the same directory (a
    // filename sort would put "baseline" before most families). An
    // explicit --baseline still outranks everything (loaded above).
    json_files.sort_by_key(|p| {
        std::cmp::Reverse(
            std::fs::metadata(p)
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH),
        )
    });
    // Canonicalized so `--baseline BENCH_baseline.json` matches the
    // `./BENCH_baseline.json` that read_dir yields for the default
    // out-dir (textual path equality would load the baseline twice).
    let baseline_canon = args.baseline.as_deref().and_then(|p| p.canonicalize().ok());
    for path in &json_files {
        if baseline_canon.is_some() && path.canonicalize().ok() == baseline_canon {
            continue; // already loaded first
        }
        match Report::load(path) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("failed to load {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if reports.is_empty() {
        eprintln!(
            "no BENCH_*.json reports in {} (and no --baseline); run bench_all first",
            args.out_dir.display()
        );
        return ExitCode::from(2);
    }
    let doc = optik_bench::digest::render(&reports, reg);
    let out = args.out_dir.join("EXPERIMENTS.md");
    if let Err(e) = std::fs::write(&out, doc) {
        eprintln!("failed to write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} ({} reports, {} scenarios)",
        out.display(),
        reports.len(),
        reports.iter().map(|r| r.scenarios.len()).sum::<usize>()
    );
    ExitCode::SUCCESS
}

/// `--ab LEFT,RIGHT`: interleaved pairwise comparison of two scenarios.
///
/// Every claimed speedup in EXPERIMENTS.md comes through here: pairs run
/// back to back under identical seeds, so the median per-pair ratio is
/// robust against the slow drift that separate sweeps absorb into their
/// absolute numbers.
fn run_ab(left_name: &str, right_name: &str, reg: &optik_harness::Registry) -> ExitCode {
    let find = |name: &str| reg.iter().find(|s| s.name() == name);
    let (left, right) = match (find(left_name), find(right_name)) {
        (Some(l), Some(r)) => (l, r),
        (l, r) => {
            for (name, found) in [(left_name, l.is_some()), (right_name, r.is_some())] {
                if !found {
                    eprintln!("--ab: no scenario named {name:?}; try --list");
                }
            }
            return ExitCode::from(2);
        }
    };
    let cfg = SweepConfig::from_env();
    cli::banner("bench_all --ab", "interleaved A/B comparison", &cfg);
    println!("A (left):  {}\nB (right): {}", left.name(), right.name());
    println!(
        "{} interleaved pairs per thread count; ratio = median of per-pair B/A\n",
        cfg.reps
    );
    let points = optik_harness::driver::run_ab(left, right, &cfg);
    let mut t = Table::new([
        "threads",
        "A (Mops/s)",
        "B (Mops/s)",
        "B/A (median of pairs)",
    ]);
    for p in &points {
        t.row([
            p.threads.to_string(),
            format!("{:.3}", p.left_mops),
            format!("{:.3}", p.right_mops),
            format!("{:.3}x", p.ratio),
        ]);
    }
    t.print();
    // Geomean across thread counts: one headline number per A/B claim.
    let geomean = (points.iter().map(|p| p.ratio.max(1e-12).ln()).sum::<f64>()
        / points.len().max(1) as f64)
        .exp();
    println!("\ngeomean B/A across thread counts: {geomean:.3}x");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = parse_args();
    let reg = scenarios::registry();

    if args.list {
        let mut t = Table::new(["scenario", "subject", "id", "description"]);
        for s in reg.iter() {
            t.row([s.name(), s.subject().kind(), s.subject_id(), s.about()]);
        }
        t.print();
        println!("\n{} scenarios registered", reg.len());
        return ExitCode::SUCCESS;
    }

    if args.digest {
        return write_digest(&args, &reg);
    }

    if let Some((left, right)) = &args.ab {
        return run_ab(left, right, &reg);
    }

    if (args.probe || args.trace_out.is_some()) && !optik_probe::enabled() {
        eprintln!(
            "--probe/--trace-out need a probe-enabled build; rerun as\n  \
             cargo run --release -p optik-bench --features probe --bin bench_all -- ..."
        );
        return ExitCode::from(2);
    }

    let filter = match args.filter.as_deref().map(optik_bench::filter::Filter::new) {
        None => None,
        Some(Ok(f)) => Some(f),
        Some(Err(e)) => {
            eprintln!("bad --filter pattern: {e}");
            return ExitCode::from(2);
        }
    };
    let cfg = SweepConfig::from_env();
    cli::banner("bench_all", "unified scenario sweep", &cfg);
    let selected = cli::select_filtered(&reg, &args.patterns, filter.as_ref());
    if selected.is_empty() {
        eprintln!(
            "no scenarios match {:?} (filter: {:?}); try --list",
            args.patterns, args.filter
        );
        return ExitCode::from(2);
    }
    println!("{} scenarios selected\n", selected.len());
    let reports = cli::run_selection(&reg, &args.patterns, filter.as_ref(), &cfg, args.latency);

    // `--probe` is a contract, not a hint: the kv engine and the OPTIK
    // hashtable (fig10) are hook-dense, so a scenario of theirs with no
    // internals means the probe layer silently fell off.
    if args.probe {
        let silent: Vec<&str> = reports
            .iter()
            .filter(|s| s.scenario.starts_with("kv.") || s.scenario.starts_with("fig10."))
            .filter(|s| s.points.iter().all(|p| p.internals.is_empty()))
            .map(|s| s.scenario.as_str())
            .collect();
        if !silent.is_empty() {
            eprintln!(
                "error: --probe ran but {} scenarios recorded no internals:",
                silent.len()
            );
            for s in &silent {
                eprintln!("  {s}");
            }
            return ExitCode::FAILURE;
        }
        let with = reports
            .iter()
            .filter(|s| s.points.iter().any(|p| !p.internals.is_empty()))
            .count();
        println!(
            "probe: internals recorded for {with}/{} scenarios",
            reports.len()
        );
    }

    // `--trace-out`: drain the span rings accumulated across the whole
    // run into one Chrome trace-event file (load in Perfetto or
    // chrome://tracing).
    if let Some(dir) = &args.trace_out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let path = dir.join("trace_events.json");
        match optik_probe::trace::drain_json() {
            Some(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("failed to write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("wrote {} (Chrome trace-event format)", path.display());
            }
            None => println!(
                "trace: no spans recorded (selected scenarios ran no \
                 migrations, TTL sweeps, or grace periods)"
            ),
        }
    }

    let machine = std::env::var("BENCH_MACHINE").unwrap_or_else(|_| Report::machine_class());
    let combined = Report::new(&machine, &cfg, reports);

    // Write artifacts: one combined file, or one per family.
    if let Some(path) = &args.json {
        if let Err(e) = combined.save(path) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    } else {
        let mut families: Vec<&str> = Vec::new();
        for s in &combined.scenarios {
            let fam = s.scenario.split('.').next().expect("non-empty");
            if !families.contains(&fam) {
                families.push(fam);
            }
        }
        for fam in families {
            let sub = Report::new(
                &machine,
                &cfg,
                combined
                    .scenarios
                    .iter()
                    .filter(|s| s.scenario.split('.').next() == Some(fam))
                    .cloned()
                    .collect(),
            );
            let path = args.out_dir.join(format!("BENCH_{fam}.json"));
            if let Err(e) = sub.save(&path) {
                eprintln!("failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", path.display());
        }
    }

    // Baseline comparison.
    if let Some(path) = &args.baseline {
        let baseline = match Report::load(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("failed to load baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let cmp = compare(&combined, &baseline);
        let tol = args.tolerance_pct / 100.0;
        // Absolute Mops/s only compare meaningfully on the same machine
        // class: cross-class deltas measure hardware, not code. On a
        // mismatch the gate reports regressions but does not fail.
        let same_machine = baseline.machine == machine;
        println!();
        println!(
            "baseline: {} ({} matched points, geomean ratio {:.3})",
            path.display(),
            cmp.deltas.len(),
            cmp.geomean_ratio()
        );
        if !same_machine {
            println!(
                "warning: baseline machine class differs\n  baseline: {}\n  current:  {}\n\
                 cross-class throughput deltas measure hardware, not code; the\n\
                 regression gate is advisory until the baseline is re-recorded\n\
                 on this machine class",
                baseline.machine, machine
            );
        }
        if !cmp.missing_in_current.is_empty() {
            if args.patterns.is_empty() && filter.is_none() {
                // A full-registry run must cover everything the baseline
                // covers: a missing scenario means regression protection
                // silently shrank (rename/delete without re-recording).
                eprintln!(
                    "error: {} baseline scenarios missing from this full run \
                     (renamed/deleted without re-recording the baseline?):",
                    cmp.missing_in_current.len()
                );
                for s in &cmp.missing_in_current {
                    eprintln!("  {s}");
                }
                return ExitCode::FAILURE;
            }
            println!(
                "note: {} baseline scenarios not in this subset run",
                cmp.missing_in_current.len()
            );
        }
        let regressions = cmp.regressions(tol);
        if regressions.is_empty() {
            println!("no regressions beyond {:.0}% tolerance", args.tolerance_pct);
        } else {
            println!(
                "{} regressions beyond {:.0}% tolerance:",
                regressions.len(),
                args.tolerance_pct
            );
            let mut t = Table::new(["scenario", "threads", "baseline", "current", "ratio"]);
            for d in &regressions {
                t.row([
                    d.scenario.clone(),
                    d.threads.to_string(),
                    format!("{:.3}", d.baseline_mops),
                    format!("{:.3}", d.current_mops),
                    format!("{:.2}x", d.ratio()),
                ]);
            }
            t.print();
            if same_machine {
                return ExitCode::FAILURE;
            }
            println!("(advisory only: machine class mismatch — see warning above)");
        }
    }
    ExitCode::SUCCESS
}
