//! `bench_all` — run any subset of the scenario registry, write JSON
//! reports, and compare against a baseline.
//!
//! ```text
//! bench_all --list                 # enumerate every registered scenario
//! bench_all                        # run everything, write BENCH_<family>.json
//! bench_all fig9 fig12.stable      # run by family/group/scenario name
//! bench_all fig9 --json out.json   # single combined report instead
//! bench_all --baseline BENCH_baseline.json --tolerance 25
//!                                  # exit 1 on >25% throughput regression
//! ```
//!
//! Sweep knobs come from the usual environment variables
//! (`BENCH_THREADS`, `BENCH_DUR_MS`, `BENCH_REPS`, `BENCH_SEED`); the
//! machine class recorded in the report can be overridden with
//! `BENCH_MACHINE`.

use std::path::PathBuf;
use std::process::ExitCode;

use optik_bench::cli;
use optik_bench::scenarios;
use optik_harness::driver::SweepConfig;
use optik_harness::report::{compare, Report};
use optik_harness::table::Table;

struct Args {
    patterns: Vec<String>,
    list: bool,
    json: Option<PathBuf>,
    out_dir: PathBuf,
    baseline: Option<PathBuf>,
    tolerance_pct: f64,
    latency: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_all [PATTERN ...] [--list] [--json FILE] [--out-dir DIR]\n\
         \x20                [--baseline FILE] [--tolerance PCT] [--no-latency]\n\
         \n\
         PATTERN selects scenarios by exact name or dot-boundary prefix\n\
         (family or group); no patterns = the whole registry."
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        patterns: Vec::new(),
        list: false,
        json: None,
        out_dir: PathBuf::from("."),
        baseline: None,
        tolerance_pct: 25.0,
        latency: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => args.list = true,
            "--json" => args.json = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--out-dir" => {
                args.out_dir = PathBuf::from(it.next().unwrap_or_else(|| usage()));
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--tolerance" => {
                args.tolerance_pct = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--no-latency" => args.latency = false,
            "--help" | "-h" => usage(),
            p if p.starts_with('-') => usage(),
            p => args.patterns.push(p.to_string()),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let reg = scenarios::registry();

    if args.list {
        let mut t = Table::new(["scenario", "subject", "id", "description"]);
        for s in reg.iter() {
            t.row([s.name(), s.subject().kind(), s.subject_id(), s.about()]);
        }
        t.print();
        println!("\n{} scenarios registered", reg.len());
        return ExitCode::SUCCESS;
    }

    let cfg = SweepConfig::from_env();
    cli::banner("bench_all", "unified scenario sweep", &cfg);
    let selected = reg.select(&args.patterns);
    if selected.is_empty() {
        eprintln!("no scenarios match {:?}; try --list", args.patterns);
        return ExitCode::from(2);
    }
    println!("{} scenarios selected\n", selected.len());
    let reports = cli::run_selection(&reg, &args.patterns, &cfg, args.latency);

    let machine = std::env::var("BENCH_MACHINE").unwrap_or_else(|_| Report::machine_class());
    let combined = Report::new(&machine, &cfg, reports);

    // Write artifacts: one combined file, or one per family.
    if let Some(path) = &args.json {
        if let Err(e) = combined.save(path) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    } else {
        let mut families: Vec<&str> = Vec::new();
        for s in &combined.scenarios {
            let fam = s.scenario.split('.').next().expect("non-empty");
            if !families.contains(&fam) {
                families.push(fam);
            }
        }
        for fam in families {
            let sub = Report::new(
                &machine,
                &cfg,
                combined
                    .scenarios
                    .iter()
                    .filter(|s| s.scenario.split('.').next() == Some(fam))
                    .cloned()
                    .collect(),
            );
            let path = args.out_dir.join(format!("BENCH_{fam}.json"));
            if let Err(e) = sub.save(&path) {
                eprintln!("failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", path.display());
        }
    }

    // Baseline comparison.
    if let Some(path) = &args.baseline {
        let baseline = match Report::load(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("failed to load baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let cmp = compare(&combined, &baseline);
        let tol = args.tolerance_pct / 100.0;
        // Absolute Mops/s only compare meaningfully on the same machine
        // class: cross-class deltas measure hardware, not code. On a
        // mismatch the gate reports regressions but does not fail.
        let same_machine = baseline.machine == machine;
        println!();
        println!(
            "baseline: {} ({} matched points, geomean ratio {:.3})",
            path.display(),
            cmp.deltas.len(),
            cmp.geomean_ratio()
        );
        if !same_machine {
            println!(
                "warning: baseline machine class differs\n  baseline: {}\n  current:  {}\n\
                 cross-class throughput deltas measure hardware, not code; the\n\
                 regression gate is advisory until the baseline is re-recorded\n\
                 on this machine class",
                baseline.machine, machine
            );
        }
        if !cmp.missing_in_current.is_empty() {
            if args.patterns.is_empty() {
                // A full-registry run must cover everything the baseline
                // covers: a missing scenario means regression protection
                // silently shrank (rename/delete without re-recording).
                eprintln!(
                    "error: {} baseline scenarios missing from this full run \
                     (renamed/deleted without re-recording the baseline?):",
                    cmp.missing_in_current.len()
                );
                for s in &cmp.missing_in_current {
                    eprintln!("  {s}");
                }
                return ExitCode::FAILURE;
            }
            println!(
                "note: {} baseline scenarios not in this subset run",
                cmp.missing_in_current.len()
            );
        }
        let regressions = cmp.regressions(tol);
        if regressions.is_empty() {
            println!("no regressions beyond {:.0}% tolerance", args.tolerance_pct);
        } else {
            println!(
                "{} regressions beyond {:.0}% tolerance:",
                regressions.len(),
                args.tolerance_pct
            );
            let mut t = Table::new(["scenario", "threads", "baseline", "current", "ratio"]);
            for d in &regressions {
                t.row([
                    d.scenario.clone(),
                    d.threads.to_string(),
                    format!("{:.3}", d.baseline_mops),
                    format!("{:.3}", d.current_mops),
                    format!("{:.2}x", d.ratio()),
                ]);
            }
            t.print();
            if same_machine {
                return ExitCode::FAILURE;
            }
            println!("(advisory only: machine class mismatch — see warning above)");
        }
    }
    ExitCode::SUCCESS
}
