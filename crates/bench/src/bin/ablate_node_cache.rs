//! Ablation: node caching (§5.1).
//!
//! Measures the node-cache hit rate (the automatic `cache_hit_pct` extra
//! table) and the throughput delta between the fine-grained OPTIK list
//! with and without the cache across list sizes. The paper reports ~49.8%
//! hit rate on the large list, ~40% on the small one, for throughput gains
//! of ~50% and ~15% respectively.
//!
//! Scenarios: `ablate-node-cache.*` in the registry (`bench_all --list`).

use optik_bench::cli;

fn main() {
    let reports = cli::run_family(
        "ablate-node-cache",
        "node caching: hit rate and throughput delta",
        false,
    );
    for size in [64, 1024, 8192] {
        let group = format!("ablate-node-cache.{size}");
        if let Some(t) = cli::ratio_table(&reports, &group, "optik-cache", "optik") {
            println!("{group} — caching gain:");
            t.print();
            println!();
        }
    }
}
