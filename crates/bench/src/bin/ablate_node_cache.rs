//! Ablation: node caching (§5.1).
//!
//! Measures the node-cache hit rate and the throughput delta between the
//! fine-grained OPTIK list with and without the cache across list sizes.
//! The paper reports ~49.8% hit rate on the large list, ~40% on the small
//! one, for throughput gains of ~50% and ~15% respectively.

use std::sync::atomic::{AtomicU64, Ordering};

use optik_bench::{banner, Config};
use optik_harness::runner::run_set_workload;
use optik_harness::table::{fmt_mops, Table};
use optik_harness::{stats, ConcurrentSet, SetHandle, Workload};
use optik_lists::{OptikCacheList, OptikList};

/// Handle wrapper that exports hit/miss counters on drop.
struct CountingHandle<'a> {
    inner: optik_lists::OptikCacheHandle<'a>,
    hits: &'a AtomicU64,
    misses: &'a AtomicU64,
}

impl SetHandle for CountingHandle<'_> {
    fn search(&mut self, key: u64) -> Option<u64> {
        self.inner.search(key)
    }
    fn insert(&mut self, key: u64, val: u64) -> bool {
        self.inner.insert(key, val)
    }
    fn delete(&mut self, key: u64) -> Option<u64> {
        self.inner.delete(key)
    }
}

impl Drop for CountingHandle<'_> {
    fn drop(&mut self) {
        self.hits
            .fetch_add(self.inner.cache_hits(), Ordering::Relaxed);
        self.misses
            .fetch_add(self.inner.cache_misses(), Ordering::Relaxed);
    }
}

fn main() {
    let cfg = Config::from_env();
    banner(
        "Ablation",
        "node caching: hit rate and throughput delta",
        &cfg,
    );

    let threads = *cfg.threads.last().unwrap_or(&8);
    let mut t = Table::new(["size", "optik", "optik-cache", "gain", "hit-rate"]);
    for size in [64u64, 1024, 8192] {
        let w = Workload::paper(size, 20, false);

        let mut base = Vec::new();
        for rep in 0..cfg.reps {
            let set = OptikList::new();
            w.initial_fill(cfg.seed + rep as u64, |k, v| set.insert(k, v));
            base.push(
                run_set_workload(
                    threads,
                    cfg.duration,
                    &w,
                    cfg.seed + rep as u64,
                    false,
                    |_| &set,
                )
                .mops(),
            );
        }
        let base = stats::median(&base);

        let hits = AtomicU64::new(0);
        let misses = AtomicU64::new(0);
        let mut cached = Vec::new();
        for rep in 0..cfg.reps {
            let set = OptikCacheList::new();
            w.initial_fill(cfg.seed + rep as u64, |k, v| set.insert(k, v));
            cached.push(
                run_set_workload(
                    threads,
                    cfg.duration,
                    &w,
                    cfg.seed + rep as u64,
                    false,
                    |_| CountingHandle {
                        inner: set.handle(),
                        hits: &hits,
                        misses: &misses,
                    },
                )
                .mops(),
            );
        }
        let cached = stats::median(&cached);
        let h = hits.load(Ordering::Relaxed) as f64;
        let m = misses.load(Ordering::Relaxed) as f64;
        t.row([
            size.to_string(),
            fmt_mops(base),
            fmt_mops(cached),
            format!("{:+.1}%", (cached / base.max(1e-9) - 1.0) * 100.0),
            format!("{:.1}%", 100.0 * h / (h + m).max(1.0)),
        ]);
    }
    t.print();
}
