//! Ablation: per-segment resizing in the Java-style striped hash table.
//!
//! Figure 10 sizes buckets == elements, so the fixed-capacity `java` table
//! never pays for its missing resize support. This ablation asks what
//! happens when the initial sizing guess is wrong by ~64×: the fixed
//! table degenerates into long chains (every operation is an O(chain)
//! scan under a segment lock), while the resizable table (the CHM
//! behaviour the paper describes: "each segment ... can be individually
//! resized") grows itself back to O(1) buckets.
//!
//! It also quantifies the cost of carrying resize support when the sizing
//! *is* right: well-sized fixed vs resizable tables should be within a few
//! percent of each other (one extra indirection per operation).

use optik_bench::{banner, Config};
use optik_harness::runner::run_set_workload;
use optik_harness::table::{fmt_mops, Table};
use optik_harness::{stats, ConcurrentSet, Workload};
use optik_hashtables::{ResizableStripedHashTable, StripedHashTable};

fn measure<S: ConcurrentSet>(
    make: impl Fn() -> S,
    w: &Workload,
    threads: usize,
    cfg: &Config,
) -> f64 {
    let mut mops = Vec::new();
    for rep in 0..cfg.reps {
        let set = make();
        w.initial_fill(cfg.seed + rep as u64, |k, v| set.insert(k, v));
        let res = run_set_workload(
            threads,
            cfg.duration,
            w,
            cfg.seed + rep as u64,
            false,
            |_| &set,
        );
        mops.push(res.mops());
    }
    stats::median(&mops)
}

fn main() {
    let cfg = Config::from_env();
    banner(
        "Ablation: resizing",
        "fixed vs per-segment-resizable striped tables",
        &cfg,
    );

    const ELEMS: u64 = 8192;
    const SEGMENTS: usize = 128;
    let w = Workload::paper(ELEMS, 20, false);

    println!("{ELEMS} elements, 20% effective updates — throughput (Mops/s):");
    println!("  well-sized  = buckets == elements (the paper's Figure 10 setup)");
    println!("  under-sized = 64x fewer buckets than elements\n");
    let mut t = Table::new([
        "threads",
        "java well-sized",
        "java under-sized",
        "java-resize (2/seg start)",
    ]);
    for &n in &cfg.threads {
        t.row([
            n.to_string(),
            fmt_mops(measure(
                || StripedHashTable::new(ELEMS as usize, SEGMENTS),
                &w,
                n,
                &cfg,
            )),
            fmt_mops(measure(
                || StripedHashTable::new(ELEMS as usize / 64, SEGMENTS),
                &w,
                n,
                &cfg,
            )),
            fmt_mops(measure(
                || ResizableStripedHashTable::new(SEGMENTS, 2),
                &w,
                n,
                &cfg,
            )),
        ]);
    }
    t.print();
    println!();
    println!("(java-resize starts at 2 buckets/segment and must grow to fit");
    println!(" {ELEMS} elements during the initial fill of every repetition.)");
}
